"""Setuptools shim so ``pip install -e .`` works without network access.

(The offline environment lacks the ``wheel`` package needed for PEP 660
editable installs, so pip falls back to the legacy path through this file.)
"""

from setuptools import setup

setup()
