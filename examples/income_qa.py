"""Generative QA: predicting income brackets from phone attributes.

Section 3.2 of the paper describes a generative task where device
attributes (brand, model tier, price, purchase year) feed an income
prediction.  This example fine-tunes ZiGong on the QA form of that task
and reports bracket accuracy and miss rate.

Run:  python examples/income_qa.py
"""

from __future__ import annotations

import dataclasses

from repro.config import test_config
from repro.core import ZiGong
from repro.data import build_income_examples
from repro.datasets import INCOME_BRACKETS, make_income
from repro.eval import format_table
from repro.eval.parsing import parse_choice

SEED = 0


def main() -> None:
    dataset = make_income(n=600, seed=SEED)
    examples = build_income_examples(dataset)
    train, test = examples[:480], examples[480:]

    config = test_config(seed=SEED)
    config = dataclasses.replace(
        config, training=dataclasses.replace(config.training, epochs=10), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(examples, config=config)
    history = zigong.finetune(train)
    print(f"fine-tune loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    correct = missed = 0
    per_bracket = {b: [0, 0] for b in INCOME_BRACKETS}  # hits, total
    for example in test:
        generated = zigong.generate_answer(example.prompt)
        choice = parse_choice(generated, INCOME_BRACKETS)
        per_bracket[example.answer][1] += 1
        if choice is None:
            missed += 1
        elif choice == example.answer:
            correct += 1
            per_bracket[example.answer][0] += 1

    print()
    rows = [
        ["overall", correct / len(test), missed / len(test)],
    ]
    for bracket, (hits, total) in per_bracket.items():
        rows.append([bracket, hits / total if total else 0.0, None])
    print(format_table(["Bracket", "Acc", "Miss"], rows, title="Income bracket QA"))

    print()
    sample = test[0]
    print("prompt:   ", sample.prompt)
    print("expected: ", sample.answer)
    print("generated:", zigong.generate_answer(sample.prompt))


if __name__ == "__main__":
    main()
