"""The full ZiGong pipeline: TracSeq pruning + 70/30 hybrid mix.

Reproduces the paper's Figure-1 workflow on sequential behavior data,
then compares the pruned-mix model against a no-pruning baseline.

Run:  python examples/data_pruning_pipeline.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import test_config
from repro.core import PipelineConfig, PrunerConfig, ZiGong, ZiGongPipeline
from repro.data import build_behavior_examples
from repro.datasets import make_behavior
from repro.eval import EvalSample, evaluate, format_table

SEED = 0


def behavior_eval_samples(examples):
    return [
        EvalSample(prompt=e.prompt, label=e.label, positive_text="yes", negative_text="no")
        for e in examples
    ]


def main() -> None:
    # Sequential behavior data: recent periods carry the default signal.
    dataset = make_behavior(n_users=80, n_periods=5, seed=SEED)
    examples = build_behavior_examples(dataset)
    rng = np.random.default_rng(SEED)
    order = rng.permutation(len(examples))
    train = [examples[i] for i in order[:240]]
    val = [examples[i] for i in order[240:260]]
    # Held-out evaluation uses only the *latest* period (the deployment view).
    test = [examples[i] for i in order[260:] if examples[i].timestamp == dataset.n_periods - 1]
    print(f"train={len(train)}  val={len(val)}  test(last period)={len(test)}")

    base = test_config(seed=SEED)
    base = dataclasses.replace(
        base, training=dataclasses.replace(base.training, epochs=8), base_lr=5e-3
    )

    # --- ZiGong: TracSeq pruning + hybrid mix -------------------------
    pipeline = ZiGongPipeline(
        PipelineConfig(
            zigong=base,
            pruner=PrunerConfig(strategy="tracseq", gamma=0.8, projection_dim=128),
            pruned_fraction=0.3,
            warmup_epochs=2,
            seed=SEED,
        )
    )
    result = pipeline.run(train, val)
    pruned = evaluate(result.zigong.classifier(), behavior_eval_samples(test), "behavior")

    # --- Baseline: same budget, no pruning ----------------------------
    baseline = ZiGong.from_examples(train + val, config=base)
    baseline.finetune(train)
    plain = evaluate(baseline.classifier("no-pruning"), behavior_eval_samples(test), "behavior")

    print()
    print(format_table(
        ["Model", "Acc", "F1", "Miss", "KS"],
        [
            ["ZiGong (TracSeq mix)", pruned.accuracy, pruned.f1, pruned.miss, pruned.ks],
            ["No pruning", plain.accuracy, plain.f1, plain.miss, plain.ks],
        ],
        title="TracSeq data pruning on sequential behavior data",
    ))

    scores = result.scores
    stamps = np.array([e.timestamp for e in train])
    print()
    print("mean TracSeq score by period (recent periods should score higher):")
    for period in sorted(set(stamps)):
        mean = scores[stamps == period].mean()
        print(f"  period {int(period)}: {mean:+.4e}")


if __name__ == "__main__":
    main()
