"""Quickstart: fine-tune ZiGong on synthetic German Credit and evaluate.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import dataclasses

from repro.config import test_config
from repro.core import ZiGong
from repro.data import build_classification_examples
from repro.datasets import make_german
from repro.eval import evaluate, format_table, make_eval_samples

SEED = 0


def main() -> None:
    # 1. Generate a synthetic German Credit dataset and split it.
    dataset = make_german(n=400, seed=SEED)
    train, test = dataset.split(test_fraction=0.2, seed=SEED)
    print(f"dataset: {dataset.name}  train={len(train)}  test={len(test)}  "
          f"positive_rate={dataset.positive_rate:.2f}")

    # 2. Verbalize rows into instruction examples (Table 1 template).
    examples = build_classification_examples(train)
    print("sample prompt:", examples[0].prompt)
    print("sample answer:", examples[0].answer)

    # 3. Build ZiGong: word tokenizer + MistralTiny + LoRA, then fine-tune.
    config = test_config(seed=SEED)
    config = dataclasses.replace(
        config,
        training=dataclasses.replace(config.training, epochs=12),
        base_lr=5e-3,
    )
    zigong = ZiGong.from_examples(examples, config=config)
    print(f"model parameters: {zigong.model.num_parameters():,} "
          f"(vocab {zigong.tokenizer.vocab_size})")
    history = zigong.finetune(examples)
    print(f"fine-tune loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    # 4. Evaluate with the CALM-style harness (Acc / F1 / Miss / KS).
    result = evaluate(zigong.classifier(), make_eval_samples(test), dataset_name="german")
    print()
    print(format_table(
        ["Dataset", "Acc", "F1", "Miss", "KS", "AUC"],
        [[result.dataset, result.accuracy, result.f1, result.miss, result.ks, result.auc]],
        title="Quickstart evaluation",
    ))

    # 5. Ask the model a question directly.
    prompt = examples[0].prompt
    print()
    print("prompt:", prompt)
    print("generated answer:", zigong.generate_answer(prompt))


if __name__ == "__main__":
    main()
