"""Fair-lending audit + scorecard scaling of a fitted credit model.

The paper's related work calls out bias concerns in financial LLMs.
This example fine-tunes ZiGong on synthetic German Credit, audits its
approvals across an age split with the standard group-fairness metrics,
and converts its probabilities into scorecard points (PDO scaling).

Run:  python examples/fairness_audit.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import test_config
from repro.core import ZiGong
from repro.data import build_classification_examples
from repro.datasets import make_german
from repro.eval import fairness_report, format_table, make_eval_samples
from repro.serving import ScorecardScaler

SEED = 0


def main() -> None:
    dataset = make_german(n=400, seed=SEED)
    train, test = dataset.split(test_fraction=0.3, seed=SEED)
    examples = build_classification_examples(train)

    config = test_config(seed=SEED)
    config = dataclasses.replace(
        config, training=dataclasses.replace(config.training, epochs=12), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(examples, config=config)
    zigong.finetune(examples)

    samples = make_eval_samples(test)
    predictions = zigong.classifier().predict_many(samples)
    labels = [s.label for s in samples]
    decisions = [0 if p.label is None else p.label for p in predictions]

    # Protected attribute: young vs old applicants (age is column 8).
    age = test.X[:, 8]
    group = (age > np.median(age)).astype(int)  # 0 = younger, 1 = older
    report = fairness_report(labels, decisions, group)

    print(format_table(
        ["Metric", "Value"],
        [
            ["approval rate (younger)", report.positive_rate_a],
            ["approval rate (older)", report.positive_rate_b],
            ["demographic parity diff", report.demographic_parity_difference],
            ["equalized odds diff", report.equalized_odds_difference],
            ["disparate impact ratio", report.disparate_impact_ratio],
            ["passes four-fifths rule", str(report.passes_four_fifths())],
        ],
        title="Fair-lending audit (age split)",
    ))

    # Scorecard view: P(bad) -> points.  'good'=1, so P(default)=1-score.
    scaler = ScorecardScaler()
    print()
    rows = []
    for sample, pred in list(zip(samples, predictions))[:8]:
        p_default = 1.0 - pred.score
        points = scaler.score(p_default)
        rows.append([
            f"{p_default:.3f}", f"{points:.0f}", scaler.band(p_default),
            "good" if sample.label else "bad",
        ])
    print(format_table(
        ["P(default)", "Score", "Band", "True label"],
        rows,
        title="Scorecard scaling (base 660 @ 50:1 odds, PDO 40)",
    ))


if __name__ == "__main__":
    main()
