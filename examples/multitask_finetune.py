"""Multi-task supervised fine-tuning — the paper's training recipe.

ZiGong is trained on several task families at once (credit scoring,
fraud detection, sentiment analysis, financial auditing, QA).  This
example jointly fine-tunes one model on three of them and evaluates
each task separately, showing that a single instruction-tuned model
serves them all.

Run:  python examples/multitask_finetune.py
"""

from __future__ import annotations

import dataclasses

from repro.config import test_config
from repro.core import ZiGong
from repro.data import (
    build_classification_examples,
    build_sentiment_examples,
)
from repro.datasets import SENTIMENT_CLASSES, make_audit, make_german, make_sentiment
from repro.eval import evaluate, evaluate_generative, format_table, make_eval_samples

SEED = 0


def main() -> None:
    # Three task families, one instruction format.
    german = make_german(n=300, seed=SEED)
    german_train, german_test = german.split(test_fraction=0.2, seed=SEED)
    audit = make_audit(n=300, seed=SEED)
    audit_train, audit_test = audit.split(test_fraction=0.2, seed=SEED)
    sentiment = make_sentiment(n=300, seed=SEED)
    sent_train = build_sentiment_examples(sentiment)[:240]
    sent_test_ds = make_sentiment(n=80, seed=SEED + 1)
    sent_test = build_sentiment_examples(sent_test_ds)

    train_examples = (
        build_classification_examples(german_train)
        + build_classification_examples(audit_train)
        + sent_train
    )
    print(f"joint training set: {len(train_examples)} examples across 3 tasks")

    config = test_config(seed=SEED)
    config = dataclasses.replace(
        config, training=dataclasses.replace(config.training, epochs=10), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(train_examples + sent_test, config=config)
    history = zigong.finetune(train_examples)
    print(f"fine-tune loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    # Discriminative tasks through the CALM harness.
    rows = []
    for name, test in (("german", german_test), ("financial_audit", audit_test)):
        result = evaluate(zigong.classifier(), make_eval_samples(test), name)
        rows.append([name, result.accuracy, result.f1, result.miss])

    # Sentiment through the generative multi-choice harness.
    sent_result = evaluate_generative(
        zigong.generate_answer, sent_test, SENTIMENT_CLASSES
    )
    rows.append(["sentiment", sent_result.accuracy, None, sent_result.miss])

    print()
    print(format_table(
        ["Task", "Acc", "F1", "Miss"],
        rows,
        title="One model, three tasks (multi-task SFT)",
    ))
    print()
    print("per-sentiment-class accuracy:",
          {k: round(v, 3) for k, v in sent_result.per_class_accuracy.items()})


if __name__ == "__main__":
    main()
