"""Behavior Card service demo — the paper's production deployment.

Fine-tunes a model on behavior data, stands up the scoring service and
pushes loan-decision traffic through it (with caching and audit logs).

Run:  python examples/behavior_card_service.py
"""

from __future__ import annotations

import dataclasses

from repro.config import test_config
from repro.core import ZiGong
from repro.data import build_behavior_examples
from repro.datasets import make_behavior
from repro.data.templates import CLASSIFICATION_TEMPLATE as CLASSIFICATION_PROMPT
from repro.serving import BehaviorCardConfig, BehaviorCardService, ScoreRequest

SEED = 0


def main() -> None:
    # Train the operational model on historical behavior data.
    history_data = make_behavior(n_users=60, n_periods=4, seed=SEED)
    examples = build_behavior_examples(history_data)
    config = test_config(seed=SEED)
    config = dataclasses.replace(
        config, training=dataclasses.replace(config.training, epochs=8), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(examples, config=config)
    zigong.finetune(examples)
    print(f"operational model trained on {len(examples)} behavior windows")

    # Stand up the Behavior Card service behind the micro-batching engine.
    serving_config = BehaviorCardConfig(threshold=0.5, cache_size=64,
                                        max_batch_size=4, queue_capacity=32)
    service = BehaviorCardService(
        zigong.classifier(), serving_config,
        fallback_scorer=lambda text: 0.9,  # conservative degraded-mode score
    )

    # Incoming loan applications: the engine scores each micro-batch of
    # applicants in one padded forward pass.
    fresh = make_behavior(n_users=10, n_periods=4, seed=SEED + 1)
    last = fresh.n_periods - 1
    requests = [
        ScoreRequest(f"user-{user:03d}", fresh.row_text(user, last))
        for user in range(fresh.n_users)
    ]
    print("\nincoming decisions (micro-batched):")
    for result in service.score_requests(requests):
        verdict = "APPROVE" if result.approved else "DECLINE"
        print(f"  {result.user_id}  P(default)={result.score:.3f}  -> {verdict}  "
              f"(batch of {result.batch_size})")
    engine_stats = service.engine.stats
    print(f"engine: batches={engine_stats.batches}  "
          f"mean_batch_size={engine_stats.mean_batch_size:.1f}")

    # A repeat request for user 0 hits the cache.
    repeat = service.decide("user-000", fresh.row_text(0, last))
    print(f"\nrepeat request cached: {repeat.cached}")

    stats = service.stats
    print(f"requests={stats.requests}  approval_rate={stats.approval_rate:.2f}  "
          f"cache_hit_rate={stats.cache_hit_rate:.2f}")

    print("\nlast 3 audit entries:")
    for entry in service.audit_log()[-3:]:
        print(f"  {entry.timestamp:.0f}  {entry.user_id}  score={entry.score:.3f}  "
              f"approved={entry.approved}")

    # --- Production monitoring ----------------------------------------
    from repro.serving import DriftMonitor, ShadowDeployment

    # PSI drift monitor: reference = scores on the training-time cohort
    # (scored through the engine's batched path, like live traffic).
    reference = [
        r.score
        for r in service.score_requests([
            ScoreRequest(f"ref-{u}", history_data.row_text(u, last))
            for u in range(history_data.n_users)
        ])
    ]
    monitor = DriftMonitor(reference, window=200)
    drifted = make_behavior(n_users=40, n_periods=4, seed=SEED + 2,
                            default_rate=0.55)  # a riskier cohort arrives
    live = service.score_requests([
        ScoreRequest(f"new-{user}", drifted.row_text(user, last))
        for user in range(drifted.n_users)
    ])
    monitor.observe_many([r.score for r in live])
    print(f"\ndrift monitor after risky cohort: PSI={monitor.psi():.3f} "
          f"status={monitor.status()}")

    # Shadow deployment: compare a candidate model on live traffic.
    candidate = ZiGong.from_examples(examples, config=config)
    candidate.finetune(examples[: len(examples) // 2])  # trained on less data
    shadow = ShadowDeployment(zigong.classifier(), candidate.classifier())
    for user in range(10):
        prompt = CLASSIFICATION_PROMPT.format(
            sentence=fresh.row_text(user, last),
            question="will this user default on their loan",
        )
        shadow.score(prompt)
    print(f"shadow deployment: agreement={shadow.agreement_rate():.2f} "
          f"score correlation={shadow.score_correlation():.2f} "
          f"disagreements={len(shadow.disagreements())}")


if __name__ == "__main__":
    main()
