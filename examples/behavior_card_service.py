"""Behavior Card service demo — the paper's production deployment.

Fine-tunes a model on behavior data, stands up the scoring service and
pushes loan-decision traffic through it (with caching and audit logs).

Run:  python examples/behavior_card_service.py
"""

from __future__ import annotations

import dataclasses

from repro.config import test_config
from repro.core import ZiGong
from repro.data import build_behavior_examples
from repro.datasets import make_behavior
from repro.data.templates import CLASSIFICATION_TEMPLATE as CLASSIFICATION_PROMPT
from repro.serving import BehaviorCardService

SEED = 0


def main() -> None:
    # Train the operational model on historical behavior data.
    history_data = make_behavior(n_users=60, n_periods=4, seed=SEED)
    examples = build_behavior_examples(history_data)
    config = test_config(seed=SEED)
    config = dataclasses.replace(
        config, training=dataclasses.replace(config.training, epochs=8), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(examples, config=config)
    zigong.finetune(examples)
    print(f"operational model trained on {len(examples)} behavior windows")

    # Stand up the Behavior Card service.
    service = BehaviorCardService(zigong.classifier(), threshold=0.5, cache_size=64)

    # Incoming loan applications: score each user's latest behavior window.
    fresh = make_behavior(n_users=10, n_periods=4, seed=SEED + 1)
    last = fresh.n_periods - 1
    print("\nincoming decisions:")
    for user in range(fresh.n_users):
        text = fresh.row_text(user, last)
        decision = service.decide(f"user-{user:03d}", text)
        verdict = "APPROVE" if decision.approved else "DECLINE"
        print(f"  user-{user:03d}  P(default)={decision.score:.3f}  -> {verdict}")

    # A repeat request for user 0 hits the cache.
    repeat = service.decide("user-000", fresh.row_text(0, last))
    print(f"\nrepeat request cached: {repeat.cached}")

    stats = service.stats
    print(f"requests={stats.requests}  approval_rate={stats.approval_rate:.2f}  "
          f"cache_hit_rate={stats.cache_hit_rate:.2f}")

    print("\nlast 3 audit entries:")
    for entry in service.audit_log()[-3:]:
        print(f"  {entry.timestamp:.0f}  {entry.user_id}  score={entry.score:.3f}  "
              f"approved={entry.approved}")

    # --- Production monitoring ----------------------------------------
    from repro.serving import DriftMonitor, ShadowDeployment

    # PSI drift monitor: reference = scores on the training-time cohort.
    reference = [
        service.decide(f"ref-{u}", history_data.row_text(u, last)).score
        for u in range(history_data.n_users)
    ]
    monitor = DriftMonitor(reference, window=200)
    drifted = make_behavior(n_users=40, n_periods=4, seed=SEED + 2,
                            default_rate=0.55)  # a riskier cohort arrives
    for user in range(drifted.n_users):
        decision = service.decide(f"new-{user}", drifted.row_text(user, last))
        monitor.observe(decision.score)
    print(f"\ndrift monitor after risky cohort: PSI={monitor.psi():.3f} "
          f"status={monitor.status()}")

    # Shadow deployment: compare a candidate model on live traffic.
    candidate = ZiGong.from_examples(examples, config=config)
    candidate.finetune(examples[: len(examples) // 2])  # trained on less data
    shadow = ShadowDeployment(zigong.classifier(), candidate.classifier())
    for user in range(10):
        prompt = CLASSIFICATION_PROMPT.format(
            sentence=fresh.row_text(user, last),
            question="will this user default on their loan",
        )
        shadow.score(prompt)
    print(f"shadow deployment: agreement={shadow.agreement_rate():.2f} "
          f"score correlation={shadow.score_correlation():.2f} "
          f"disagreements={len(shadow.disagreements())}")


if __name__ == "__main__":
    main()
