"""The :class:`Tensor` class: a numpy array with reverse-mode autodiff.

Only floating point tensors participate in differentiation.  Integer data
(token ids, class targets) is passed around as plain numpy arrays and
consumed by the dedicated ops in :mod:`repro.tensor.ops` (``embedding``,
``cross_entropy``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import GradientError, ShapeError

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd tape."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used for evaluation and generation, where building the graph would
    only waste memory.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Broadcasting may have added leading axes or stretched size-1 axes;
    gradients flowing back must be summed over those axes.
    """
    # Sum over extra leading axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value)
    if arr.dtype != np.float32:
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A float32 numpy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts; converted to ``float32``.
    requires_grad:
        Whether gradients should accumulate into ``.grad`` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, _parents: tuple = (), name: str | None = None):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._parents = _parents
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _result(data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        """Create an op result, recording parents only if grad is enabled."""
        tracked = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=tracked, _parents=tuple(parents) if tracked else ())
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out.name = self.name
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones for scalars; for non-scalar outputs an
        explicit seed gradient must be provided.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without a seed gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float32)
            if grad.shape != self.data.shape:
                raise ShapeError(
                    f"seed gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out = Tensor._result(self.data + other.data, (self, other))
        if out.requires_grad:

            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))

            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor._result(-self.data, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(-out.grad)

            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out = Tensor._result(self.data * other.data, (self, other))
        if out.requires_grad:

            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out = Tensor._result(self.data / other.data, (self, other))
        if out.requires_grad:

            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        _unbroadcast(-out.grad * self.data / (other.data**2), other.shape)
                    )

            out._backward = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out = Tensor._result(self.data**exponent, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Matrix multiply
    # ------------------------------------------------------------------

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        try:
            data = self.data @ other.data
        except ValueError as exc:
            raise ShapeError(f"matmul shapes {self.shape} @ {other.shape}: {exc}") from exc
        out = Tensor._result(data, (self, other))
        if out.requires_grad:

            def _backward():
                grad = out.grad
                if self.requires_grad:
                    if other.data.ndim == 1:
                        # (…, n) @ (n,) -> (…): outer-product style backward.
                        self._accumulate(
                            _unbroadcast(np.expand_dims(grad, -1) * other.data, self.shape)
                        )
                    else:
                        g = grad @ np.swapaxes(other.data, -1, -2)
                        self._accumulate(_unbroadcast(g, self.shape))
                if other.requires_grad:
                    if self.data.ndim == 1:
                        g = np.outer(self.data, grad) if grad.ndim == 1 else self.data[:, None] * grad
                        other._accumulate(_unbroadcast(g, other.shape))
                    elif other.data.ndim == 1:
                        g = (np.swapaxes(self.data, -1, -2) @ np.expand_dims(grad, -1))[..., 0]
                        other._accumulate(_unbroadcast(g, other.shape))
                    else:
                        g = np.swapaxes(self.data, -1, -2) @ grad
                        other._accumulate(_unbroadcast(g, other.shape))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        out = Tensor._result(data, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * data)

            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._result(np.log(self.data), (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad / self.data)

            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        out = Tensor._result(data, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * 0.5 / data)

            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        out = Tensor._result(data, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * (1.0 - data**2))

            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor._result(data, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * data * (1.0 - data))

            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor._result(self.data * mask, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * mask)

            out._backward = _backward
        return out

    def silu(self) -> "Tensor":
        """SiLU (swish): ``x * sigmoid(x)`` — Mistral's activation."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        data = self.data * sig
        out = Tensor._result(data, (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * (sig * (1.0 + self.data * (1.0 - sig))))

            out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Tanh-approximate GELU."""
        c = np.float32(np.sqrt(2.0 / np.pi))
        inner = c * (self.data + 0.044715 * self.data**3)
        t = np.tanh(inner)
        data = 0.5 * self.data * (1.0 + t)
        out = Tensor._result(data, (self,))
        if out.requires_grad:

            def _backward():
                dinner = c * (1.0 + 3 * 0.044715 * self.data**2)
                local = 0.5 * (1.0 + t) + 0.5 * self.data * (1.0 - t**2) * dinner
                self._accumulate(out.grad * local)

            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = Tensor._result(np.abs(self.data), (self,))
        if out.requires_grad:
            sign = np.sign(self.data)

            def _backward():
                self._accumulate(out.grad * sign)

            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        data = np.clip(self.data, low, high)
        out = Tensor._result(data, (self,))
        if out.requires_grad:
            inside = ((self.data >= low) & (self.data <= high)).astype(np.float32)

            def _backward():
                self._accumulate(out.grad * inside)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor._result(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:

            def _backward():
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(grad, self.shape).astype(np.float32))

            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor._result(data, (self,))
        if out.requires_grad:

            def _backward():
                grad = out.grad
                maxed = data
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                    maxed = np.expand_dims(maxed, axis)
                mask = (self.data == maxed).astype(np.float32)
                # Split gradient among ties, matching subgradient convention.
                mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                self._accumulate(mask * grad)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._result(self.data.reshape(shape), (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad.reshape(self.shape))

            out._backward = _backward
        return out

    def transpose(self, axes: Iterable[int]) -> "Tensor":
        axes = tuple(axes)
        out = Tensor._result(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inverse = tuple(np.argsort(axes))

            def _backward():
                self._accumulate(out.grad.transpose(inverse))

            out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out = Tensor._result(np.swapaxes(self.data, a, b), (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(np.swapaxes(out.grad, a, b))

            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor._result(self.data[index], (self,))
        if out.requires_grad:

            def _backward():
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

            out._backward = _backward
        return out
