"""Seeded randomness and weight initializers.

Every stochastic component in the library takes an explicit seed or
``numpy.random.Generator`` so that experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor.tensor import Tensor

Initializer = Callable[[tuple[int, ...], np.random.Generator], np.ndarray]


def default_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed (idempotent)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def normal_init(std: float = 0.02) -> Initializer:
    """Gaussian initializer with the given standard deviation."""

    def init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, std, size=shape).astype(np.float32)

    return init


def uniform_init(scale: float) -> Initializer:
    """Uniform initializer on ``[-scale, scale]``."""

    def init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-scale, scale, size=shape).astype(np.float32)

    return init


def kaiming_init(fan_in: int) -> Initializer:
    """He-style uniform initializer scaled by ``1/sqrt(fan_in)``."""
    return uniform_init(1.0 / np.sqrt(max(fan_in, 1)))


def randn_tensor(shape: tuple[int, ...], rng: np.random.Generator, std: float = 1.0, requires_grad: bool = False) -> Tensor:
    """Convenience: a Gaussian tensor with the given shape."""
    return Tensor(rng.normal(0.0, std, size=shape).astype(np.float32), requires_grad=requires_grad)
