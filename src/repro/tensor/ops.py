"""Functional ops that involve more than one tensor or integer inputs.

These complement the methods on :class:`~repro.tensor.Tensor` with the
pieces a causal language model needs: embedding lookup, numerically stable
softmax / log-softmax, token-level cross entropy with an ignore index, and
structural ops (concat, stack, where).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor

IGNORE_INDEX = -100


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    if not tensors:
        raise ShapeError("concat() requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor._result(data, tuple(tensors))
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward():
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(out.grad[tuple(index)])

        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    if not tensors:
        raise ShapeError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor._result(data, tuple(tensors))
    if out.requires_grad:

        def _backward():
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(out.grad, i, axis=axis))

        out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``condition ? a : b``.

    ``condition`` is a plain boolean numpy array (it is not differentiated).
    """
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out = Tensor._result(np.where(cond, a.data, b.data), (a, b))
    if out.requires_grad:

        def _backward():
            if a.requires_grad:
                from repro.tensor.tensor import _unbroadcast

                a._accumulate(_unbroadcast(out.grad * cond, a.shape))
            if b.requires_grad:
                from repro.tensor.tensor import _unbroadcast

                b._accumulate(_unbroadcast(out.grad * (~cond), b.shape))

        out._backward = _backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor._result(probs, (x,))
    if out.requires_grad:

        def _backward():
            g = out.grad
            dot = (g * probs).sum(axis=axis, keepdims=True)
            x._accumulate(probs * (g - dot))

        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    logp = shifted - log_z
    out = Tensor._result(logp, (x,))
    if out.requires_grad:
        probs = np.exp(logp)

        def _backward():
            g = out.grad
            x._accumulate(g - probs * g.sum(axis=axis, keepdims=True))

        out._backward = _backward
    return out


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices``.

    Backward scatter-adds into the embedding table, matching the dense
    gradient a one-hot matmul would produce.
    """
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise ShapeError("embedding indices must be integers")
    if idx.size and (idx.min() < 0 or idx.max() >= weight.shape[0]):
        raise ShapeError(
            f"embedding index out of range [0, {weight.shape[0]}): "
            f"min={idx.min()}, max={idx.max()}"
        )
    out = Tensor._result(weight.data[idx], (weight,))
    if out.requires_grad:

        def _backward():
            grad = np.zeros_like(weight.data)
            np.add.at(grad, idx, out.grad)
            weight._accumulate(grad)

        out._backward = _backward
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int = IGNORE_INDEX) -> Tensor:
    """Mean token-level cross entropy.

    Parameters
    ----------
    logits:
        Shape ``(..., vocab)``; leading axes are flattened.
    targets:
        Integer array matching the leading axes of ``logits``.  Positions
        equal to ``ignore_index`` contribute nothing to loss or gradient.
    """
    tgt = np.asarray(targets)
    if tgt.shape != logits.shape[:-1]:
        raise ShapeError(
            f"targets shape {tgt.shape} does not match logits leading shape {logits.shape[:-1]}"
        )
    vocab = logits.shape[-1]
    flat_logits = logits.data.reshape(-1, vocab)
    flat_tgt = tgt.reshape(-1)
    valid = flat_tgt != ignore_index
    n_valid = int(valid.sum())
    if n_valid == 0:
        raise ShapeError("cross_entropy received no valid (non-ignored) targets")

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - log_z

    safe_tgt = np.where(valid, flat_tgt, 0)
    picked = logp[np.arange(flat_tgt.size), safe_tgt]
    loss_value = -(picked * valid).sum() / n_valid

    out = Tensor._result(np.asarray(loss_value, dtype=np.float32), (logits,))
    if out.requires_grad:
        probs = np.exp(logp)

        def _backward():
            grad = probs.copy()
            grad[np.arange(flat_tgt.size), safe_tgt] -= 1.0
            grad *= valid[:, None]
            grad *= float(out.grad) / n_valid
            logits._accumulate(grad.reshape(logits.shape))

        out._backward = _backward
    return out
