"""Minimal reverse-mode autodiff engine over numpy.

This subpackage is the computational substrate for the whole reproduction:
the MistralTiny language model (:mod:`repro.nn`), LoRA fine-tuning
(:mod:`repro.lora`) and per-sample gradient extraction for TracInCP /
TracSeq (:mod:`repro.influence`) are all built on :class:`Tensor`.

The engine is deliberately small and explicit — a :class:`Tensor` wraps a
``float32`` numpy array, records its parents and a backward closure, and
``backward()`` runs reverse-mode accumulation over a topological sort.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.ops import (
    concat,
    cross_entropy,
    embedding,
    log_softmax,
    softmax,
    stack,
    where,
)
from repro.tensor.random import Initializer, default_rng, normal_init, uniform_init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "embedding",
    "default_rng",
    "Initializer",
    "normal_init",
    "uniform_init",
]
