"""ZiGong configuration (the paper's Table 3), scaled to laptop size.

The paper fine-tunes Mistral 7B (hidden 4096, 32 heads, 32 layers,
context 4096) with LoRA rank 8 / alpha 16 on {query, key, value}, AdamW
(beta1=0.9, beta2=0.999), cosine-decay LR in [1e-5, 3e-5], batch 32 with
gradient accumulation 4.  :class:`ZiGongConfig` keeps every *structural*
choice (LoRA targets/rank/alpha, optimizer betas, schedule shape, batch
/ accumulation ratio) and scales the raw sizes down so the full pipeline
runs in seconds; ``table3_rows`` renders the side-by-side mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.lora.adapter import LoRAConfig
from repro.nn.transformer import ModelConfig
from repro.training.trainer import TrainingConfig

# The paper's Table 3 values (for reference / the config table).
PAPER_TABLE3 = {
    "base_model": "Mistral 7B",
    "fine_tuning": "LoRA",
    "context_length": 4096,
    "hidden_dimension": 4096,
    "attention_heads": 32,
    "layers": 32,
    "activation": "SiLU",
    "lr_range": (1e-5, 3e-5),
    "batch_size": 32,
    "grad_accumulation": 4,
    "optimizer_betas": (0.9, 0.999),
    "lr_schedule": "cosine decay",
    "lora_rank": 8,
    "lora_alpha": 16,
    "lora_targets": ("query", "key", "value"),
}


@dataclass(frozen=True)
class ZiGongConfig:
    """Bundled model / LoRA / training configuration."""

    model: ModelConfig = field(default_factory=ModelConfig)
    lora: LoRAConfig = field(default_factory=LoRAConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    base_lr: float = 3e-3
    min_lr: float = 3e-4
    warmup_steps: int = 5
    seed: int = 0

    def __post_init__(self):
        if self.base_lr <= 0:
            raise ConfigError("base_lr must be positive")
        if not 0 <= self.min_lr <= self.base_lr:
            raise ConfigError("min_lr must be in [0, base_lr]")

    def with_vocab(self, vocab_size: int) -> "ZiGongConfig":
        """Return a copy whose model config has the given vocabulary size."""
        return replace(self, model=replace(self.model, vocab_size=vocab_size))


def test_config(seed: int = 0) -> ZiGongConfig:
    """Smallest config: unit-test scale (seconds per fine-tune)."""
    return ZiGongConfig(
        model=ModelConfig(
            vocab_size=256, d_model=32, n_layers=2, n_heads=4, n_kv_heads=2,
            d_ff=64, max_seq_len=64, sliding_window=32,
        ),
        lora=LoRAConfig(rank=4, alpha=8),
        training=TrainingConfig(epochs=4, batch_size=8, grad_accum_steps=2, seed=seed),
        seed=seed,
    )


def bench_config(seed: int = 0) -> ZiGongConfig:
    """Benchmark config: the paper's shape ratios at laptop scale.

    Keeps Table 3's structural choices exactly: LoRA r=8 / alpha=16 on
    q,k,v; AdamW betas (0.9, 0.999); cosine decay; batch 32 with
    gradient accumulation 4.
    """
    return ZiGongConfig(
        model=ModelConfig(
            vocab_size=512, d_model=64, n_layers=2, n_heads=4, n_kv_heads=2,
            d_ff=128, max_seq_len=96, sliding_window=64,
        ),
        lora=LoRAConfig(rank=8, alpha=16, target_modules=("wq", "wk", "wv")),
        training=TrainingConfig(epochs=8, batch_size=32, grad_accum_steps=4, seed=seed),
        seed=seed,
    )


def table3_rows(config: ZiGongConfig) -> list[tuple[str, str, str, str]]:
    """Rows of (category, parameter, paper value, this reproduction).

    Regenerates the content of the paper's Table 3 next to the scaled
    values actually used here.
    """
    model = config.model
    training = config.training
    lora = config.lora
    return [
        ("Base", "Model Name", "ZiGong", "ZiGong (repro)"),
        ("Base", "Base Model", PAPER_TABLE3["base_model"], "MistralTiny (same family)"),
        ("Base", "Fine-tuning Method", "LoRA", "LoRA"),
        ("Base", "Context Length", str(PAPER_TABLE3["context_length"]), str(model.max_seq_len)),
        ("Architecture", "Hidden Dimension", str(PAPER_TABLE3["hidden_dimension"]), str(model.d_model)),
        ("Architecture", "Attention Heads", str(PAPER_TABLE3["attention_heads"]), str(model.n_heads)),
        ("Architecture", "Layers", str(PAPER_TABLE3["layers"]), str(model.n_layers)),
        ("Architecture", "Activation Function", "SiLU", "SiLU"),
        ("Training", "Learning Rate", "1e-5 - 3e-5", f"{config.min_lr:g} - {config.base_lr:g}"),
        (
            "Training",
            "Batch Size",
            f"{PAPER_TABLE3['batch_size']} (grad accumulation: {PAPER_TABLE3['grad_accumulation']})",
            f"{training.batch_size} (grad accumulation: {training.grad_accum_steps})",
        ),
        ("Training", "Optimizer", "AdamW (b1=0.9, b2=0.999)", "AdamW (b1=0.9, b2=0.999)"),
        ("Training", "LR Schedule", "Cosine Decay", "Cosine Decay"),
        ("Training", "LoRA Rank", str(PAPER_TABLE3["lora_rank"]), str(lora.rank)),
        ("Training", "LoRA Alpha", str(PAPER_TABLE3["lora_alpha"]), str(int(lora.alpha))),
        ("Training", "Target Modules", "{query, key, value}", "{" + ", ".join(lora.target_modules) + "}"),
    ]
