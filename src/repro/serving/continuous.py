"""Continuous-batching serving engine: streaming decode behind the
``submit``/``PendingResult`` contract.

:class:`~repro.serving.engine.MicroBatchEngine` schedules *scoring*
(one forward per batch); this module schedules *generation*.  A
:class:`ContinuousEngine` keeps one
:class:`~repro.nn.continuous.ContinuousScheduler` loop alive and, per
:meth:`~ContinuousEngine.pump`:

1. expires stale queued requests (same inclusive deadline boundary as
   the micro-batch engine — once admitted, a request always decodes),
2. hands as many queued requests to the scheduler as the admission
   policy allows,
3. runs **one** decode step, streaming every generated token to its
   caller through ``PendingResult._emit_token`` (callbacks plus the
   blocking ``token_stream()`` iterator), and finalizing finished rows
   through the app's ``finish`` hook — exactly once.

The engine mirrors the micro-batch surface — ``submit`` / ``pump`` /
``drain`` / ``serve`` / ``start`` / ``stop`` / ``withdraw_all`` /
``queue_depth`` / ``stats`` — so a :class:`~repro.serving.cluster.ClusterSupervisor`
replica can run either engine unchanged: redispatch-off-crashed-replica,
rolling deploys and the chaos suite all apply.  The per-step
``cluster.scheduler`` fault point is the chaos hook; an injected
:class:`~repro.errors.ReplicaCrashedError` aborts live streams (their
``PendingResult`` carries the error, partial tokens stay readable) and
the supervisor's redispatch callback moves the traffic elsewhere.

Failure semantics differ from micro-batch scoring on purpose: there is
no retry/fallback path, because a half-decoded stream is not
re-enterable — a mid-decode fault fails the affected streams and the
caller (or the cluster's redispatch) decides whether to resubmit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.errors import DeadlineExceededError, QueueFullError, ServingError
from repro.nn.cache import PrefixCache
from repro.nn.continuous import AdmissionPolicy, ContinuousScheduler, GenerationStream
from repro.nn.generation import GenerationConfig
from repro.obs import Observability, get_observability
from repro.resilience.faults import fault_point
from repro.serving.engine import (
    EngineConfig,
    EngineStats,
    PendingResult,
    ScoreRequest,
    ScoreResult,
)


@dataclass
class GenerationApp:
    """What a continuous replica runs: a model plus request codecs.

    ``encode`` turns a :class:`ScoreRequest` into prompt token ids;
    ``finish`` turns the request and its generated tokens into the
    :class:`ScoreResult` handed to the caller (latency / batch-size /
    replica metadata is filled in by the engine and supervisor).
    """

    model: object  # MistralTiny (duck-typed: anything generate() accepts)
    encode: Callable[[ScoreRequest], np.ndarray]
    finish: Callable[[ScoreRequest, list[int]], ScoreResult]
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    prefix_cache: PrefixCache | None = None


class _Flight:
    """Engine-side bookkeeping for one admitted request."""

    __slots__ = ("pending", "enqueued_at")

    def __init__(self, pending: PendingResult, enqueued_at: float):
        self.pending = pending
        self.enqueued_at = enqueued_at


AppProvider = Callable[[], GenerationApp]


class ContinuousEngine:
    """Bounded-queue continuous batcher over a generation app.

    Parameters
    ----------
    app:
        A :class:`GenerationApp`, or a zero-arg provider returning one.
        A provider is re-consulted every pump — the cluster supervisor
        passes the replica transport's accessor, so a restarted replica
        (fresh model instance) is picked up automatically, and a dead
        one raises :class:`~repro.errors.ReplicaCrashedError` which
        fails the in-flight streams for redispatch.
    config:
        :class:`~repro.serving.engine.EngineConfig`; ``queue_capacity``
        bounds admission exactly like the micro-batch engine, and
        ``max_batch_size`` seeds the default admission policy's
        ``max_live_rows``.  ``max_wait_s`` is unused — a decode step,
        not a timer, is the batching heartbeat.
    policy:
        :class:`~repro.nn.continuous.AdmissionPolicy` override.
    clock / obs:
        As on :class:`~repro.serving.engine.MicroBatchEngine`.
    """

    def __init__(
        self,
        app: GenerationApp | AppProvider,
        config: EngineConfig | None = None,
        policy: AdmissionPolicy | None = None,
        clock: Callable[[], float] = time.time,
        obs: Observability | None = None,
    ):
        self.config = config or EngineConfig()
        self.policy = policy or AdmissionPolicy(max_live_rows=self.config.max_batch_size)
        self._provider: AppProvider = app if callable(app) else (lambda: app)
        self._clock = clock
        self._queue: deque[tuple[PendingResult, float]] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_submitted = metrics.counter("serving.submitted")
        self._m_rejected = metrics.counter("serving.rejected")
        self._m_expired = metrics.counter("serving.expired")
        self._m_failed = metrics.counter("serving.failed")
        self._m_completed = metrics.counter("serving.completed")
        self._m_withdrawn = metrics.counter("serving.withdrawn")
        self._g_queue_depth = metrics.gauge("serving.queue_depth")
        self._h_latency = metrics.histogram("serving.latency_s")
        self._h_batch_size = metrics.histogram("serving.batch_size")
        self.stats = EngineStats(latency=self._h_latency if metrics.enabled else None)
        self._scheduler: ContinuousScheduler | None = None
        self._scheduler_app: GenerationApp | None = None
        self._flights: dict[GenerationStream, _Flight] = {}
        self._worker: threading.Thread | None = None
        self._running = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting for admission (queued + scheduler-waiting)."""
        with self._lock:
            depth = len(self._queue)
        if self._scheduler is not None:
            depth += self._scheduler.waiting
        return depth

    @property
    def live_rows(self) -> int:
        """Rows currently decoding."""
        return self._scheduler.live_rows if self._scheduler is not None else 0

    def submit(self, request: ScoreRequest) -> PendingResult:
        """Enqueue one request; raises :class:`QueueFullError` when full."""
        if not request.behavior_text.strip():
            raise ServingError("behavior_text must be non-empty")
        with self._not_empty:
            if len(self._queue) >= self.config.queue_capacity:
                self.stats.rejected += 1
                self._m_rejected.inc()
                raise QueueFullError(
                    f"queue at capacity ({self.config.queue_capacity}); retry later"
                )
            pending = PendingResult(request)
            self._queue.append((pending, self._clock()))
            self.stats.submitted += 1
            self._m_submitted.inc()
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
            self._g_queue_depth.set(len(self._queue))
            self._not_empty.notify()
        return pending

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def _current_app(self) -> GenerationApp:
        return self._provider()

    def _ensure_scheduler(self) -> ContinuousScheduler:
        """The live scheduler, rebuilt when the app instance changed.

        An app change (replica restart, weight swap that rebuilt the
        model) can only be observed between pumps; at that point any
        in-flight rows of the old app have already been failed, so a
        fresh loop is safe.
        """
        app = self._current_app()
        if self._scheduler is None or self._scheduler_app is not app:
            if self._scheduler is not None and (
                self._scheduler.live_rows or self._scheduler.waiting
            ):
                raise ServingError(
                    "generation app changed with streams in flight; "
                    "withdraw them before swapping the app"
                )
            self._scheduler = ContinuousScheduler(
                app.model,
                config=app.generation,
                policy=self.policy,
                prefix_cache=app.prefix_cache,
                obs=self.obs,
            )
            self._scheduler_app = app
        return self._scheduler

    def _take_admissible(self, room: int) -> list[tuple[PendingResult, float]]:
        """Pop up to ``room`` live requests, expiring stale ones.

        Same boundary as the micro-batch engine: strict ``clock() >
        deadline`` — an exact-deadline request is admitted and, once
        admitted, always decodes to completion (its one attempt).
        """
        batch: list[tuple[PendingResult, float]] = []
        expired: list[PendingResult] = []
        with self._lock:
            while self._queue and len(batch) < room:
                pending, enqueued_at = self._queue.popleft()
                deadline = pending.request.deadline
                if deadline is not None and self._clock() > deadline:
                    self.stats.expired += 1
                    self._m_expired.inc()
                    expired.append(pending)
                    continue
                batch.append((pending, enqueued_at))
            self._g_queue_depth.set(len(self._queue))
        # Finalize outside the lock (done-callbacks may re-enter submit).
        for pending in expired:
            pending._reject(
                DeadlineExceededError(
                    f"request for {pending.request.user_id!r} expired in queue"
                )
            )
        return batch

    def pump(self) -> int:
        """Admit what fits, decode one step, finalize finished streams.

        Returns the number of work units this pump performed (rows
        admitted plus rows decoded); 0 means the engine is idle.
        """
        try:
            scheduler = self._ensure_scheduler()
            app = self._scheduler_app
        except Exception as error:
            # No app means no progress is possible: fail the in-flight
            # streams AND the queue, or the supervisor's drain would
            # stall on a queue nobody will ever decode.
            self._crash(self._scheduler, error)
            self._fail_queue(error)
            return 0
        room = max(0, self.policy.max_live_rows - scheduler.live_rows - scheduler.waiting)
        batch = self._take_admissible(room)
        for pending, enqueued_at in batch:
            try:
                prompt = app.encode(pending.request)
            except Exception as error:
                self.stats.failed += 1
                self._m_failed.inc()
                pending._reject(error)
                continue
            stream = scheduler.submit(
                prompt,
                on_token=lambda _s, token, p=pending: p._emit_token(token),
                request_id=pending.request.user_id,
            )
            self._flights[stream] = _Flight(pending, enqueued_at)
        if not scheduler.has_work:
            return 0
        rows = scheduler.live_rows + scheduler.waiting
        try:
            fault_point("cluster.scheduler", live=scheduler.live_rows, waiting=scheduler.waiting)
            with self.obs.span("serving.batch", batch_size=rows):
                scheduler.step()
        except Exception as error:
            self._crash(scheduler, error)
            return rows
        self.stats.batches += 1
        self._h_batch_size.observe(max(1, scheduler.live_rows))
        self._finalize_done(app)
        return rows

    def _finalize_done(self, app: GenerationApp) -> None:
        finished = [
            (stream, flight)
            for stream, flight in self._flights.items()
            if stream.done
        ]
        if not finished:
            return
        now = self._clock()
        batch_size = max(1, self.live_rows + len(finished))
        for stream, flight in finished:
            del self._flights[stream]
            if stream.error is not None:
                self.stats.failed += 1
                self._m_failed.inc()
                flight.pending._reject(stream.error)
                continue
            latency = max(0.0, now - flight.enqueued_at)
            try:
                result = app.finish(flight.pending.request, list(stream.tokens))
            except Exception as error:
                self.stats.failed += 1
                self._m_failed.inc()
                flight.pending._reject(error)
                continue
            result = replace(result, latency_s=latency, batch_size=batch_size)
            self.stats.completed += 1
            self.stats.total_latency_s += latency
            self._m_completed.inc()
            self._h_latency.observe(latency)
            flight.pending._resolve(result)

    def _fail_queue(self, error: BaseException) -> None:
        with self._lock:
            stranded = list(self._queue)
            self._queue.clear()
            self._g_queue_depth.set(0)
        self.stats.failed += len(stranded)
        self._m_failed.inc(len(stranded))
        for pending, _ in stranded:
            pending._reject(error)

    def _crash(self, scheduler: ContinuousScheduler | None, error: BaseException) -> None:
        """Fail every in-flight stream with ``error`` and reset the loop."""
        if scheduler is not None:
            scheduler.abort_all(error)
        flights, self._flights = self._flights, {}
        self._scheduler = None
        self._scheduler_app = None
        self.stats.failed += len(flights)
        self._m_failed.inc(len(flights))
        for flight in flights.values():
            flight.pending._reject(error)

    def drain(self) -> None:
        """Pump until no queued or in-flight work remains."""
        while self.pump():
            pass

    def withdraw_all(self, error: BaseException) -> int:
        """Reject every queued *and* in-flight request with ``error``.

        The supervisor's dead-replica path: unlike the micro-batch
        engine, live decodes are also withdrawn — a dead model cannot
        finish them — so redispatch callbacks can move everything.
        """
        with self._lock:
            withdrawn = list(self._queue)
            self._queue.clear()
            self._g_queue_depth.set(0)
        count = len(withdrawn)
        self.stats.failed += count
        self._m_withdrawn.inc(count)
        for pending, _ in withdrawn:
            pending._reject(error)
        in_flight = len(self._flights)
        if in_flight:
            self._m_withdrawn.inc(in_flight)
            self._crash(self._scheduler, error)
            count += in_flight
        return count

    def serve(self, requests: Sequence[ScoreRequest]) -> list[ScoreResult]:
        """Submit, drain, collect — all-or-nothing on queue overflow."""
        pendings: list[PendingResult] = []
        try:
            for request in requests:
                pendings.append(self.submit(request))
        except QueueFullError:
            with self._lock:
                mine = {id(p) for p in pendings}
                before = len(self._queue)
                self._queue = deque(
                    item for item in self._queue if id(item[0]) not in mine
                )
                withdrawn = before - len(self._queue)
                self.stats.submitted -= withdrawn
                self._m_withdrawn.inc(withdrawn)
                self._g_queue_depth.set(len(self._queue))
            raise
        self.drain()
        return [p.result(timeout=0) for p in pendings]

    # ------------------------------------------------------------------
    # Threaded worker
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Launch the background decode loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self._worker = threading.Thread(target=self._worker_loop, daemon=True)
        self._worker.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; by default decode whatever is still pending."""
        if self._running:
            self._running = False
            with self._not_empty:
                self._not_empty.notify_all()
            if self._worker is not None:
                self._worker.join()
                self._worker = None
        if drain:
            self.drain()

    def __enter__(self) -> "ContinuousEngine":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _has_work(self) -> bool:
        if self._scheduler is not None and self._scheduler.has_work:
            return True
        return bool(self._queue)

    def _worker_loop(self) -> None:
        while True:
            with self._not_empty:
                while self._running and not self._has_work():
                    self._not_empty.wait()
                if not self._running:
                    return
            self.pump()
