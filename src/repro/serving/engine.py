"""Micro-batching serving engine for the Behavior Card service.

Production inference stacks (Xinference, vLLM, Triton) get their
throughput from *dynamic batching*: requests land in a bounded FIFO
queue, a single worker loop assembles batches of up to
``max_batch_size`` (waiting at most ``max_wait_s`` for stragglers) and
scores each batch through one padded forward pass.  This module brings
that architecture to the laptop-scale reproduction:

* :class:`ScoreRequest` / :class:`ScoreResult` — the unified
  request/response API shared by every serving entry point.
* :class:`MicroBatchEngine` — the scheduler.  Admission control is
  explicit: a full queue rejects with :class:`~repro.errors.QueueFullError`
  (backpressure), per-request deadlines expire stale traffic in-queue
  with :class:`~repro.errors.DeadlineExceededError`, and an optional
  fallback scorer keeps the service answering (flagged ``degraded``)
  when the model path raises.
* :class:`EngineStats` — latency / throughput / queue-depth counters,
  including latency quantiles backed by the observability layer.

The engine is instrumented through :class:`repro.obs.Observability`
(metric names in ``docs/observability.md``): admission / expiry /
degradation counters, a queue-depth gauge, batch-size and latency
histograms, and ``serving.batch`` / ``serving.forward`` trace spans.
Instrumentation is on by default and costs well under 3 % of serving
throughput (``benchmarks/bench_obs_overhead.py``); pass
``Observability.disabled()`` to turn it off entirely.

Fault containment is delegated to :mod:`repro.resilience`
(``docs/resilience.md``): an optional :class:`RetryPolicy` retries the
primary scorer within the request deadline, and an optional
:class:`CircuitBreaker` routes traffic straight to the degraded
fallback while the primary path is known-broken, instead of paying a
failing forward pass per batch.

The engine is transport-agnostic: it schedules any
``batch_fn(list[ScoreRequest]) -> list[ScoreResult]``.
:class:`~repro.serving.behavior_card.BehaviorCardService` supplies one
that runs its cache, audit log and stats, so batched traffic observes
identical semantics to single-request ``decide`` calls.

Two drive modes:

* **Synchronous** — ``submit()`` then ``pump()``/``drain()`` (or the
  ``serve()`` convenience).  Deterministic; what the tests use.
* **Threaded** — ``start()`` spins a daemon worker that batches
  concurrent ``submit()`` traffic; callers block on
  ``PendingResult.result()``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QueueFullError,
    ServingError,
    ServingTimeout,
)
from repro.obs import Observability, get_observability
from repro.obs.metrics import Histogram
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.resilience.faults import fault_point


@dataclass(frozen=True)
class ScoreRequest:
    """One scoring request: who is asking and what to score.

    ``deadline`` is an *absolute* time on the engine's (injectable)
    clock; a queued request whose deadline passes is expired instead of
    scored, so the worker never burns a forward pass on traffic the
    caller has already abandoned.
    """

    user_id: str
    behavior_text: str
    deadline: float | None = None


@dataclass(frozen=True)
class ScoreResult:
    """Unified response: decision fields plus serving metadata."""

    user_id: str
    score: float  # P(default)
    approved: bool
    threshold: float
    cached: bool
    degraded: bool = False  # scored by the fallback path
    latency_s: float = 0.0  # enqueue -> completion on the engine clock
    batch_size: int = 1  # size of the batch this request rode in
    replica: int | None = None  # which cluster replica scored it (None: single engine)


@dataclass(frozen=True)
class EngineConfig:
    """Batching and admission-control knobs.

    max_batch_size:
        Largest batch the worker assembles per forward pass.
    max_wait_s:
        How long the threaded worker holds an underfull batch open for
        stragglers.  Synchronous ``pump()`` never waits.
    queue_capacity:
        Bound on the FIFO queue; admissions beyond it raise
        :class:`QueueFullError`.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.005
    queue_capacity: int = 64

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise ServingError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_s < 0:
            raise ServingError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.queue_capacity <= 0:
            raise ServingError(f"queue_capacity must be positive, got {self.queue_capacity}")


@dataclass
class EngineStats:
    """Counters the engine maintains; cheap enough to read at any time.

    When the engine is observability-enabled the stats also expose
    end-to-end latency quantiles, backed by the registry's
    ``serving.latency_s`` histogram (0.0 when disabled or empty).
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0  # QueueFullError admissions
    expired: int = 0  # deadline passed in-queue
    failed: int = 0  # model path raised and no fallback absorbed it
    degraded: int = 0  # answered by the fallback scorer
    batches: int = 0
    total_latency_s: float = 0.0
    max_queue_depth: int = 0
    latency: Histogram | None = field(default=None, repr=False, compare=False)

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.completed if self.completed else 0.0

    @property
    def rejection_rate(self) -> float:
        offered = self.submitted + self.rejected
        return self.rejected / offered if offered else 0.0

    def latency_quantile(self, q: float) -> float:
        """End-to-end latency quantile over the recent window."""
        return self.latency.quantile(q) if self.latency is not None else 0.0

    @property
    def p50_latency_s(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_quantile(0.95)


class PendingResult:
    """A slot for one in-flight request (a minimal, thread-safe future).

    Finalization is **exactly-once**: a second ``_resolve``/``_reject``
    raises :class:`ServingError` instead of silently overwriting the
    first outcome.  The serving-tier property suite leans on this guard
    — any scheduler interleaving that double-completes a request fails
    loudly rather than corrupting a caller's result.
    """

    def __init__(self, request: ScoreRequest):
        self.request = request
        self._event = threading.Event()
        self._result: ScoreResult | None = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["PendingResult"], None]] = []
        self._finalize_lock = threading.Lock()
        self._stream: list[int] = []
        self._token_callbacks: list[Callable[["PendingResult", int], None]] = []
        self._stream_cond = threading.Condition(self._finalize_lock)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def error(self) -> BaseException | None:
        """The stored failure, if this request completed with one."""
        return self._error

    def add_done_callback(self, fn: Callable[["PendingResult"], None]) -> None:
        """Run ``fn(self)`` when the request finalizes (immediately if done).

        Callbacks fire on the finalizing thread, after the result/error
        is stored and waiters are released.  This is the engine hook the
        cluster supervisor uses to propagate per-replica completions —
        and to re-dispatch requests off a crashed replica.  Exceptions
        raised by a callback propagate to the finalizer.
        """
        run_now = False
        with self._finalize_lock:
            if self.done:
                run_now = True
            else:
                self._callbacks.append(fn)
        if run_now:
            fn(self)

    def _finalize(self, result: ScoreResult | None, error: BaseException | None) -> None:
        with self._finalize_lock:
            if self.done:
                raise ServingError(
                    f"request for {self.request.user_id!r} finalized twice"
                )
            self._result = result
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
            self._stream_cond.notify_all()
        for fn in callbacks:
            fn(self)

    def _resolve(self, result: ScoreResult) -> None:
        self._finalize(result, None)

    def _reject(self, error: BaseException) -> None:
        self._finalize(None, error)

    # -- token streaming (continuous engine) ---------------------------

    @property
    def stream(self) -> tuple[int, ...]:
        """Tokens streamed so far — a prefix of the final decode output.

        Populated only by generation engines (:class:`ContinuousEngine`);
        micro-batch scoring leaves it empty.
        """
        with self._finalize_lock:
            return tuple(self._stream)

    def add_token_callback(self, fn: Callable[["PendingResult", int], None]) -> None:
        """Run ``fn(self, token_id)`` for every streamed token.

        Fires synchronously on the decoding thread, in emission order.
        Tokens emitted before registration are not replayed — read
        :attr:`stream` for the full prefix.
        """
        with self._finalize_lock:
            self._token_callbacks.append(fn)

    def _emit_token(self, token_id: int) -> None:
        with self._finalize_lock:
            if self.done:
                raise ServingError(
                    f"request for {self.request.user_id!r} streamed a token "
                    "after finalization"
                )
            self._stream.append(token_id)
            callbacks = list(self._token_callbacks)
            self._stream_cond.notify_all()
        for fn in callbacks:
            fn(self, token_id)

    def token_stream(self, timeout: float | None = None):
        """Iterate tokens as they decode; ends when the request finalizes.

        Safe to consume from another thread while the engine decodes.
        ``timeout`` bounds the wait for each *next* token and raises
        :class:`~repro.errors.ServingTimeout` on expiry.  Iteration
        always ends cleanly at finalization — for a failed request the
        stream stops at the last good token and the terminal error is
        delivered (exactly once) by :meth:`result`.
        """
        index = 0
        while True:
            with self._stream_cond:
                while index >= len(self._stream) and not self.done:
                    if not self._stream_cond.wait(timeout):
                        raise ServingTimeout(
                            f"no token for {self.request.user_id!r} within {timeout}s"
                        )
                if index < len(self._stream):
                    token = self._stream[index]
                    index += 1
                else:
                    return
            yield token

    def result(self, timeout: float | None = None) -> ScoreResult:
        """Block until scored; re-raise the stored error if the request failed.

        Raises :class:`~repro.errors.ServingTimeout` (not a generic
        :class:`ServingError`) when the wait expires: the request is
        **still queued / in flight** and may complete later — retry
        :meth:`result` or abandon the answer, but do not assume scoring
        failed.
        """
        if not self._event.wait(timeout):
            raise ServingTimeout(
                f"result for {self.request.user_id!r} not ready within "
                f"{timeout}s; the request is still queued"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


BatchFn = Callable[[list[ScoreRequest]], list["ScoreResult"]]


class MicroBatchEngine:
    """Bounded-queue dynamic batcher in front of a batch scoring function.

    Parameters
    ----------
    batch_fn:
        Scores a non-empty list of requests and returns one
        :class:`ScoreResult` per request, in order.
    config:
        Batching / admission knobs (:class:`EngineConfig`).
    fallback_fn:
        Optional degraded-mode scorer with the same signature as
        ``batch_fn``.  When the primary path raises, the batch is
        re-scored through the fallback and every result is flagged
        ``degraded=True``; without a fallback the error propagates to
        each caller's :class:`PendingResult`.
    clock:
        Injected time source — deadlines, latency accounting and (via
        the service's ``batch_fn``) audit timestamps are all
        deterministic under test.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` around the
        primary ``batch_fn``.  Transient faults are retried with
        backoff, bounded by the earliest request deadline in the batch
        (on the engine clock), so retries never outlive the callers.
    breaker:
        Optional :class:`~repro.resilience.CircuitBreaker`.  Each
        batch's primary-path outcome feeds the breaker; while it is
        open the engine skips the primary scorer entirely and routes
        straight to ``fallback_fn`` (results flagged ``degraded``)
        instead of hammering a failing model.
    obs:
        Observability hub; defaults to the process-wide hub from
        :func:`repro.obs.get_observability`.  Pass
        ``Observability.disabled()`` to serve uninstrumented.
    """

    def __init__(
        self,
        batch_fn: BatchFn,
        config: EngineConfig | None = None,
        fallback_fn: BatchFn | None = None,
        clock: Callable[[], float] = time.time,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        obs: Observability | None = None,
    ):
        self.config = config or EngineConfig()
        self._batch_fn = batch_fn
        self._fallback_fn = fallback_fn
        self._retry = retry_policy
        self._breaker = breaker
        self._clock = clock
        self._queue: deque[tuple[PendingResult, float]] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_submitted = metrics.counter("serving.submitted")
        self._m_rejected = metrics.counter("serving.rejected")
        self._m_expired = metrics.counter("serving.expired")
        self._m_failed = metrics.counter("serving.failed")
        self._m_degraded = metrics.counter("serving.degraded")
        self._m_completed = metrics.counter("serving.completed")
        self._m_withdrawn = metrics.counter("serving.withdrawn")
        self._g_queue_depth = metrics.gauge("serving.queue_depth")
        self._h_latency = metrics.histogram("serving.latency_s")
        self._h_forward = metrics.histogram("serving.forward_s")
        self._h_batch_size = metrics.histogram("serving.batch_size")
        self.stats = EngineStats(
            latency=self._h_latency if metrics.enabled else None
        )
        self._worker: threading.Thread | None = None
        self._running = False
        self._idle_wakeups = 0

    @property
    def breaker(self) -> CircuitBreaker | None:
        return self._breaker

    @property
    def idle_wakeups(self) -> int:
        """Times the worker woke with nothing to do (should stay 0)."""
        return self._idle_wakeups

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def submit(self, request: ScoreRequest) -> PendingResult:
        """Enqueue one request; raises :class:`QueueFullError` when full."""
        if not request.behavior_text.strip():
            raise ServingError("behavior_text must be non-empty")
        with self._not_empty:
            if len(self._queue) >= self.config.queue_capacity:
                self.stats.rejected += 1
                self._m_rejected.inc()
                raise QueueFullError(
                    f"queue at capacity ({self.config.queue_capacity}); retry later"
                )
            pending = PendingResult(request)
            self._queue.append((pending, self._clock()))
            self.stats.submitted += 1
            self._m_submitted.inc()
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
            self._g_queue_depth.set(len(self._queue))
            self._not_empty.notify()
        return pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _take_batch(self) -> list[tuple[PendingResult, float]]:
        """Pop up to ``max_batch_size`` live requests, expiring stale ones.

        The deadline boundary is inclusive: a request whose deadline
        equals the current clock is still admitted (and, once admitted,
        always gets one primary attempt — see :meth:`_attempt_primary`).
        """
        batch: list[tuple[PendingResult, float]] = []
        expired: list[PendingResult] = []
        with self._lock:
            while self._queue and len(batch) < self.config.max_batch_size:
                pending, enqueued_at = self._queue.popleft()
                deadline = pending.request.deadline
                if deadline is not None and self._clock() > deadline:
                    self.stats.expired += 1
                    self._m_expired.inc()
                    expired.append(pending)
                    continue
                batch.append((pending, enqueued_at))
            self._g_queue_depth.set(len(self._queue))
        # Reject outside the lock: _reject runs done-callbacks on this
        # thread, and a callback may re-enter submit() (the cluster
        # supervisor's redispatch hook does exactly that) — finalizing
        # while holding self._lock would deadlock on the re-entry.
        for pending in expired:
            pending._reject(
                DeadlineExceededError(
                    f"request for {pending.request.user_id!r} expired in queue"
                )
            )
        return batch

    def _score_batch(self, batch: list[tuple[PendingResult, float]]) -> None:
        with self.obs.span("serving.batch", batch_size=len(batch)) as span:
            self._score_batch_inner(batch, span)

    def _batch_deadline(self, batch: list[tuple[PendingResult, float]]) -> float | None:
        """Earliest request deadline in the batch (bounds retry backoff)."""
        deadlines = [
            pending.request.deadline
            for pending, _ in batch
            if pending.request.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def _attempt_primary(
        self, requests: list[ScoreRequest], deadline: float | None
    ) -> list[ScoreResult]:
        """One primary-path scoring, retried under the policy if present."""

        def attempt() -> list[ScoreResult]:
            fault_point("serving.forward", batch_size=len(requests))
            return self._batch_fn(requests)

        if self._retry is None:
            return attempt()
        budget = None
        if deadline is not None:
            # Admission is the commitment point: a request that survived
            # the queue's strict ``clock() > deadline`` check always gets
            # this one attempt (RetryPolicy runs the first attempt
            # unconditionally).  An exact-deadline budget of 0 therefore
            # only forbids *retries* — it never silently drops the
            # request, keeping the boundary consistent with _take_batch.
            budget = max(0.0, deadline - self._clock())
        return self._retry.call(attempt, budget_s=budget)

    def _score_batch_inner(self, batch: list[tuple[PendingResult, float]], span) -> None:
        requests = [pending.request for pending, _ in batch]
        degraded = False
        results: list[ScoreResult] | None = None
        primary_error: BaseException | None = None
        forward_start = self._clock()
        if self._breaker is not None and not self._breaker.allow():
            # Tripped breaker: don't touch the failing primary path at
            # all; the degraded fallback answers immediately.
            primary_error = CircuitOpenError(
                "serving circuit breaker is open; primary scorer bypassed"
            )
        else:
            try:
                with self.obs.span("serving.forward", batch_size=len(batch)):
                    results = self._attempt_primary(requests, self._batch_deadline(batch))
            except Exception as error:
                primary_error = error
                if self._breaker is not None:
                    self._breaker.record_failure()
            else:
                if self._breaker is not None:
                    self._breaker.record_success()
        if results is None:
            assert primary_error is not None
            if self._fallback_fn is None:
                self._fail_batch(batch, primary_error)
                return
            try:
                results = self._fallback_fn(requests)
            except Exception as fallback_error:
                self._fail_batch(batch, fallback_error)
                return
            degraded = True
        self._h_forward.observe(max(0.0, self._clock() - forward_start))
        if len(results) != len(batch):
            self._fail_batch(
                batch,
                ServingError(
                    f"batch_fn returned {len(results)} results for {len(batch)} requests"
                ),
            )
            return
        now = self._clock()
        self.stats.batches += 1
        self._h_batch_size.observe(len(batch))
        span.attrs["degraded"] = degraded
        for (pending, enqueued_at), result in zip(batch, results):
            latency = max(0.0, now - enqueued_at)
            result = replace(
                result,
                degraded=degraded or result.degraded,
                latency_s=latency,
                batch_size=len(batch),
            )
            self.stats.completed += 1
            self.stats.degraded += int(result.degraded)
            self.stats.total_latency_s += latency
            self._m_completed.inc()
            self._m_degraded.inc(int(result.degraded))
            self._h_latency.observe(latency)
            pending._resolve(result)
        self.obs.event(
            "serving.batch",
            size=len(batch),
            degraded=degraded,
            queue_depth=self.queue_depth,
        )

    def _fail_batch(self, batch: list[tuple[PendingResult, float]], error: BaseException) -> None:
        self.stats.failed += len(batch)
        self._m_failed.inc(len(batch))
        for pending, _ in batch:
            pending._reject(error)

    def withdraw_all(self, error: BaseException) -> int:
        """Empty the queue, rejecting every queued request with ``error``.

        The cluster supervisor calls this when it declares a replica
        dead: queued traffic is finalized with a
        :class:`~repro.errors.ReplicaCrashedError` so done-callbacks can
        re-dispatch it to a healthy replica instead of leaving it
        stranded behind a corpse.  Returns the number withdrawn.
        """
        with self._lock:
            withdrawn = list(self._queue)
            self._queue.clear()
            self._g_queue_depth.set(0)
        self.stats.failed += len(withdrawn)
        self._m_withdrawn.inc(len(withdrawn))
        for pending, _ in withdrawn:
            pending._reject(error)
        return len(withdrawn)

    def pump(self) -> int:
        """Synchronously assemble and score one batch; returns its size."""
        batch = self._take_batch()
        if batch:
            self._score_batch(batch)
        return len(batch)

    def drain(self) -> None:
        """Pump until the queue is empty."""
        while self.pump():
            pass

    def serve(self, requests: Sequence[ScoreRequest]) -> list[ScoreResult]:
        """Submit, drain, and collect — the synchronous batched entry point.

        Admission control still applies: with more requests than
        ``queue_capacity`` the overflow raises :class:`QueueFullError`
        (submit in capacity-sized waves, or use the threaded worker,
        for larger bursts).  Admission is all-or-nothing here: on
        overflow, requests this call already enqueued are withdrawn, so
        none of a failed ``serve()`` is ever scored behind the caller's
        back.
        """
        pending = []
        try:
            for request in requests:
                pending.append(self.submit(request))
        except QueueFullError:
            with self._lock:
                mine = {id(p) for p in pending}
                before = len(self._queue)
                self._queue = deque(
                    item for item in self._queue if id(item[0]) not in mine
                )
                withdrawn = before - len(self._queue)
                self.stats.submitted -= withdrawn
                self._m_withdrawn.inc(withdrawn)
                self._g_queue_depth.set(len(self._queue))
            raise
        self.drain()
        return [p.result(timeout=0) for p in pending]

    # ------------------------------------------------------------------
    # Threaded worker
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Launch the background worker loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self._worker = threading.Thread(target=self._worker_loop, daemon=True)
        self._worker.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; by default score whatever is still queued."""
        if self._running:
            self._running = False
            with self._not_empty:
                self._not_empty.notify_all()
            if self._worker is not None:
                self._worker.join()
                self._worker = None
        if drain:
            self.drain()

    def __enter__(self) -> "MicroBatchEngine":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _worker_loop(self) -> None:
        while True:
            with self._not_empty:
                # Idle wait: no timeout, so a quiet engine does zero
                # periodic wakeups — submit() and stop() notify.  Any
                # return with nothing to do is a spurious wakeup,
                # counted so tests can pin the no-polling guarantee.
                while self._running and not self._queue:
                    self._not_empty.wait()
                    if self._running and not self._queue:
                        self._idle_wakeups += 1
                if not self._running:
                    return
            # Hold the batch open for stragglers: condition-timed waits
            # computed from max_wait_s, woken early by submit() when
            # the batch fills — never a sleep/poll spin.
            deadline = time.monotonic() + self.config.max_wait_s
            with self._not_empty:
                while self._running and len(self._queue) < self.config.max_batch_size:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(timeout=remaining)
            self.pump()
