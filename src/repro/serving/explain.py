"""Reason codes: feature-level explanations for credit decisions.

Lenders must return *adverse action reasons* with a decline ("checking
status too low", "recent late payments").  For a prompt-driven model the
model-agnostic way to get them is occlusion: remove one feature token
from the prompt, re-score, and attribute the score change to that
feature.  Positive delta = the feature pushed P(default) up (a reason
to decline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError


@dataclass(frozen=True)
class ReasonCode:
    """One feature's contribution to the decision."""

    feature: str
    value: str
    delta: float  # score(with feature) − score(without); >0 raised risk

    def describe(self) -> str:
        direction = "raised" if self.delta > 0 else "lowered"
        return f"{self.feature}={self.value} {direction} the risk score by {abs(self.delta):.3f}"


def _feature_tokens(prompt: str) -> list[tuple[int, str, str]]:
    """(position, name, value) for every ``name=value`` token in the prompt."""
    found = []
    for i, token in enumerate(prompt.split()):
        if "=" in token:
            name, _, value = token.partition("=")
            found.append((i, name, value))
    return found


def reason_codes(
    classifier,
    prompt: str,
    positive_text: str = "yes",
    negative_text: str = "no",
    top_k: int = 4,
) -> list[ReasonCode]:
    """Occlusion attribution of the classifier's score over the prompt.

    ``classifier`` needs a ``score(prompt, positive, negative)`` method
    (e.g. :class:`~repro.baselines.lm.LMClassifier`).  Returns the
    ``top_k`` features by absolute contribution, strongest first.
    """
    if top_k <= 0:
        raise ServingError("top_k must be positive")
    features = _feature_tokens(prompt)
    if not features:
        raise ServingError("prompt contains no name=value feature tokens to occlude")
    tokens = prompt.split()
    occlusions = [
        " ".join(t for i, t in enumerate(tokens) if i != position)
        for position, _, _ in features
    ]
    if hasattr(classifier, "score_batch"):
        # One padded forward for the base prompt plus all N occlusions
        # instead of N+1 sequential full passes.
        scores = classifier.score_batch([prompt] + occlusions, positive_text, negative_text)
        base, without = float(scores[0]), [float(s) for s in scores[1:]]
    else:
        base = float(classifier.score(prompt, positive_text, negative_text))
        without = [
            float(classifier.score(occluded, positive_text, negative_text))
            for occluded in occlusions
        ]
    codes = [
        ReasonCode(feature=name, value=value, delta=base - w)
        for (_, name, value), w in zip(features, without)
    ]
    codes.sort(key=lambda c: abs(c.delta), reverse=True)
    return codes[:top_k]


def adverse_action_reasons(
    classifier,
    prompt: str,
    positive_text: str = "yes",
    negative_text: str = "no",
    top_k: int = 4,
) -> list[ReasonCode]:
    """Only the risk-*raising* features — what a decline letter cites."""
    codes = reason_codes(
        classifier, prompt, positive_text, negative_text, top_k=max(top_k, 4)
    )
    raising = [c for c in codes if c.delta > 0]
    return raising[:top_k]
