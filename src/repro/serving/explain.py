"""Decision explanations: reason codes and influence-as-a-service.

Two complementary levels of "why was this applicant declined":

* **Feature level** (:func:`reason_codes` / occlusion): remove one
  feature token from the prompt, re-score, attribute the score change
  to that feature.  Positive delta = the feature pushed P(default) up
  (a reason to decline).  What an adverse-action letter cites.
* **Training-data level** (:class:`ExplainService`): which *training
  examples* — and which *tokens* of the applicant's record — drove the
  model toward this decision.  Queries run through the same
  micro-batching engine as scoring traffic, answer with the top-k
  influential examples from any :class:`~repro.influence.api.DataInfluence`
  estimator (DataInf by default: one backward pass per example at the
  final checkpoint, no replay), and every query is recorded in the
  Behavior Card audit log next to the decision it explains — model
  governance wants attribution queries as auditable as decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ServingError
from repro.obs import Observability, get_observability
from repro.serving.behavior_card import ExplainAuditEntry
from repro.serving.engine import (
    EngineConfig,
    MicroBatchEngine,
    ScoreRequest,
    ScoreResult,
)


@dataclass(frozen=True)
class ReasonCode:
    """One feature's contribution to the decision."""

    feature: str
    value: str
    delta: float  # score(with feature) − score(without); >0 raised risk

    def describe(self) -> str:
        direction = "raised" if self.delta > 0 else "lowered"
        return f"{self.feature}={self.value} {direction} the risk score by {abs(self.delta):.3f}"


def _feature_tokens(prompt: str) -> list[tuple[int, str, str]]:
    """(position, name, value) for every ``name=value`` token in the prompt."""
    found = []
    for i, token in enumerate(prompt.split()):
        if "=" in token:
            name, _, value = token.partition("=")
            found.append((i, name, value))
    return found


def reason_codes(
    classifier,
    prompt: str,
    positive_text: str = "yes",
    negative_text: str = "no",
    top_k: int = 4,
) -> list[ReasonCode]:
    """Occlusion attribution of the classifier's score over the prompt.

    ``classifier`` needs a ``score(prompt, positive, negative)`` method
    (e.g. :class:`~repro.baselines.lm.LMClassifier`).  Returns the
    ``top_k`` features by absolute contribution, strongest first.
    """
    if top_k <= 0:
        raise ServingError("top_k must be positive")
    features = _feature_tokens(prompt)
    if not features:
        raise ServingError("prompt contains no name=value feature tokens to occlude")
    tokens = prompt.split()
    occlusions = [
        " ".join(t for i, t in enumerate(tokens) if i != position)
        for position, _, _ in features
    ]
    if hasattr(classifier, "score_batch"):
        # One padded forward for the base prompt plus all N occlusions
        # instead of N+1 sequential full passes.
        scores = classifier.score_batch([prompt] + occlusions, positive_text, negative_text)
        base, without = float(scores[0]), [float(s) for s in scores[1:]]
    else:
        base = float(classifier.score(prompt, positive_text, negative_text))
        without = [
            float(classifier.score(occluded, positive_text, negative_text))
            for occluded in occlusions
        ]
    codes = [
        ReasonCode(feature=name, value=value, delta=base - w)
        for (_, name, value), w in zip(features, without)
    ]
    codes.sort(key=lambda c: abs(c.delta), reverse=True)
    return codes[:top_k]


def adverse_action_reasons(
    classifier,
    prompt: str,
    positive_text: str = "yes",
    negative_text: str = "no",
    top_k: int = 4,
) -> list[ReasonCode]:
    """Only the risk-*raising* features — what a decline letter cites."""
    codes = reason_codes(
        classifier, prompt, positive_text, negative_text, top_k=max(top_k, 4)
    )
    raising = [c for c in codes if c.delta > 0]
    return raising[:top_k]


# ----------------------------------------------------------------------
# Influence-as-a-service: training-data explanations for decisions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExplainRequest(ScoreRequest):
    """One explanation query; ``None`` fields fall back to the config."""

    k: int | None = None
    proponents: bool | None = None


@dataclass(frozen=True)
class InfluentialExample:
    """One training example returned by an explanation query."""

    index: int  # position in the service's training set
    score: float  # influence on the test example (sign = direction)
    text: str = ""  # human-readable snippet, when the service has one


@dataclass(frozen=True)
class TokenAttribution:
    """Per-token influence over the applicant's encoded record.

    ``scores[t]`` is the aggregate influence of the returned
    influential examples attributed to the token at sequence position
    ``positions[t]`` (supervised positions only); ``tokens`` carries
    the decoded token strings when the service has a decoder.
    """

    positions: tuple[int, ...]
    scores: tuple[float, ...]
    tokens: tuple[str, ...] = ()

    def top_tokens(self, k: int = 3) -> list[tuple[str, float]]:
        """The ``k`` tokens with the largest absolute attribution."""
        names = self.tokens or tuple(f"pos{p}" for p in self.positions)
        ranked = sorted(zip(names, self.scores), key=lambda ts: abs(ts[1]), reverse=True)
        return ranked[:k]


@dataclass(frozen=True)
class ExplainResult(ScoreResult):
    """A scoring decision plus the training data behind it.

    Frozen subclass of :class:`~repro.serving.engine.ScoreResult`, so
    explanation traffic rides the :class:`MicroBatchEngine` unchanged —
    the engine's ``dataclasses.replace`` bookkeeping (latency, batch
    size, degraded flags) works on it like any score result.
    """

    estimator: str = ""
    influential: tuple[InfluentialExample, ...] = ()
    token_attribution: TokenAttribution | None = None


@dataclass(frozen=True)
class ExplainConfig:
    """Knobs for the explanation service.

    top_k / proponents:
        Default number and direction of influential examples per query
        (``proponents=False`` returns the strongest opponents instead).
    attribute_tokens:
        Also compute the per-token decomposition per query.  The token
        pass costs one gradient row per supervised position of the test
        example (cached thereafter); turn it off for cheap bulk audits.
    max_batch_size / max_wait_s / queue_capacity:
        Micro-batching engine knobs; explanation queries are heavier
        than scores, so the defaults batch smaller and queue shorter.
    """

    top_k: int = 3
    proponents: bool = True
    attribute_tokens: bool = True
    max_batch_size: int = 4
    max_wait_s: float = 0.005
    queue_capacity: int = 16

    def __post_init__(self):
        if self.top_k <= 0:
            raise ServingError(f"top_k must be positive, got {self.top_k}")
        self.engine_config()

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            queue_capacity=self.queue_capacity,
        )


class ExplainService:
    """Serve "why was this applicant declined" influence queries.

    Parameters
    ----------
    estimator:
        Any :class:`~repro.influence.api.DataInfluence` implementation.
        :class:`~repro.influence.datainf.DataInf` is the serving-shaped
        choice (no checkpoint replay); TracInCP / TracSeq drop in
        unchanged when replay fidelity matters more than latency.
    train_examples:
        The tokenized ``(input_ids, labels)`` training set queries are
        attributed against — the corpus the model was fine-tuned on.
    encode:
        ``(behavior_text, answer) -> TokenExample``: how a live request
        becomes a test example whose loss gradient is attributed.  The
        answer is the *decided* one ("yes" for a decline under the
        default-probability question), so the explanation covers the
        decision actually made.
    behavior_card:
        The :class:`~repro.serving.behavior_card.BehaviorCardService`
        that scores the request first and records both the decision and
        the :class:`~repro.serving.behavior_card.ExplainAuditEntry`.
    train_texts:
        Optional human-readable snippet per training example, surfaced
        on :class:`InfluentialExample`.
    decode:
        Optional ``token_id -> str`` for naming attributed tokens.
    """

    def __init__(
        self,
        estimator,
        train_examples: Sequence,
        encode: Callable[[str, str], tuple[list[int], list[int]]],
        behavior_card,
        config: ExplainConfig | None = None,
        train_texts: Sequence[str] | None = None,
        decode: Callable[[int], str] | None = None,
        clock: Callable[[], float] = time.time,
        obs: Observability | None = None,
    ):
        if not train_examples:
            raise ServingError("ExplainService needs a non-empty training set")
        if train_texts is not None and len(train_texts) != len(train_examples):
            raise ServingError(
                f"{len(train_texts)} train_texts for {len(train_examples)} train examples"
            )
        self.estimator = estimator
        self.train_examples = list(train_examples)
        self.train_texts = list(train_texts) if train_texts is not None else None
        self.behavior_card = behavior_card
        self.config = config or ExplainConfig()
        self._encode = encode
        self._decode = decode
        self._clock = clock
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_requests = metrics.counter("explain.requests")
        self._m_declines = metrics.counter("explain.declines_explained")
        self._m_token_attr = metrics.counter("explain.token_attributions")
        self._h_top_score = metrics.histogram("explain.top_score")
        self.engine = MicroBatchEngine(
            batch_fn=self._explain_batch_fn,
            config=self.config.engine_config(),
            clock=clock,
            obs=self.obs,
        )

    # -- batch path ----------------------------------------------------

    def _train_text(self, index: int) -> str:
        return self.train_texts[index] if self.train_texts is not None else ""

    def _token_names(self, test_example, positions: tuple[int, ...]) -> tuple[str, ...]:
        if self._decode is None:
            return ()
        input_ids, _ = test_example
        return tuple(self._decode(int(input_ids[p])) for p in positions)

    def _explain_one(self, request: ScoreRequest) -> ExplainResult:
        k = getattr(request, "k", None) or self.config.top_k
        proponents = getattr(request, "proponents", None)
        if proponents is None:
            proponents = self.config.proponents
        with self.obs.span(
            "serving.explain.query",
            user_id=request.user_id,
            estimator=self.estimator.estimator_name,
            k=k,
        ):
            decision = self.behavior_card.decide(request.user_id, request.behavior_text)
            answer = "no" if decision.approved else "yes"
            test_example = self._encode(request.behavior_text, answer)
            top = self.estimator.k_most_influential(
                self.train_examples, [test_example], k=k, proponents=proponents
            )
            indices = [int(i) for i in top.indices[0]]
            scores = [float(s) for s in top.scores[0]]
            token_attribution = None
            if self.config.attribute_tokens:
                tokens = self.estimator.token_influence(self.train_examples, test_example)
                aggregate = tokens.scores[indices].sum(axis=0)
                token_attribution = TokenAttribution(
                    positions=tokens.positions,
                    scores=tuple(float(s) for s in aggregate),
                    tokens=self._token_names(test_example, tokens.positions),
                )
                self._m_token_attr.inc()
            self._m_requests.inc()
            self._m_declines.inc(int(not decision.approved))
            if scores:
                self._h_top_score.observe(scores[0])
            self.behavior_card.record_explanation(
                ExplainAuditEntry(
                    timestamp=self._clock(),
                    user_id=request.user_id,
                    estimator=self.estimator.estimator_name,
                    k=k,
                    proponents=proponents,
                    approved=decision.approved,
                    top_indices=tuple(indices),
                    top_scores=tuple(scores),
                )
            )
            self.obs.event(
                "serving.explain.audited",
                user_id=request.user_id,
                estimator=self.estimator.estimator_name,
                approved=decision.approved,
            )
            return ExplainResult(
                user_id=request.user_id,
                score=decision.score,
                approved=decision.approved,
                threshold=decision.threshold,
                cached=decision.cached,
                estimator=self.estimator.estimator_name,
                influential=tuple(
                    InfluentialExample(index=i, score=s, text=self._train_text(i))
                    for i, s in zip(indices, scores)
                ),
                token_attribution=token_attribution,
            )

    def _explain_batch_fn(self, requests: list[ScoreRequest]) -> list[ScoreResult]:
        with self.obs.span("serving.explain", batch=len(requests)):
            return [self._explain_one(request) for request in requests]

    # -- public API ----------------------------------------------------

    def explain(
        self,
        user_id: str,
        behavior_text: str,
        k: int | None = None,
        proponents: bool | None = None,
    ) -> ExplainResult:
        """Score one applicant and explain the decision (engine path)."""
        if not behavior_text.strip():
            raise ServingError("behavior_text must be non-empty")
        request = ExplainRequest(
            user_id=user_id, behavior_text=behavior_text, k=k, proponents=proponents
        )
        return self.engine.serve([request])[0]  # type: ignore[return-value]

    def explain_requests(self, requests: Sequence[ScoreRequest]) -> list[ExplainResult]:
        """Explain many requests through the micro-batching engine."""
        results: list[ExplainResult] = []
        wave = self.config.queue_capacity
        for start in range(0, len(requests), wave):
            results.extend(self.engine.serve(list(requests[start : start + wave])))  # type: ignore[arg-type]
        return results

    # -- construction --------------------------------------------------

    @classmethod
    def for_zigong(
        cls,
        zigong,
        train_examples: Sequence,
        checkpoints: Sequence,
        estimator: str = "datainf",
        behavior_card=None,
        config: ExplainConfig | None = None,
        obs: Observability | None = None,
        **estimator_kwargs,
    ) -> "ExplainService":
        """Wire an explanation service from a ZiGong model end to end.

        ``train_examples`` are :class:`~repro.data.instruct.InstructExample`
        values (the fine-tuning corpus) and ``checkpoints`` the records
        saved during that fine-tune; ``estimator`` picks the backend by
        name (``datainf`` / ``tracin`` / ``tracseq``).
        """
        from repro.data.templates import CLASSIFICATION_TEMPLATE
        from repro.influence import make_estimator

        service = behavior_card
        if service is None:
            from repro.serving.behavior_card import BehaviorCardService

            service = BehaviorCardService(zigong.classifier(), obs=obs)
        backend = make_estimator(
            estimator, zigong.model, checkpoints, obs=obs, **estimator_kwargs
        )
        encoded = zigong.tokenize(train_examples)
        question = service.config.question
        max_len = zigong.config.model.max_seq_len

        def encode(behavior_text: str, answer: str):
            prompt = CLASSIFICATION_TEMPLATE.format(
                sentence=behavior_text, question=question
            )
            input_ids, labels = zigong.tokenizer.encode_pair(prompt, answer)
            return input_ids[:max_len], labels[:max_len]

        return cls(
            backend,
            encoded,
            encode,
            service,
            config=config,
            train_texts=[example.text for example in train_examples],
            decode=zigong.tokenizer.vocab.id_to_token,
            obs=obs,
        )
