"""Behavior Card service — the paper's production deployment surface.

"This method has been successfully deployed in our Behavior Card
service, which supports the operational model in the loan process."

The service wraps a fine-tuned classifier: behavior text in, default
probability and approve/decline decision out, with an LRU response
cache and an append-only audit log (both regulatory table stakes for
credit decisioning).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ServingError
from repro.data.templates import CLASSIFICATION_TEMPLATE

DEFAULT_QUESTION = "will this user default on their loan"


@dataclass(frozen=True)
class BehaviorCardDecision:
    """Outcome of one scoring request."""

    user_id: str
    score: float  # P(default)
    approved: bool
    threshold: float
    cached: bool


@dataclass(frozen=True)
class AuditEntry:
    """Immutable audit-log record of one decision."""

    timestamp: float
    user_id: str
    score: float
    approved: bool
    prompt: str


@dataclass
class ServiceStats:
    requests: int = 0
    cache_hits: int = 0
    approvals: int = 0

    @property
    def approval_rate(self) -> float:
        return self.approvals / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0


class BehaviorCardService:
    """Loan-decision scoring service backed by a ZiGong classifier.

    Parameters
    ----------
    classifier:
        An :class:`~repro.baselines.lm.LMClassifier` (or anything with a
        compatible ``score(prompt, positive, negative)`` method).
    threshold:
        Approve when P(default) is strictly below this value.
    cache_size:
        Maximum number of cached (behavior text -> score) entries.
    clock:
        Injected time source for deterministic tests.
    """

    def __init__(
        self,
        classifier,
        threshold: float = 0.5,
        cache_size: int = 1024,
        question: str = DEFAULT_QUESTION,
        clock: Callable[[], float] = time.time,
    ):
        if not 0.0 < threshold < 1.0:
            raise ServingError(f"threshold must be in (0, 1), got {threshold}")
        if cache_size <= 0:
            raise ServingError(f"cache_size must be positive, got {cache_size}")
        self.classifier = classifier
        self.threshold = threshold
        self.question = question
        self._clock = clock
        self._cache: OrderedDict[str, float] = OrderedDict()
        self._cache_size = cache_size
        self._audit: list[AuditEntry] = []
        self.stats = ServiceStats()

    def _prompt(self, behavior_text: str) -> str:
        return CLASSIFICATION_TEMPLATE.format(sentence=behavior_text, question=self.question)

    def _score(self, behavior_text: str) -> tuple[float, bool]:
        cached = behavior_text in self._cache
        if cached:
            self._cache.move_to_end(behavior_text)
            score = self._cache[behavior_text]
        else:
            score = float(self.classifier.score(self._prompt(behavior_text), "yes", "no"))
            self._cache[behavior_text] = score
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return score, cached

    def decide(self, user_id: str, behavior_text: str) -> BehaviorCardDecision:
        """Score a user's behavior summary and record the decision."""
        if not behavior_text.strip():
            raise ServingError("behavior_text must be non-empty")
        score, cached = self._score(behavior_text)
        approved = score < self.threshold
        self.stats.requests += 1
        self.stats.cache_hits += int(cached)
        self.stats.approvals += int(approved)
        self._audit.append(
            AuditEntry(
                timestamp=self._clock(),
                user_id=user_id,
                score=score,
                approved=approved,
                prompt=self._prompt(behavior_text),
            )
        )
        return BehaviorCardDecision(
            user_id=user_id,
            score=score,
            approved=approved,
            threshold=self.threshold,
            cached=cached,
        )

    def decide_batch(self, requests: list[tuple[str, str]]) -> list[BehaviorCardDecision]:
        """Score many ``(user_id, behavior_text)`` pairs."""
        return [self.decide(user_id, text) for user_id, text in requests]

    def audit_log(self) -> list[AuditEntry]:
        """A copy of the append-only audit log."""
        return list(self._audit)
