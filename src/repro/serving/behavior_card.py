"""Behavior Card service — the paper's production deployment surface.

"This method has been successfully deployed in our Behavior Card
service, which supports the operational model in the loan process."

The service wraps a fine-tuned classifier: behavior text in, default
probability and approve/decline decision out, with an LRU response
cache and an append-only audit log (both regulatory table stakes for
credit decisioning).

Traffic flows through a :class:`~repro.serving.engine.MicroBatchEngine`:
requests are admitted to a bounded queue, assembled into dynamic
micro-batches and scored through one padded forward pass, with
backpressure (:class:`~repro.errors.QueueFullError`), per-request
deadlines and an optional degraded-mode fallback scorer.  The cache,
audit log, stats and drift monitoring all sit inside the batch path, so
batched and single-request traffic observe identical semantics.

API (see ``docs/serving.md``)::

    config = BehaviorCardConfig(threshold=0.5, max_batch_size=8)
    service = BehaviorCardService(zigong.classifier(), config)
    results = service.score_requests([ScoreRequest("u1", "spend=low ...")])

The pre-engine surface — loose ``threshold=...`` kwargs and
``decide_batch([(user_id, text), ...])`` tuples — still works through
thin deprecation shims.
"""

from __future__ import annotations

import sys
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.errors import ServingError
from repro.data.templates import CLASSIFICATION_TEMPLATE
from repro.obs import Observability, get_observability
from repro.serving.engine import (
    EngineConfig,
    MicroBatchEngine,
    ScoreRequest,
    ScoreResult,
)

DEFAULT_QUESTION = "will this user default on their loan"

# Call sites (file, line, message) that have already been warned about.
# Deprecation shims warn exactly once per call site: the first hit of a
# given caller line emits a DeprecationWarning, repeats stay silent, and
# a *different* call site still gets its own warning.  This keeps noisy
# request loops quiet without hiding any distinct usage.
_WARNED_SITES: set[tuple[str, int, str]] = set()


def _warn_deprecated_once(message: str, stacklevel: int = 2) -> None:
    """Emit ``DeprecationWarning`` once per (caller file, line, message)."""
    try:
        frame = sys._getframe(stacklevel)
        site = (frame.f_code.co_filename, frame.f_lineno, message)
    except ValueError:  # stack shallower than expected; warn unconditionally
        site = None
    if site is not None:
        if site in _WARNED_SITES:
            return
        _WARNED_SITES.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def reset_deprecation_warnings() -> None:
    """Forget warned call sites (so tests can re-assert the first hit)."""
    _WARNED_SITES.clear()


@dataclass(frozen=True)
class BehaviorCardConfig:
    """All serving knobs in one (validated, immutable) place.

    threshold:
        Approve when P(default) is strictly below this value.
    cache_size:
        Maximum number of cached (behavior text -> score) entries.
    question:
        The classification question templated into every prompt.
    max_batch_size / max_wait_s / queue_capacity:
        Micro-batching engine knobs; see
        :class:`~repro.serving.engine.EngineConfig`.
    """

    threshold: float = 0.5
    cache_size: int = 1024
    question: str = DEFAULT_QUESTION
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    queue_capacity: int = 64

    def __post_init__(self):
        if not 0.0 < self.threshold < 1.0:
            raise ServingError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.cache_size <= 0:
            raise ServingError(f"cache_size must be positive, got {self.cache_size}")
        self.engine_config()  # validate the engine knobs eagerly too

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            queue_capacity=self.queue_capacity,
        )


@dataclass(frozen=True)
class BehaviorCardDecision:
    """Outcome of one scoring request (legacy response shape)."""

    user_id: str
    score: float  # P(default)
    approved: bool
    threshold: float
    cached: bool


@dataclass(frozen=True)
class AuditEntry:
    """Immutable audit-log record of one decision."""

    timestamp: float
    user_id: str
    score: float
    approved: bool
    prompt: str
    degraded: bool = False


@dataclass(frozen=True)
class ExplainAuditEntry:
    """Immutable audit record of one influence-explanation query.

    Explanation queries disclose which training data shaped a decision;
    model governance wants them as auditable as the decisions
    themselves, so they land in the same append-only log (interleaved
    with :class:`AuditEntry` decision records, in arrival order).
    """

    timestamp: float
    user_id: str
    estimator: str  # which DataInfluence backend answered
    k: int
    proponents: bool
    approved: bool  # the decision being explained
    top_indices: tuple[int, ...]  # train-set indices returned
    top_scores: tuple[float, ...]


@dataclass
class ServiceStats:
    requests: int = 0
    cache_hits: int = 0
    approvals: int = 0
    degraded: int = 0

    @property
    def approval_rate(self) -> float:
        return self.approvals / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.requests if self.requests else 0.0


class BehaviorCardService:
    """Loan-decision scoring service backed by a ZiGong classifier.

    Parameters
    ----------
    classifier:
        An :class:`~repro.baselines.lm.LMClassifier` (or anything with a
        compatible ``score(prompt, positive, negative)`` method; a
        ``score_batch(prompts, positive, negative)`` method, when
        present, is used for one-forward-pass micro-batches).
    config:
        A :class:`BehaviorCardConfig`.  Loose ``threshold=`` /
        ``cache_size=`` / ``question=`` keyword arguments are still
        accepted as a deprecated shim and fold into the config.
    clock:
        Injected time source — audit timestamps and queue deadlines are
        deterministic under test.
    fallback_scorer:
        Optional ``behavior_text -> P(default)`` callable for degraded
        mode: when the model path raises, batches are re-scored through
        it (results and audit entries flagged ``degraded``) so the
        service keeps answering.
    """

    def __init__(
        self,
        classifier,
        config: BehaviorCardConfig | float | None = None,
        *,
        threshold: float | None = None,
        cache_size: int | None = None,
        question: str | None = None,
        clock: Callable[[], float] = time.time,
        fallback_scorer: Callable[[str], float] | None = None,
        obs: Observability | None = None,
    ):
        if isinstance(config, (int, float)):
            _warn_deprecated_once(
                "passing threshold positionally is deprecated; "
                "use BehaviorCardConfig(threshold=...)",
                stacklevel=2,
            )
            threshold = float(config)
            config = None
        legacy = {
            key: value
            for key, value in (
                ("threshold", threshold),
                ("cache_size", cache_size),
                ("question", question),
            )
            if value is not None
        }
        if config is None:
            config = BehaviorCardConfig(**legacy)
        elif legacy:
            _warn_deprecated_once(
                "loose keyword arguments are deprecated; "
                "pass a BehaviorCardConfig instead",
                stacklevel=2,
            )
            config = replace(config, **legacy)
        self.classifier = classifier
        self.config = config
        self._clock = clock
        self._fallback = fallback_scorer
        self._cache: OrderedDict[str, float] = OrderedDict()
        self._audit: list[AuditEntry | ExplainAuditEntry] = []
        self.stats = ServiceStats()
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_requests = metrics.counter("behavior_card.requests")
        self._m_cache_hits = metrics.counter("behavior_card.cache_hits")
        self._m_approvals = metrics.counter("behavior_card.approvals")
        self._m_degraded = metrics.counter("behavior_card.degraded")
        self._h_score = metrics.histogram("behavior_card.score")
        self.engine = MicroBatchEngine(
            batch_fn=self._score_batch_fn,
            config=config.engine_config(),
            fallback_fn=self._fallback_batch_fn if fallback_scorer is not None else None,
            clock=clock,
            obs=self.obs,
        )

    # Legacy attribute views (pre-config-object callers read these).
    @property
    def threshold(self) -> float:
        return self.config.threshold

    @property
    def question(self) -> str:
        return self.config.question

    # ------------------------------------------------------------------
    # Scoring internals (these run *inside* the engine's batch path)
    # ------------------------------------------------------------------

    def _prompt(self, behavior_text: str) -> str:
        return CLASSIFICATION_TEMPLATE.format(sentence=behavior_text, question=self.config.question)

    def _classifier_scores(self, prompts: list[str]) -> list[float]:
        """Model scores for prompts — one padded forward pass when possible."""
        if len(prompts) > 1 and hasattr(self.classifier, "score_batch"):
            return [float(s) for s in self.classifier.score_batch(prompts, "yes", "no")]
        return [float(self.classifier.score(p, "yes", "no")) for p in prompts]

    def _score_texts(self, texts: Sequence[str]) -> tuple[list[float], list[bool]]:
        """Cache-aware batched scoring: misses share one forward pass.

        Duplicate texts within a batch are scored once; later occurrences
        count as cache hits, matching what sequential ``decide`` calls
        would have observed.
        """
        scores: list[float | None] = [None] * len(texts)
        cached = [False] * len(texts)
        first_seen: dict[str, list[int]] = {}
        miss_texts: list[str] = []
        for i, text in enumerate(texts):
            if text in self._cache:
                self._cache.move_to_end(text)
                scores[i] = self._cache[text]
                cached[i] = True
            elif text in first_seen:
                first_seen[text].append(i)
                cached[i] = True
            else:
                first_seen[text] = [i]
                miss_texts.append(text)
        if miss_texts:
            fresh = self._classifier_scores([self._prompt(t) for t in miss_texts])
            for text, score in zip(miss_texts, fresh):
                for i in first_seen[text]:
                    scores[i] = score
                self._cache[text] = score
                if len(self._cache) > self.config.cache_size:
                    self._cache.popitem(last=False)
        return scores, cached  # type: ignore[return-value]

    def _finish(
        self, user_id: str, behavior_text: str, score: float, cached: bool,
        degraded: bool = False,
    ) -> ScoreResult:
        """Record one decision (stats + audit) and build its result."""
        approved = score < self.config.threshold
        self.stats.requests += 1
        self.stats.cache_hits += int(cached)
        self.stats.approvals += int(approved)
        self.stats.degraded += int(degraded)
        self._m_requests.inc()
        self._m_cache_hits.inc(int(cached))
        self._m_approvals.inc(int(approved))
        self._m_degraded.inc(int(degraded))
        self._h_score.observe(score)
        self._audit.append(
            AuditEntry(
                timestamp=self._clock(),
                user_id=user_id,
                score=score,
                approved=approved,
                prompt=self._prompt(behavior_text),
                degraded=degraded,
            )
        )
        return ScoreResult(
            user_id=user_id,
            score=score,
            approved=approved,
            threshold=self.config.threshold,
            cached=cached,
            degraded=degraded,
        )

    def _score_batch_fn(self, requests: list[ScoreRequest]) -> list[ScoreResult]:
        """The engine's primary batch path: cache, one forward pass, audit."""
        for request in requests:
            if not request.behavior_text.strip():
                raise ServingError("behavior_text must be non-empty")
        scores, cached = self._score_texts([r.behavior_text for r in requests])
        return [
            self._finish(r.user_id, r.behavior_text, s, c)
            for r, s, c in zip(requests, scores, cached)
        ]

    def _fallback_batch_fn(self, requests: list[ScoreRequest]) -> list[ScoreResult]:
        """Degraded mode: keep answering via the fallback scorer."""
        assert self._fallback is not None
        return [
            self._finish(
                r.user_id,
                r.behavior_text,
                float(self._fallback(r.behavior_text)),
                cached=False,
                degraded=True,
            )
            for r in requests
        ]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def decide(self, user_id: str, behavior_text: str) -> BehaviorCardDecision:
        """Score a user's behavior summary and record the decision."""
        if not behavior_text.strip():
            raise ServingError("behavior_text must be non-empty")
        scores, cached = self._score_texts([behavior_text])
        result = self._finish(user_id, behavior_text, scores[0], cached[0])
        return BehaviorCardDecision(
            user_id=result.user_id,
            score=result.score,
            approved=result.approved,
            threshold=result.threshold,
            cached=result.cached,
        )

    def score_requests(self, requests: Sequence[ScoreRequest]) -> list[ScoreResult]:
        """Score requests through the micro-batching engine (unified API).

        Requests are admitted in queue-capacity-sized waves so arbitrarily
        long lists never trip the engine's own backpressure; use
        ``service.engine.submit`` directly for per-request admission
        control under concurrent load.
        """
        results: list[ScoreResult] = []
        wave = self.config.queue_capacity
        for start in range(0, len(requests), wave):
            results.extend(self.engine.serve(list(requests[start : start + wave])))
        return results

    def decide_batch(
        self, requests: Sequence[ScoreRequest] | Sequence[tuple[str, str]]
    ) -> list[ScoreResult] | list[BehaviorCardDecision]:
        """Score many requests through the engine's batched path.

        Accepts :class:`ScoreRequest` objects (returning
        :class:`ScoreResult`) or legacy ``(user_id, behavior_text)``
        tuples (returning :class:`BehaviorCardDecision`, as before).
        """
        if not requests:
            return []
        if isinstance(requests[0], ScoreRequest):
            return self.score_requests(requests)  # type: ignore[arg-type]
        _warn_deprecated_once(
            "decide_batch with (user_id, text) tuples is deprecated; "
            "pass ScoreRequest objects",
            stacklevel=2,
        )
        score_requests = [
            ScoreRequest(user_id=user_id, behavior_text=text)
            for user_id, text in requests  # type: ignore[misc]
        ]
        return [
            BehaviorCardDecision(
                user_id=r.user_id,
                score=r.score,
                approved=r.approved,
                threshold=r.threshold,
                cached=r.cached,
            )
            for r in self.score_requests(score_requests)
        ]

    def record_explanation(self, entry: ExplainAuditEntry) -> None:
        """Append one influence-explanation query to the audit log.

        Called by :class:`~repro.serving.explain.ExplainService` for
        every query it serves; the entry sits next to the
        :class:`AuditEntry` of the decision it explains.
        """
        self._audit.append(entry)

    def audit_log(self) -> list[AuditEntry | ExplainAuditEntry]:
        """A copy of the append-only audit log (decisions + explanations)."""
        return list(self._audit)
