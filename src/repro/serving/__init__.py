"""Serving layer: the Behavior Card service, micro-batching engine, monitoring."""

from repro.serving.behavior_card import (
    AuditEntry,
    BehaviorCardConfig,
    BehaviorCardDecision,
    BehaviorCardService,
    ExplainAuditEntry,
    ServiceStats,
    reset_deprecation_warnings,
)
from repro.serving.engine import (
    EngineConfig,
    EngineStats,
    MicroBatchEngine,
    PendingResult,
    ScoreRequest,
    ScoreResult,
)
from repro.serving.explain import (
    ExplainConfig,
    ExplainRequest,
    ExplainResult,
    ExplainService,
    InfluentialExample,
    ReasonCode,
    TokenAttribution,
    adverse_action_reasons,
    reason_codes,
)
from repro.serving.scorecard import ScorecardScaler
from repro.serving.monitoring import (
    PSI_DRIFT,
    PSI_WATCH,
    DriftMonitor,
    ShadowDeployment,
    ShadowRecord,
    population_stability_index,
)

__all__ = [
    "BehaviorCardService",
    "BehaviorCardConfig",
    "BehaviorCardDecision",
    "AuditEntry",
    "ServiceStats",
    "MicroBatchEngine",
    "EngineConfig",
    "EngineStats",
    "PendingResult",
    "ScoreRequest",
    "ScoreResult",
    "population_stability_index",
    "DriftMonitor",
    "ShadowDeployment",
    "ShadowRecord",
    "PSI_WATCH",
    "PSI_DRIFT",
    "ScorecardScaler",
    "ReasonCode",
    "reason_codes",
    "adverse_action_reasons",
    "ExplainService",
    "ExplainConfig",
    "ExplainRequest",
    "ExplainResult",
    "ExplainAuditEntry",
    "InfluentialExample",
    "TokenAttribution",
    "reset_deprecation_warnings",
]
