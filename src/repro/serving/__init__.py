"""Serving layer: the Behavior Card service plus production monitoring."""

from repro.serving.behavior_card import (
    AuditEntry,
    BehaviorCardDecision,
    BehaviorCardService,
    ServiceStats,
)
from repro.serving.explain import ReasonCode, adverse_action_reasons, reason_codes
from repro.serving.scorecard import ScorecardScaler
from repro.serving.monitoring import (
    PSI_DRIFT,
    PSI_WATCH,
    DriftMonitor,
    ShadowDeployment,
    ShadowRecord,
    population_stability_index,
)

__all__ = [
    "BehaviorCardService",
    "BehaviorCardDecision",
    "AuditEntry",
    "ServiceStats",
    "population_stability_index",
    "DriftMonitor",
    "ShadowDeployment",
    "ShadowRecord",
    "PSI_WATCH",
    "PSI_DRIFT",
    "ScorecardScaler",
    "ReasonCode",
    "reason_codes",
    "adverse_action_reasons",
]
