"""Industry credit-score scaling (points-to-double-odds).

Credit operations communicate risk as *score points*, not raw
probabilities.  The standard mapping is log-odds scaling:

    score = offset + factor * ln(odds of good)
    factor = PDO / ln(2)
    offset = base_score - factor * ln(base_odds)

so that ``base_score`` corresponds to ``base_odds`` (good:bad) and every
``PDO`` points the odds double.  Defaults anchor 660 points at 50:1
odds with PDO 40, which spreads typical default probabilities across
the familiar 300-850 band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ServingError


@dataclass(frozen=True)
class ScorecardScaler:
    """Maps P(default) to scorecard points and back."""

    base_score: float = 660.0
    base_odds: float = 50.0
    pdo: float = 40.0
    min_score: float = 300.0
    max_score: float = 850.0

    def __post_init__(self):
        if self.pdo <= 0 or self.base_odds <= 0:
            raise ServingError("pdo and base_odds must be positive")
        if self.min_score >= self.max_score:
            raise ServingError("min_score must be below max_score")

    @property
    def factor(self) -> float:
        return self.pdo / math.log(2.0)

    @property
    def offset(self) -> float:
        return self.base_score - self.factor * math.log(self.base_odds)

    def score(self, p_default: float) -> float:
        """Scorecard points for a default probability (clamped to range)."""
        if not 0.0 <= p_default <= 1.0:
            raise ServingError(f"p_default must be in [0, 1], got {p_default}")
        eps = 1e-9
        p = min(max(p_default, eps), 1.0 - eps)
        odds_good = (1.0 - p) / p
        raw = self.offset + self.factor * math.log(odds_good)
        return float(min(max(raw, self.min_score), self.max_score))

    def probability(self, score: float) -> float:
        """Inverse mapping: P(default) implied by scorecard points.

        Only exact for scores inside the clamping range.
        """
        odds_good = math.exp((score - self.offset) / self.factor)
        return float(1.0 / (1.0 + odds_good))

    def band(self, p_default: float) -> str:
        """Coarse risk band used in lending UIs."""
        points = self.score(p_default)
        if points >= 740:
            return "excellent"
        if points >= 670:
            return "good"
        if points >= 580:
            return "fair"
        return "poor"
