"""Multi-worker serving cluster: supervisor, replicated engines, router.

One :class:`~repro.serving.engine.MicroBatchEngine` on one thread was
the whole serving tier; this module is the "heavy traffic" unlock.  It
follows the supervisor/worker architecture of production stacks
(xinference's ``WorkerActor`` lifecycle: registry, launch/terminate,
auto-restart of dead workers), scaled to this reproduction:

* :class:`ClusterSupervisor` — owns N *replicas*.  Each replica is a
  :class:`MicroBatchEngine` over its own model instance, reached
  through a transport: ``"thread"`` (in-process, deterministic — what
  the tests drive) or ``"fork"`` (a subprocess per replica; scoring
  escapes the parent entirely, and a SIGKILL is a *real* crash).
* **Load-aware routing** — requests go to the least-loaded replica
  whose state and circuit breaker admit traffic.  Per-tenant admission
  quotas and full queues reject with
  :class:`~repro.errors.QueueFullError`, propagating backpressure
  end-to-end instead of queueing unboundedly.
* **Health-gated dispatch** — periodic health checks feed a per-replica
  :class:`~repro.resilience.CircuitBreaker`; an open circuit routes
  traffic around a dead or slow worker without waiting for it to time
  out mid-request.
* **Auto-restart** — a crashed replica is declared dead, its queued
  requests are withdrawn and re-dispatched to healthy replicas (up to
  ``max_redispatch`` attempts — a crash never silently drops traffic),
  and the supervisor restarts it (``cluster.replica_restarted``).
* **Rolling weight deploys** — :meth:`ClusterSupervisor.deploy` stages
  a new state dict, then per replica: drain, swap, resume
  (``cluster.deploy_swapped``).  Swaps ride on
  ``Module.load_state_dict`` bumping ``weight_version``, which the
  :class:`~repro.nn.cache.PrefixCache` syncs against — no stale cache
  entry survives a deploy.  Replicas restarted mid- or post-deploy
  re-apply the staged weights, so a crash cannot resurrect old ones.

Every lifecycle transition lands on the observability hub as a
``cluster.replica`` event plus ``cluster.*`` counters and gauges
(``docs/serving.md`` documents the names); ``repro serve --replicas N``
is the CLI front end and ``benchmarks/bench_serving.py`` measures the
scaling curve.

Drive modes mirror the engine: **synchronous** (``submit`` +
``pump``/``drain``/``serve``, plus explicit ``check_health()`` — fully
deterministic) and **threaded** (``start()`` spins each replica's
worker plus a health-check loop; callers block on
``PendingResult.result()``).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.errors import (
    ClusterError,
    ConfigError,
    DeadlineExceededError,
    QueueFullError,
    ReplicaCrashedError,
    ServingError,
)
from repro.obs import Observability, get_observability
from repro.resilience import CircuitBreaker
from repro.resilience.faults import fault_point
from repro.serving.engine import (
    BatchFn,
    EngineConfig,
    MicroBatchEngine,
    PendingResult,
    ScoreRequest,
    ScoreResult,
)

# Replica lifecycle states.
STARTING = "starting"
HEALTHY = "healthy"
DRAINING = "draining"
DEAD = "dead"


@dataclass
class ReplicaApp:
    """What one replica actually runs: a scorer plus lifecycle hooks.

    ``batch_fn`` has the engine contract — one :class:`ScoreResult` per
    request, in order.  ``swap_weights`` applies a staged state dict
    (enables rolling deploys); ``weight_version`` reports the model's
    monotonic weight counter; ``ping`` is an optional deep health probe
    (transport liveness is always checked regardless).
    """

    batch_fn: BatchFn
    swap_weights: Callable[[Mapping[str, object]], None] | None = None
    weight_version: Callable[[], int] | None = None
    ping: Callable[[], None] | None = None
    # Optional generation bundle (a serving.continuous.GenerationApp):
    # required when the cluster runs engine_mode="continuous", unused
    # otherwise.  Thread transport only — the fork RPC ships whole score
    # batches, not token streams.
    generation: object | None = None


ReplicaFactory = Callable[[int], ReplicaApp]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-level knobs (per-replica engine knobs included).

    replicas:
        Number of engine replicas to run.
    transport:
        ``"thread"`` (in-process replicas, deterministic) or ``"fork"``
        (one subprocess per replica).
    tenant_quota:
        Maximum in-flight requests per tenant (``user_id``); admissions
        beyond it raise :class:`QueueFullError`.  ``None`` disables.
    max_redispatch:
        How many times one request may be re-dispatched off crashed
        replicas before the crash error is surfaced to the caller.
    max_restarts:
        Auto-restarts allowed per replica before the supervisor
        abandons it (leaves it ``dead``).
    health_interval_s:
        Period of the threaded health-check loop.
    rpc_timeout_s:
        Fork transport: how long one scoring round trip may take before
        the replica is declared crashed.
    ping_timeout_s:
        Fork transport: health-probe round-trip bound.
    drain_timeout_s:
        Rolling deploy: how long to wait for one replica to drain
        before aborting the deploy.
    """

    replicas: int = 2
    transport: str = "thread"
    engine_mode: str = "microbatch"  # or "continuous" (streaming decode)
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    queue_capacity: int = 64
    tenant_quota: int | None = None
    max_redispatch: int = 2
    max_restarts: int = 8
    health_interval_s: float = 0.05
    rpc_timeout_s: float = 30.0
    ping_timeout_s: float = 2.0
    drain_timeout_s: float = 10.0
    breaker_window: int = 8
    breaker_min_calls: int = 2
    breaker_failure_threshold: float = 0.5
    breaker_reset_timeout_s: float = 0.25

    def __post_init__(self):
        if self.replicas <= 0:
            raise ClusterError(f"replicas must be positive, got {self.replicas}")
        if self.transport not in ("thread", "fork"):
            raise ClusterError(
                f"transport must be 'thread' or 'fork', got {self.transport!r}"
            )
        if self.engine_mode not in ("microbatch", "continuous"):
            raise ClusterError(
                f"engine_mode must be 'microbatch' or 'continuous', got {self.engine_mode!r}"
            )
        if self.engine_mode == "continuous" and self.transport != "thread":
            raise ClusterError(
                "engine_mode='continuous' requires the thread transport: "
                "the fork RPC ships whole score batches, not token streams"
            )
        if self.tenant_quota is not None and self.tenant_quota <= 0:
            raise ClusterError(f"tenant_quota must be positive, got {self.tenant_quota}")
        if self.max_redispatch < 0:
            raise ClusterError(f"max_redispatch must be >= 0, got {self.max_redispatch}")
        if self.max_restarts < 0:
            raise ClusterError(f"max_restarts must be >= 0, got {self.max_restarts}")
        for name in ("health_interval_s", "rpc_timeout_s", "ping_timeout_s", "drain_timeout_s"):
            if getattr(self, name) <= 0:
                raise ClusterError(f"{name} must be positive, got {getattr(self, name)}")
        self.engine_config()  # validate engine knobs eagerly

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            queue_capacity=self.queue_capacity,
        )


@dataclass
class ClusterStats:
    """Supervisor-level counters (each replica's engine keeps its own)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0  # no replica could admit the request
    quota_rejected: int = 0  # per-tenant admission quota hit
    redispatched: int = 0  # requests moved off a crashed replica
    restarts: int = 0
    swaps: int = 0  # rolling-deploy weight swaps applied
    health_checks: int = 0

    @property
    def resolved(self) -> int:
        return self.completed + self.failed


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------


class ThreadTransport:
    """In-process replica: the app lives in the supervisor's process.

    Deterministic and cheap — the default for tests and for workloads
    where subprocess isolation isn't worth a fork.  A "crash" is
    simulated: :meth:`kill` (or a scoring path that raises
    :class:`ReplicaCrashedError`, e.g. via an armed fault point) marks
    the transport dead until :meth:`restart` rebuilds the app.
    """

    def __init__(self, factory: ReplicaFactory, replica_id: int):
        self._factory = factory
        self.replica_id = replica_id
        self._app: ReplicaApp | None = None
        self._crashed = False

    @property
    def alive(self) -> bool:
        return self._app is not None and not self._crashed

    def start(self) -> None:
        if self._app is None:
            self._app = self._factory(self.replica_id)
            self._crashed = False

    def _check_alive(self) -> ReplicaApp:
        if self._app is None or self._crashed:
            raise ReplicaCrashedError(f"replica {self.replica_id} is dead")
        return self._app

    def score(self, requests: list[ScoreRequest]) -> list[ScoreResult]:
        app = self._check_alive()
        try:
            fault_point("cluster.replica.forward", replica=self.replica_id)
            return app.batch_fn(requests)
        except ReplicaCrashedError:
            self._crashed = True
            raise

    def generation_app(self):
        """The app's generation bundle (continuous engine mode).

        The continuous engine calls this every pump, so a restarted
        replica's fresh app is picked up automatically and a dead one
        raises :class:`ReplicaCrashedError` mid-loop — the same crash
        signal ``score`` gives the micro-batch engine.
        """
        app = self._check_alive()
        if app.generation is None:
            raise ClusterError(
                f"replica {self.replica_id} app has no generation bundle; "
                "engine_mode='continuous' needs ReplicaApp.generation"
            )
        return app.generation

    def ping(self) -> None:
        app = self._check_alive()
        try:
            fault_point("cluster.replica.ping", replica=self.replica_id)
            if app.ping is not None:
                app.ping()
        except ReplicaCrashedError:
            self._crashed = True
            raise

    def swap(self, state: Mapping[str, object]) -> None:
        app = self._check_alive()
        if app.swap_weights is None:
            raise ClusterError(
                f"replica {self.replica_id} app does not support weight swaps"
            )
        app.swap_weights(state)

    def weight_version(self) -> int | None:
        app = self._check_alive()
        return app.weight_version() if app.weight_version is not None else None

    def kill(self) -> None:
        """Chaos helper: make this replica dead until restarted."""
        self._crashed = True

    def restart(self) -> None:
        self._app = self._factory(self.replica_id)
        self._crashed = False

    def stop(self) -> None:
        self._app = None
        self._crashed = False


def _replica_child_main(conn, factory: ReplicaFactory, replica_id: int) -> None:
    """The fork-transport child loop: recv op, run it, send the reply.

    Scoring errors are *replies* (the replica stays up); ``SystemExit``
    and ``KeyboardInterrupt`` — including ones raised by an armed fault
    point — hard-exit without replying, which the parent observes as a
    dead pipe and maps to :class:`ReplicaCrashedError`.
    """
    app = factory(replica_id)
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        try:
            if op == "score":
                fault_point("cluster.replica.forward", replica=replica_id)
                conn.send(("ok", app.batch_fn(payload)))
            elif op == "ping":
                fault_point("cluster.replica.ping", replica=replica_id)
                if app.ping is not None:
                    app.ping()
                conn.send(("ok", None))
            elif op == "swap":
                if app.swap_weights is None:
                    raise ClusterError(
                        f"replica {replica_id} app does not support weight swaps"
                    )
                app.swap_weights(payload)
                conn.send(("ok", None))
            elif op == "version":
                version = app.weight_version() if app.weight_version is not None else None
                conn.send(("ok", version))
            elif op == "stop":
                conn.send(("ok", None))
                os._exit(0)
            else:
                conn.send(("err", "ClusterError", f"unknown op {op!r}"))
        except (SystemExit, KeyboardInterrupt):
            os._exit(1)
        except BaseException as error:  # noqa: BLE001 — replied, not fatal
            conn.send(("err", type(error).__name__, str(error)))


def _rebuild_error(type_name: str, message: str) -> BaseException:
    """Map a child-side error reply back onto the library hierarchy."""
    import repro.errors as errors_module

    cls = getattr(errors_module, type_name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls(message)
    return ServingError(f"{type_name}: {message}")


class ForkTransport:
    """Subprocess replica: the app lives in a forked child.

    The parent side is a tiny RPC client over a duplex pipe; the
    replica's engine (in the parent) batches, the child scores.  Fork
    start keeps the factory closure-friendly — the child inherits the
    interpreter state, including any installed
    :class:`~repro.resilience.FaultInjector`, so chaos schedules travel
    into replicas exactly like they do into influence workers.
    """

    def __init__(
        self,
        factory: ReplicaFactory,
        replica_id: int,
        rpc_timeout_s: float = 30.0,
        ping_timeout_s: float = 2.0,
    ):
        self._factory = factory
        self.replica_id = replica_id
        self._rpc_timeout_s = rpc_timeout_s
        self._ping_timeout_s = ping_timeout_s
        self._proc = None
        self._conn = None
        self._lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    def start(self) -> None:
        if self._proc is not None:
            return
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_replica_child_main,
            args=(child_conn, self._factory, self.replica_id),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc, self._conn = proc, parent_conn

    def _dead(self, reason: str) -> ReplicaCrashedError:
        return ReplicaCrashedError(f"replica {self.replica_id} {reason}")

    def _rpc(self, op: str, payload, timeout: float):
        with self._lock:
            if self._conn is None:
                raise self._dead("is not running")
            try:
                self._conn.send((op, payload))
                if not self._conn.poll(timeout):
                    raise self._dead(f"timed out after {timeout}s on {op!r}")
                status, value = self._conn.recv()
            except ReplicaCrashedError:
                raise
            except (EOFError, OSError, BrokenPipeError):
                raise self._dead(f"pipe lost during {op!r}") from None
        if status == "err":
            raise _rebuild_error(*value) if isinstance(value, tuple) else _rebuild_error(value[0], value[1])
        return value

    def score(self, requests: list[ScoreRequest]) -> list[ScoreResult]:
        return self._rpc("score", requests, self._rpc_timeout_s)

    def ping(self) -> None:
        if not self.alive:
            raise self._dead("process exited")
        self._rpc("ping", None, self._ping_timeout_s)

    def swap(self, state: Mapping[str, object]) -> None:
        self._rpc("swap", dict(state), self._rpc_timeout_s)

    def weight_version(self) -> int | None:
        return self._rpc("version", None, self._ping_timeout_s)

    def kill(self) -> None:
        """Chaos helper: SIGKILL the child — a real, unannounced crash."""
        if self._proc is not None and self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=5.0)

    def _teardown(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
            if self._proc is not None:
                if self._proc.is_alive():
                    self._proc.terminate()
                self._proc.join(timeout=5.0)
            self._proc = self._conn = None

    def restart(self) -> None:
        self._teardown()
        self.start()

    def stop(self) -> None:
        with self._lock:
            if self._conn is not None and self._proc is not None and self._proc.is_alive():
                try:
                    self._conn.send(("stop", None))
                    self._conn.poll(1.0)
                except (OSError, BrokenPipeError):
                    pass
        self._teardown()


# ----------------------------------------------------------------------
# Replica + supervisor
# ----------------------------------------------------------------------


class Replica:
    """One engine + transport + breaker under supervisor management.

    ``engine`` is a :class:`MicroBatchEngine` or (continuous mode) a
    :class:`~repro.serving.continuous.ContinuousEngine` — the supervisor
    only touches their shared surface (submit/pump/start/stop/
    withdraw_all/queue_depth/stats).
    """

    def __init__(
        self,
        replica_id: int,
        transport,
        engine,
        breaker: CircuitBreaker,
    ):
        self.id = replica_id
        self.transport = transport
        self.engine = engine
        self.breaker = breaker
        self.state = STARTING
        self.restarts = 0
        self.outstanding = 0  # dispatched (queued or scoring), not yet finalized

    @property
    def routable(self) -> bool:
        """State admits traffic (breaker consulted separately at pick time)."""
        return self.state == HEALTHY


class ClusterSupervisor:
    """Launches, routes to, heals and redeploys N engine replicas.

    Parameters
    ----------
    factory:
        ``factory(replica_id) -> ReplicaApp`` — builds one replica's
        scorer over **its own model instance**.  Runs in the supervisor
        process (thread transport) or in the forked child (fork
        transport).
    config:
        :class:`ClusterConfig`.
    clock:
        Wall clock for engines (deadlines, latency); injectable.
    breaker_clock:
        Monotonic clock for the per-replica circuit breakers;
        injectable so tests can step breaker timeouts by hand.
    obs:
        Observability hub shared by the supervisor and every
        parent-side engine.
    """

    def __init__(
        self,
        factory: ReplicaFactory,
        config: ClusterConfig | None = None,
        clock: Callable[[], float] = time.time,
        breaker_clock: Callable[[], float] = time.monotonic,
        obs: Observability | None = None,
    ):
        self.config = config or ClusterConfig()
        self._factory = factory
        self._clock = clock
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_submitted = metrics.counter("cluster.submitted")
        self._m_completed = metrics.counter("cluster.completed")
        self._m_failed = metrics.counter("cluster.failed")
        self._m_rejected = metrics.counter("cluster.rejected")
        self._m_quota_rejected = metrics.counter("cluster.quota_rejected")
        self._m_redispatched = metrics.counter("cluster.redispatched")
        self._m_restarted = metrics.counter("cluster.replica_restarted")
        self._m_swapped = metrics.counter("cluster.deploy_swapped")
        self._m_health_checks = metrics.counter("cluster.health_checks")
        self._m_health_errors = metrics.counter("cluster.health_check_errors")
        self._g_healthy = metrics.gauge("cluster.replicas_healthy")
        self._g_outstanding = metrics.gauge("cluster.outstanding")
        self.stats = ClusterStats()
        self._lock = threading.RLock()
        self._drained = threading.Condition(self._lock)
        self._tenant_inflight: dict[str, int] = {}
        self._staged_state: Mapping[str, object] | None = None
        self._launched = False
        self._running = False
        self._health_thread: threading.Thread | None = None
        self._health_stop = threading.Event()
        self._replicas: list[Replica] = []
        for i in range(self.config.replicas):
            if self.config.transport == "fork":
                transport = ForkTransport(
                    factory,
                    i,
                    rpc_timeout_s=self.config.rpc_timeout_s,
                    ping_timeout_s=self.config.ping_timeout_s,
                )
            else:
                transport = ThreadTransport(factory, i)
            if self.config.engine_mode == "continuous":
                from repro.serving.continuous import ContinuousEngine

                engine = ContinuousEngine(
                    app=transport.generation_app,
                    config=self.config.engine_config(),
                    clock=clock,
                    obs=self.obs,
                )
            else:
                engine = MicroBatchEngine(
                    batch_fn=transport.score,
                    config=self.config.engine_config(),
                    clock=clock,
                    obs=self.obs,
                )
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                window=self.config.breaker_window,
                min_calls=self.config.breaker_min_calls,
                reset_timeout_s=self.config.breaker_reset_timeout_s,
                clock=breaker_clock,
                obs=self.obs,
                name=f"replica-{i}",
            )
            self._replicas.append(Replica(i, transport, engine, breaker))

    # -- introspection -------------------------------------------------

    @property
    def replicas(self) -> list[Replica]:
        return list(self._replicas)

    def replica_states(self) -> dict[int, str]:
        with self._lock:
            return {r.id: r.state for r in self._replicas}

    def healthy_count(self) -> int:
        with self._lock:
            return sum(r.state == HEALTHY for r in self._replicas)

    @property
    def outstanding(self) -> int:
        with self._lock:
            return sum(r.outstanding for r in self._replicas)

    def weight_versions(self) -> dict[int, int | None]:
        """Per-replica model weight version (None where unsupported)."""
        versions: dict[int, int | None] = {}
        for r in self._replicas:
            try:
                versions[r.id] = r.transport.weight_version()
            except (ReplicaCrashedError, ClusterError):
                versions[r.id] = None
        return versions

    def _event(self, kind: str, **fields) -> None:
        self.obs.event(kind, **fields)

    def _set_state(self, replica: Replica, state: str) -> None:
        """Record a lifecycle transition (lock held or single-threaded)."""
        if replica.state == state:
            return
        replica.state = state
        self._g_healthy.set(sum(r.state == HEALTHY for r in self._replicas))
        self._event("cluster.replica", replica=replica.id, state=state)

    # -- lifecycle -----------------------------------------------------

    def launch(self) -> None:
        """Start every replica's transport (idempotent)."""
        with self._lock:
            if self._launched:
                return
            self._launched = True
        with self.obs.span("cluster.launch", replicas=len(self._replicas)):
            for replica in self._replicas:
                replica.transport.start()
                with self._lock:
                    self._set_state(replica, HEALTHY)

    def start(self) -> None:
        """Launch replicas, their worker threads, and the health loop."""
        self.launch()
        if self._running:
            return
        self._running = True
        for replica in self._replicas:
            replica.engine.start()
        self._health_stop.clear()
        self._health_thread = threading.Thread(target=self._health_loop, daemon=True)
        self._health_thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the health loop and workers; optionally drain the queues."""
        if self._running:
            self._running = False
            self._health_stop.set()
            if self._health_thread is not None:
                self._health_thread.join()
                self._health_thread = None
            for replica in self._replicas:
                replica.engine.stop(drain=False)
        if drain and self._launched:
            self.drain()
        for replica in self._replicas:
            replica.transport.stop()
            with self._lock:
                self._set_state(replica, STARTING)
        with self._lock:
            self._launched = False

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- routing + admission -------------------------------------------

    def _pick(self, exclude: set[int]) -> Replica | None:
        """Least-loaded routable replica whose breaker admits traffic."""
        with self._lock:
            candidates = sorted(
                (r for r in self._replicas if r.id not in exclude and r.routable),
                key=lambda r: (r.outstanding, r.id),
            )
        for replica in candidates:
            if replica.breaker.allow():
                return replica
        return None

    def submit(self, request: ScoreRequest) -> PendingResult:
        """Route one request to a replica; raises on admission failure.

        Raises :class:`QueueFullError` when the tenant is at quota or no
        routable replica has queue room — backpressure, exactly like the
        single-engine ``submit``.
        """
        if not request.behavior_text.strip():
            raise ServingError("behavior_text must be non-empty")
        self.launch()
        tenant = request.user_id
        with self._lock:
            quota = self.config.tenant_quota
            if quota is not None and self._tenant_inflight.get(tenant, 0) >= quota:
                self.stats.quota_rejected += 1
                self._m_quota_rejected.inc()
                raise QueueFullError(
                    f"tenant {tenant!r} at admission quota ({quota} in flight)"
                )
            self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
        pending = PendingResult(request)
        pending.add_done_callback(self._release_tenant)
        error = self._dispatch(pending, attempt=0, exclude=set())
        if error is not None:
            self.stats.rejected += 1
            self._m_rejected.inc()
            pending._reject(error)
            raise error
        self.stats.submitted += 1
        self._m_submitted.inc()
        return pending

    def _release_tenant(self, pending: PendingResult) -> None:
        tenant = pending.request.user_id
        with self._lock:
            count = self._tenant_inflight.get(tenant, 0) - 1
            if count > 0:
                self._tenant_inflight[tenant] = count
            else:
                self._tenant_inflight.pop(tenant, None)

    def _dispatch(
        self, pending: PendingResult, attempt: int, exclude: set[int]
    ) -> QueueFullError | None:
        """Place ``pending`` on the best replica; returns the admission error
        (without finalizing) when every routable replica is excluded or full."""
        exclude = set(exclude)
        while True:
            replica = self._pick(exclude)
            if replica is None:
                return QueueFullError(
                    "no replica can admit the request "
                    f"(states: {self.replica_states()})"
                )
            try:
                engine_pending = replica.engine.submit(pending.request)
            except QueueFullError:
                exclude.add(replica.id)
                continue
            with self._lock:
                replica.outstanding += 1
                self._g_outstanding.set(sum(r.outstanding for r in self._replicas))
            engine_pending.add_done_callback(
                lambda ep, p=pending, r=replica, a=attempt: self._on_replica_done(p, r, ep, a)
            )
            return None

    def _on_replica_done(
        self, pending: PendingResult, replica: Replica, engine_pending: PendingResult, attempt: int
    ) -> None:
        with self._lock:
            replica.outstanding -= 1
            self._g_outstanding.set(sum(r.outstanding for r in self._replicas))
            self._drained.notify_all()
        error = engine_pending.error
        if error is None:
            result = replace(engine_pending.result(timeout=0), replica=replica.id)
            replica.breaker.record_success()
            self.stats.completed += 1
            self._m_completed.inc()
            pending._resolve(result)
            return
        if isinstance(error, ReplicaCrashedError):
            replica.breaker.record_failure()
            self._declare_dead(replica, error)
            if attempt < self.config.max_redispatch:
                self.stats.redispatched += 1
                self._m_redispatched.inc()
                admission_error = self._dispatch(
                    pending, attempt=attempt + 1, exclude={replica.id}
                )
                if admission_error is None:
                    return
                error = admission_error
        elif not isinstance(error, (DeadlineExceededError, QueueFullError)):
            # Model-path failure: the replica answered, but brokenly.
            replica.breaker.record_failure()
        self.stats.failed += 1
        self._m_failed.inc()
        pending._reject(error)

    # -- failure handling ----------------------------------------------

    def _declare_dead(self, replica: Replica, error: BaseException) -> None:
        """Mark a replica dead and move its queued traffic elsewhere."""
        with self._lock:
            if replica.state == DEAD:
                return
            self._set_state(replica, DEAD)
        # Rejecting the queued requests triggers their done-callbacks,
        # which re-dispatch each one to a healthy replica.
        replica.engine.withdraw_all(
            ReplicaCrashedError(f"replica {replica.id} died with queued requests: {error}")
        )

    def restart_replica(self, replica: Replica) -> bool:
        """Restart one dead replica; returns False once past max_restarts."""
        if replica.restarts >= self.config.max_restarts:
            return False
        with self.obs.span("cluster.restart", replica=replica.id):
            replica.transport.restart()
            if self._staged_state is not None:
                # A deploy happened while this replica was down (or it
                # crashed mid-deploy): the factory rebuilt original
                # weights, so re-apply the staged checkpoint.
                replica.transport.swap(self._staged_state)
            replica.restarts += 1
            self.stats.restarts += 1
            self._m_restarted.inc()
            replica.breaker.reset()
            with self._lock:
                self._set_state(replica, HEALTHY)
        self._event("cluster.replica_restarted", replica=replica.id, restarts=replica.restarts)
        return True

    # -- health --------------------------------------------------------

    def check_health(self) -> dict[int, str]:
        """One health sweep: ping replicas, feed breakers, restart the dead.

        Deterministic — the synchronous drive mode calls this directly;
        the threaded health loop calls it on a timer.
        """
        fault_point("cluster.health_check")
        self.stats.health_checks += 1
        self._m_health_checks.inc()
        for replica in self._replicas:
            if replica.state == DEAD:
                self.restart_replica(replica)
                continue
            if replica.state == DRAINING:
                continue  # mid-deploy; leave it alone
            try:
                replica.transport.ping()
            except ReplicaCrashedError as error:
                replica.breaker.record_failure()
                self._declare_dead(replica, error)
                self.restart_replica(replica)
            except Exception:
                # Deep probe failed but the process is up: count it
                # against the breaker; enough failures route around it.
                replica.breaker.record_failure()
            else:
                replica.breaker.record_success()
        return self.replica_states()

    def _health_loop(self) -> None:
        while not self._health_stop.wait(self.config.health_interval_s):
            try:
                self.check_health()
            except Exception:
                # The loop itself must survive chaos (an armed
                # cluster.health_check fault point, a transport bug):
                # count the crash and keep sweeping.
                self._m_health_errors.inc()
                self._event("cluster.health_check_error")

    # -- synchronous drive ---------------------------------------------

    def pump(self) -> int:
        """Score one batch on every live replica; returns requests scored."""
        total = 0
        for replica in self._replicas:
            if replica.state == DEAD:
                continue
            total += replica.engine.pump()
        return total

    def drain(self) -> None:
        """Pump until no replica holds queued work (redispatches included)."""
        while True:
            pumped = self.pump()
            leftovers = [r for r in self._replicas if r.engine.queue_depth]
            if not leftovers:
                if pumped == 0:
                    return
                continue
            if pumped == 0:
                # Only dead replicas hold work: withdraw it so the
                # done-callbacks redispatch (or surface explicit errors).
                for replica in leftovers:
                    if replica.state == DEAD:
                        replica.engine.withdraw_all(
                            ReplicaCrashedError(
                                f"replica {replica.id} is dead; request withdrawn"
                            )
                        )
                if all(r.state != DEAD for r in leftovers):
                    raise ClusterError(
                        f"drain stalled with live replicas still queued: "
                        f"{[(r.id, r.state, r.engine.queue_depth) for r in leftovers]}"
                    )

    def serve(self, requests: Sequence[ScoreRequest]) -> list[ScoreResult]:
        """Submit, drain, collect — the synchronous batched entry point."""
        pendings = [self.submit(request) for request in requests]
        self.drain()
        return [p.result(timeout=0) for p in pendings]

    # -- rolling deploy ------------------------------------------------

    def deploy(self, state: Mapping[str, object], drain_timeout_s: float | None = None) -> int:
        """Rolling weight deploy: stage, then drain/swap/resume per replica.

        Returns the number of replicas swapped.  Replicas that are dead
        (or die mid-deploy) pick the staged weights up on restart, so
        the cluster converges on the new version either way.
        """
        self.launch()
        timeout = drain_timeout_s if drain_timeout_s is not None else self.config.drain_timeout_s
        self._staged_state = dict(state)
        swapped = 0
        with self.obs.span("cluster.deploy", replicas=len(self._replicas)):
            for replica in self._replicas:
                if replica.state == DEAD:
                    # restart_replica (health loop or next sweep) applies
                    # the staged weights; nothing to drain here.
                    continue
                with self._lock:
                    self._set_state(replica, DRAINING)
                try:
                    self._await_drained(replica, timeout)
                    fault_point("cluster.deploy.swap", replica=replica.id)
                    replica.transport.swap(self._staged_state)
                except ReplicaCrashedError as error:
                    self._declare_dead(replica, error)
                    self.restart_replica(replica)  # restart applies staged state
                    swapped += 1
                    continue
                except Exception:
                    # Swap failed for a non-crash reason (e.g. a state
                    # dict that does not fit the replica's architecture):
                    # the replica still holds working weights, so return
                    # it to service before surfacing the error.
                    with self._lock:
                        self._set_state(replica, HEALTHY)
                    raise
                with self._lock:
                    self._set_state(replica, HEALTHY)
                swapped += 1
                self.stats.swaps += 1
                self._m_swapped.inc()
                self._event("cluster.deploy_swapped", replica=replica.id)
        return swapped

    def _await_drained(self, replica: Replica, timeout: float) -> None:
        """Wait (threaded) or pump (sync) until a replica has no work."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if replica.outstanding == 0:
                    return
                if self._running:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._drained.wait(timeout=min(remaining, 0.05))
                    continue
            # Synchronous mode: drive the replica's own engine dry.
            if replica.engine.pump() == 0 and replica.outstanding > 0:
                # Queued nothing but outstanding: engine callbacks run
                # inline in pump, so this means bookkeeping is stuck.
                if time.monotonic() >= deadline:
                    break
        raise ClusterError(
            f"replica {replica.id} failed to drain within {timeout}s "
            f"({replica.outstanding} outstanding)"
        )


# ----------------------------------------------------------------------
# ZiGong wiring
# ----------------------------------------------------------------------


def zigong_quantized_state(zigong) -> dict:
    """Stage an int8 deploy payload from a (float, possibly LoRA) ZiGong.

    Builds a throwaway copy of the source model, merges any LoRA
    adapters, runs :func:`repro.nn.quantize_model` and returns its
    ``state_dict()`` — the exact key/dtype layout that replicas built by
    ``zigong_replica_factory(..., quantize="int8")`` expect, so the
    result can be handed straight to
    :meth:`ClusterSupervisor.deploy` for a stage->drain->swap rollout.
    The source ``zigong`` is never mutated (checkpoints stay float).
    """
    from repro.lora.inject import apply_lora, merge_lora
    from repro.nn.quant import quantize_model
    from repro.nn.transformer import MistralTiny

    config = zigong.config
    model = MistralTiny(config.model, rng=config.seed)
    if getattr(zigong, "_lora_applied", False):
        apply_lora(model, config.lora, rng=config.seed)
    model.load_state_dict({k: v.copy() for k, v in zigong.model.state_dict().items()})
    merge_lora(model)
    quantize_model(model)
    return model.state_dict()


def zigong_replica_factory(
    zigong,
    threshold: float = 0.5,
    question: str | None = None,
    quantize: str | None = None,
) -> ReplicaFactory:
    """A :class:`ReplicaFactory` serving Behavior-Card-style decisions.

    Each replica builds **its own** :class:`~repro.nn.transformer.MistralTiny`
    instance (same config/seed as the source model, then loads its
    weights) plus its own
    :class:`~repro.baselines.lm.LMClassifier`/:class:`~repro.nn.cache.PrefixCache`
    — replicas share nothing mutable, which is what makes fork
    transport, kills and rolling swaps safe.  ``swap_weights`` loads a
    staged state dict (bumping ``weight_version``, which flushes the
    prefix cache on the next generate call).

    With ``quantize="int8"`` every replica merges its LoRA adapters and
    runs :func:`repro.nn.quantize_model` after loading the source
    weights: replicas serve from int8 weights on the fused inference
    kernel (~4x less weight memory per replica) while the source
    ``zigong`` — and therefore training, influence and explain paths —
    stays float.  Rolling deploys to quantized replicas must stage a
    matching quantized state dict; :func:`zigong_quantized_state` builds
    one from a float model.
    """
    from repro.baselines.lm import LMClassifier
    from repro.data.templates import CLASSIFICATION_TEMPLATE
    from repro.eval.parsing import parse_answer
    from repro.lora.inject import apply_lora, merge_lora
    from repro.nn.quant import quantize_model
    from repro.nn.transformer import MistralTiny
    from repro.serving.behavior_card import DEFAULT_QUESTION
    from repro.serving.continuous import GenerationApp

    if quantize not in (None, "int8"):
        raise ConfigError(f"unsupported replica quantization {quantize!r}; use 'int8' or None")
    config = zigong.config
    tokenizer = zigong.tokenizer
    lora_applied = getattr(zigong, "_lora_applied", False)
    source_state = {k: v.copy() for k, v in zigong.model.state_dict().items()}
    asked = question if question is not None else DEFAULT_QUESTION

    def factory(replica_id: int) -> ReplicaApp:
        model = MistralTiny(config.model, rng=config.seed)
        if lora_applied:
            # Mirror the source model's structure so its state dict
            # (which names LoRA params) loads one-to-one.
            apply_lora(model, config.lora, rng=config.seed)
        model.load_state_dict(source_state)
        if quantize is not None:
            merge_lora(model)
            quantize_model(model, dtype=quantize)
        classifier = LMClassifier(model, tokenizer, name=f"replica-{replica_id}")

        def batch_fn(requests: list[ScoreRequest]) -> list[ScoreResult]:
            prompts = [
                CLASSIFICATION_TEMPLATE.format(sentence=r.behavior_text, question=asked)
                for r in requests
            ]
            if len(prompts) > 1:
                scores = [float(s) for s in classifier.score_batch(prompts, "yes", "no")]
            else:
                scores = [float(classifier.score(prompts[0], "yes", "no"))]
            return [
                ScoreResult(
                    user_id=r.user_id,
                    score=s,
                    approved=s < threshold,
                    threshold=threshold,
                    cached=False,
                )
                for r, s in zip(requests, scores)
            ]

        def encode(request: ScoreRequest):
            prompt = CLASSIFICATION_TEMPLATE.format(
                sentence=request.behavior_text, question=asked
            )
            return classifier._prompt_ids(prompt)

        def finish(request: ScoreRequest, tokens: list[int]) -> ScoreResult:
            # Generative read-out: the decoded answer text is parsed the
            # same way the eval harness counts the Miss metric.  A miss
            # scores 0.5 and is conservatively not approved.
            text = tokenizer.decode(tokens)
            label = parse_answer(text, "yes", "no")
            score = 1.0 if label == 1 else 0.0 if label == 0 else 0.5
            return ScoreResult(
                user_id=request.user_id,
                score=score,
                approved=label == 0,
                threshold=threshold,
                cached=False,
            )

        generation = GenerationApp(
            model=model,
            encode=encode,
            finish=finish,
            generation=classifier._generation_config(),
            prefix_cache=classifier.prefix_cache,
        )

        return ReplicaApp(
            batch_fn=batch_fn,
            swap_weights=model.load_state_dict,
            weight_version=lambda: model.weight_version,
            generation=generation,
        )

    return factory
