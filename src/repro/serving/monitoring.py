"""Production monitoring for the Behavior Card service.

Two standard risk-control tools:

* **PSI (Population Stability Index)** — *the* drift measure in credit
  scoring: compares the live score distribution against the validation
  distribution the model was approved on.  Conventional thresholds:
  < 0.1 stable, 0.1–0.25 watch, > 0.25 drifted (recalibrate).
* **Shadow deployment** — run a candidate model silently next to the
  production model on live traffic and track agreement before cutover.

Both monitors publish into the observability layer: the drift monitor
keeps a ``monitoring.psi`` gauge and observation counter fresh (plus a
``monitoring.drift`` event per status check), the shadow deployment
counts requests and disagreements.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.obs import Observability, get_observability

PSI_WATCH = 0.1
PSI_DRIFT = 0.25


def population_stability_index(
    expected: np.ndarray,
    actual: np.ndarray,
    n_bins: int = 10,
    epsilon: float = 1e-4,
) -> float:
    """PSI between a reference (``expected``) and a live (``actual``) sample.

    Bins are the deciles of the reference distribution; empty shares are
    floored at ``epsilon`` so the logarithm stays finite.  Tied reference
    scores collapse quantile edges onto each other, so duplicate edges are
    merged (fewer, wider bins) rather than kept as zero-width bins, and the
    floored shares are renormalized so both stay probability distributions
    — guaranteeing ``PSI(x, x) == 0`` exactly, even for constant ``x``.
    """
    expected = np.asarray(expected, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if expected.size < n_bins or actual.size == 0:
        raise ServingError(
            f"PSI needs at least n_bins={n_bins} reference points and 1 live point"
        )
    edges = np.unique(np.quantile(expected, np.linspace(0, 1, n_bins + 1)[1:-1]))
    n_effective = edges.size + 1
    expected_counts = np.bincount(np.digitize(expected, edges), minlength=n_effective)
    actual_counts = np.bincount(np.digitize(actual, edges), minlength=n_effective)
    expected_share = np.maximum(expected_counts / expected.size, epsilon)
    actual_share = np.maximum(actual_counts / actual.size, epsilon)
    expected_share = expected_share / expected_share.sum()
    actual_share = actual_share / actual_share.sum()
    return float(((actual_share - expected_share) * np.log(actual_share / expected_share)).sum())


class DriftMonitor:
    """Rolling-window PSI monitor over live model scores."""

    def __init__(
        self,
        reference_scores,
        window: int = 500,
        n_bins: int = 10,
        obs: Observability | None = None,
    ):
        reference = np.asarray(reference_scores, dtype=np.float64)
        if reference.size < n_bins:
            raise ServingError(f"need at least {n_bins} reference scores")
        if window <= 0:
            raise ServingError("window must be positive")
        self.reference = reference
        self.n_bins = n_bins
        self._window: deque[float] = deque(maxlen=window)
        self.obs = obs or get_observability()
        self._m_observations = self.obs.metrics.counter("monitoring.observations")
        self._g_psi = self.obs.metrics.gauge("monitoring.psi")

    def observe(self, score: float) -> None:
        """Record one live score."""
        self._window.append(float(score))
        self._m_observations.inc()

    def observe_many(self, scores) -> None:
        """Record a micro-batch of live scores (oldest first).

        The batched counterpart of :meth:`observe` for engine traffic —
        equivalent to observing each score in order.
        """
        n = 0
        for score in scores:
            self._window.append(float(score))
            n += 1
        self._m_observations.inc(n)

    @property
    def n_observed(self) -> int:
        return len(self._window)

    def psi(self) -> float:
        """PSI of the current window against the reference."""
        if not self._window:
            raise ServingError("no live scores observed yet")
        value = population_stability_index(
            self.reference, np.asarray(self._window), n_bins=self.n_bins
        )
        self._g_psi.set(value)
        return value

    def status(self) -> str:
        """``stable`` / ``watch`` / ``drift`` by conventional thresholds."""
        value = self.psi()
        if value < PSI_WATCH:
            status = "stable"
        elif value < PSI_DRIFT:
            status = "watch"
        else:
            status = "drift"
        self.obs.event("monitoring.drift", psi=value, status=status,
                       n_observed=self.n_observed)
        return status


@dataclass(frozen=True)
class ShadowRecord:
    """One request scored by both the primary and the shadow model."""

    prompt: str
    primary_score: float
    shadow_score: float

    @property
    def primary_label(self) -> int:
        return int(self.primary_score >= 0.5)

    @property
    def shadow_label(self) -> int:
        return int(self.shadow_score >= 0.5)


class ShadowDeployment:
    """Score live traffic with a candidate model alongside production.

    Only the primary's score is returned to callers; the shadow's output
    is recorded for offline comparison.  The shadow is strictly
    best-effort: a shadow exception is counted (``monitoring.shadow_errors``)
    and the primary score is served as if the shadow did not exist.

    Comparison records are kept in a count-bounded window (``window`` most
    recent paired scores) so a long-lived deployment cannot grow without
    bound; agreement/disagreement statistics are exact over that window,
    while ``n_requests`` / ``n_shadow_errors`` count all traffic ever seen.
    """

    def __init__(self, primary, shadow, window: int = 1000,
                 obs: Observability | None = None):
        if window <= 0:
            raise ServingError("window must be positive")
        self.primary = primary
        self.shadow = shadow
        self.window = window
        self._records: deque[ShadowRecord] = deque(maxlen=window)
        self._total_requests = 0
        self._total_errors = 0
        self.obs = obs or get_observability()
        self._m_requests = self.obs.metrics.counter("monitoring.shadow_requests")
        self._m_disagreements = self.obs.metrics.counter("monitoring.shadow_disagreements")
        self._m_errors = self.obs.metrics.counter("monitoring.shadow_errors")

    def score(self, prompt: str, positive_text: str = "yes", negative_text: str = "no") -> float:
        primary_score = float(self.primary.score(prompt, positive_text, negative_text))
        self._total_requests += 1
        self._m_requests.inc()
        try:
            shadow_score = float(self.shadow.score(prompt, positive_text, negative_text))
        except Exception as error:
            # A shadow must never take down live scoring: count the failure
            # and serve the production answer.  No record is kept — window
            # statistics only cover requests both models actually scored.
            self._total_errors += 1
            self._m_errors.inc()
            self.obs.event("monitoring.shadow_error", error=repr(error))
            return primary_score
        record = ShadowRecord(prompt, primary_score, shadow_score)
        self._records.append(record)
        self._m_disagreements.inc(int(record.primary_label != record.shadow_label))
        return primary_score

    @property
    def n_requests(self) -> int:
        """Total requests ever scored (window evictions included)."""
        return self._total_requests

    @property
    def n_window(self) -> int:
        """Paired comparison records currently in the window."""
        return len(self._records)

    @property
    def n_shadow_errors(self) -> int:
        """Total shadow-side failures swallowed so far."""
        return self._total_errors

    def records(self) -> list[ShadowRecord]:
        return list(self._records)

    def agreement_rate(self) -> float:
        """Share of windowed requests where both models decide the same label."""
        if not self._records:
            raise ServingError("no shadow traffic recorded yet")
        same = sum(1 for r in self._records if r.primary_label == r.shadow_label)
        return same / len(self._records)

    def score_correlation(self) -> float:
        """Pearson correlation of the two models' windowed scores.

        Returns ``nan`` when either stream has zero variance — Pearson is
        undefined there, and ``0.0`` would read as "uncorrelated" to a
        promotion gate.  Callers must handle the degenerate case explicitly.
        """
        if len(self._records) < 2:
            raise ServingError("need at least two requests for a correlation")
        primary = np.array([r.primary_score for r in self._records])
        shadow = np.array([r.shadow_score for r in self._records])
        # ptp == 0 is the exact constant-stream test; std() of a constant
        # array can come out as ~1e-17 and slip past an == 0 guard.
        if np.ptp(primary) == 0 or np.ptp(shadow) == 0:
            return float("nan")
        return float(np.corrcoef(primary, shadow)[0, 1])

    def disagreements(self) -> list[ShadowRecord]:
        """Windowed requests where the two models decide differently."""
        return [r for r in self._records if r.primary_label != r.shadow_label]
