"""Production monitoring for the Behavior Card service.

Two standard risk-control tools:

* **PSI (Population Stability Index)** — *the* drift measure in credit
  scoring: compares the live score distribution against the validation
  distribution the model was approved on.  Conventional thresholds:
  < 0.1 stable, 0.1–0.25 watch, > 0.25 drifted (recalibrate).
* **Shadow deployment** — run a candidate model silently next to the
  production model on live traffic and track agreement before cutover.

Both monitors publish into the observability layer: the drift monitor
keeps a ``monitoring.psi`` gauge and observation counter fresh (plus a
``monitoring.drift`` event per status check), the shadow deployment
counts requests and disagreements.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.obs import Observability, get_observability

PSI_WATCH = 0.1
PSI_DRIFT = 0.25


def population_stability_index(
    expected: np.ndarray,
    actual: np.ndarray,
    n_bins: int = 10,
    epsilon: float = 1e-4,
) -> float:
    """PSI between a reference (``expected``) and a live (``actual``) sample.

    Bins are the deciles of the reference distribution; empty shares are
    floored at ``epsilon`` so the logarithm stays finite.
    """
    expected = np.asarray(expected, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if expected.size < n_bins or actual.size == 0:
        raise ServingError(
            f"PSI needs at least n_bins={n_bins} reference points and 1 live point"
        )
    edges = np.quantile(expected, np.linspace(0, 1, n_bins + 1)[1:-1])
    expected_counts = np.bincount(np.digitize(expected, edges), minlength=n_bins)
    actual_counts = np.bincount(np.digitize(actual, edges), minlength=n_bins)
    expected_share = np.maximum(expected_counts / expected.size, epsilon)
    actual_share = np.maximum(actual_counts / actual.size, epsilon)
    return float(((actual_share - expected_share) * np.log(actual_share / expected_share)).sum())


class DriftMonitor:
    """Rolling-window PSI monitor over live model scores."""

    def __init__(
        self,
        reference_scores,
        window: int = 500,
        n_bins: int = 10,
        obs: Observability | None = None,
    ):
        reference = np.asarray(reference_scores, dtype=np.float64)
        if reference.size < n_bins:
            raise ServingError(f"need at least {n_bins} reference scores")
        if window <= 0:
            raise ServingError("window must be positive")
        self.reference = reference
        self.n_bins = n_bins
        self._window: deque[float] = deque(maxlen=window)
        self.obs = obs or get_observability()
        self._m_observations = self.obs.metrics.counter("monitoring.observations")
        self._g_psi = self.obs.metrics.gauge("monitoring.psi")

    def observe(self, score: float) -> None:
        """Record one live score."""
        self._window.append(float(score))
        self._m_observations.inc()

    def observe_many(self, scores) -> None:
        """Record a micro-batch of live scores (oldest first).

        The batched counterpart of :meth:`observe` for engine traffic —
        equivalent to observing each score in order.
        """
        n = 0
        for score in scores:
            self._window.append(float(score))
            n += 1
        self._m_observations.inc(n)

    @property
    def n_observed(self) -> int:
        return len(self._window)

    def psi(self) -> float:
        """PSI of the current window against the reference."""
        if not self._window:
            raise ServingError("no live scores observed yet")
        value = population_stability_index(
            self.reference, np.asarray(self._window), n_bins=self.n_bins
        )
        self._g_psi.set(value)
        return value

    def status(self) -> str:
        """``stable`` / ``watch`` / ``drift`` by conventional thresholds."""
        value = self.psi()
        if value < PSI_WATCH:
            status = "stable"
        elif value < PSI_DRIFT:
            status = "watch"
        else:
            status = "drift"
        self.obs.event("monitoring.drift", psi=value, status=status,
                       n_observed=self.n_observed)
        return status


@dataclass(frozen=True)
class ShadowRecord:
    """One request scored by both the primary and the shadow model."""

    prompt: str
    primary_score: float
    shadow_score: float

    @property
    def primary_label(self) -> int:
        return int(self.primary_score >= 0.5)

    @property
    def shadow_label(self) -> int:
        return int(self.shadow_score >= 0.5)


class ShadowDeployment:
    """Score live traffic with a candidate model alongside production.

    Only the primary's score is returned to callers; the shadow's output
    is recorded for offline comparison.
    """

    def __init__(self, primary, shadow, obs: Observability | None = None):
        self.primary = primary
        self.shadow = shadow
        self._records: list[ShadowRecord] = []
        self.obs = obs or get_observability()
        self._m_requests = self.obs.metrics.counter("monitoring.shadow_requests")
        self._m_disagreements = self.obs.metrics.counter("monitoring.shadow_disagreements")

    def score(self, prompt: str, positive_text: str = "yes", negative_text: str = "no") -> float:
        primary_score = float(self.primary.score(prompt, positive_text, negative_text))
        shadow_score = float(self.shadow.score(prompt, positive_text, negative_text))
        record = ShadowRecord(prompt, primary_score, shadow_score)
        self._records.append(record)
        self._m_requests.inc()
        self._m_disagreements.inc(int(record.primary_label != record.shadow_label))
        return primary_score

    @property
    def n_requests(self) -> int:
        return len(self._records)

    def records(self) -> list[ShadowRecord]:
        return list(self._records)

    def agreement_rate(self) -> float:
        """Share of requests where both models decide the same label."""
        if not self._records:
            raise ServingError("no shadow traffic recorded yet")
        same = sum(1 for r in self._records if r.primary_label == r.shadow_label)
        return same / len(self._records)

    def score_correlation(self) -> float:
        """Pearson correlation of the two models' scores."""
        if len(self._records) < 2:
            raise ServingError("need at least two requests for a correlation")
        primary = np.array([r.primary_score for r in self._records])
        shadow = np.array([r.shadow_score for r in self._records])
        if primary.std() == 0 or shadow.std() == 0:
            return 0.0
        return float(np.corrcoef(primary, shadow)[0, 1])

    def disagreements(self) -> list[ShadowRecord]:
        """Requests where the two models decide differently."""
        return [r for r in self._records if r.primary_label != r.shadow_label]
