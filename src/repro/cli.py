"""Command-line interface.

Subcommands::

    python -m repro datasets                         # list generators
    python -m repro generate --dataset german --out d.jsonl
    python -m repro train --data d.jsonl --out model/
    python -m repro evaluate --model model/ --data test.jsonl
    python -m repro pipeline --dataset german        # full prune+mix+tune
    python -m repro pipeline run --events run.jsonl  # online learning loop
    python -m repro influence --data d.jsonl --estimator datainf --top-k 5
    python -m repro table3                           # config table
    python -m repro obs report --events run.jsonl    # summarize a recorded run

Everything is seeded; rerunning a command reproduces its output.

``repro influence`` is the one front door to attribution: estimator
choice (``tracin`` / ``tracseq`` / ``datainf``), top-k retrieval,
token-wise attribution, worker fan-out and the gradient cache all live
on it.  The influence knobs previously scattered on ``pipeline``
(``--strategy``, ``--gamma``) keep working but are deprecated in favor
of ``--estimator`` (which threads through ``PrunerConfig.strategy``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import warnings
from pathlib import Path

from repro.config import bench_config, table3_rows, test_config
from repro.core import PipelineConfig, PrunerConfig, ZiGong, ZiGongPipeline
from repro.data import (
    build_classification_examples,
    load_jsonl,
    save_jsonl,
)
from repro.datasets import available_datasets, load_dataset
from repro.errors import ReproError
from repro.eval import EvalSample, evaluate, format_table


def _zigong_config(args) -> "object":
    base = bench_config(seed=args.seed) if getattr(args, "preset", "test") == "bench" else test_config(seed=args.seed)
    return dataclasses.replace(
        base,
        training=dataclasses.replace(base.training, epochs=args.epochs),
        base_lr=args.lr,
        min_lr=args.lr / 10,
    )


def _examples_to_samples(examples) -> list[EvalSample]:
    answers = sorted({e.answer for e in examples})
    if len(answers) != 2:
        raise ReproError(
            f"evaluate expects a binary task; found answers {answers}"
        )
    positives = {e.answer for e in examples if e.label == 1}
    if len(positives) != 1:
        raise ReproError("could not infer the positive answer text from labels")
    positive = positives.pop()
    negative = next(a for a in answers if a != positive)
    return [
        EvalSample(prompt=e.prompt, label=e.label, positive_text=positive, negative_text=negative)
        for e in examples
    ]


def cmd_datasets(args) -> int:
    for name in available_datasets():
        print(name)
    return 0


def cmd_generate(args) -> int:
    dataset = load_dataset(args.dataset, n=args.n, seed=args.seed)
    if args.split is not None:
        train, test = dataset.split(test_fraction=args.split, seed=args.seed)
        out = Path(args.out)
        n_train = save_jsonl(build_classification_examples(train), out)
        test_path = out.with_name(out.stem + ".test" + out.suffix)
        n_test = save_jsonl(build_classification_examples(test), test_path)
        print(f"wrote {n_train} train examples to {out}")
        print(f"wrote {n_test} test examples to {test_path}")
    else:
        count = save_jsonl(build_classification_examples(dataset), args.out)
        print(f"wrote {count} examples to {args.out}")
    return 0


def cmd_train(args) -> int:
    examples = load_jsonl(args.data)
    zigong = ZiGong.from_examples(examples, config=_zigong_config(args))
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    history = zigong.finetune(
        examples,
        checkpoint_dir=args.checkpoint_dir,
        use_lora=not args.no_lora,
        resume=args.resume,
    )
    zigong.save(args.out)
    if history.losses:
        print(
            f"trained on {len(examples)} examples: loss {history.losses[0]:.3f} -> "
            f"{history.losses[-1]:.3f}; model saved to {args.out}"
        )
    else:
        # --resume from a checkpoint of an already-finished run: nothing
        # left to train, but the restored model is still saved.
        print(
            f"nothing to train: checkpoint already covers all "
            f"{len(examples)} examples; model saved to {args.out}"
        )
    return 0


def cmd_evaluate(args) -> int:
    zigong = ZiGong.load(args.model)
    examples = load_jsonl(args.data)
    samples = _examples_to_samples(examples)
    result = evaluate(zigong.classifier(), samples, dataset_name=Path(args.data).stem)
    print(format_table(
        ["Dataset", "N", "Acc", "F1", "Miss", "KS", "AUC"],
        [[result.dataset, result.n, result.accuracy, result.f1, result.miss, result.ks, result.auc]],
    ))
    return 0


def cmd_pipeline(args) -> int:
    if args.strategy is not None:
        warnings.warn(
            "pipeline --strategy is deprecated; use --estimator "
            "(and see `repro influence` for attribution-only runs)",
            DeprecationWarning,
            stacklevel=2,
        )
    strategy = args.estimator or args.strategy or "tracseq"
    dataset = load_dataset(args.dataset, n=args.n, seed=args.seed)
    train, test = dataset.split(test_fraction=0.2, seed=args.seed)
    examples = build_classification_examples(train)
    split = int(0.9 * len(examples))
    pipeline = ZiGongPipeline(
        PipelineConfig(
            zigong=_zigong_config(args),
            pruner=PrunerConfig(
                strategy=strategy,
                gamma=args.gamma,
                workers=args.workers,
                cache_dir=args.cache_dir,
                seed=args.seed,
            ),
            pruned_fraction=args.pruned_fraction,
            seed=args.seed,
        )
    )
    result = pipeline.run(examples[:split], examples[split:])
    from repro.eval import make_eval_samples

    eval_result = evaluate(
        result.zigong.classifier(), make_eval_samples(test), dataset_name=args.dataset
    )
    print(format_table(
        ["Dataset", "Strategy", "Acc", "F1", "Miss", "KS"],
        [[args.dataset, strategy, eval_result.accuracy, eval_result.f1,
          eval_result.miss, eval_result.ks]],
        title="Pipeline result",
    ))
    if args.out:
        result.zigong.save(args.out)
        print(f"model saved to {args.out}")
    return 0


def cmd_pipeline_run(args) -> int:
    """Drive the online drift→retrain→shadow→promote loop on synthetic traffic."""
    import tempfile
    import time as _time

    import numpy as np

    from repro.data import build_behavior_examples
    from repro.data.templates import CLASSIFICATION_TEMPLATE
    from repro.datasets import make_behavior
    from repro.obs import Observability, get_observability
    from repro.pipeline import OnlineConfig, OnlinePipeline, PromotionGate
    from repro.serving import ClusterConfig, ScoreRequest
    from repro.serving.behavior_card import DEFAULT_QUESTION

    obs = Observability.create(events_path=args.events) if args.events else get_observability()

    dataset = make_behavior(n_users=args.users, n_periods=args.periods, seed=args.seed)
    examples = build_behavior_examples(dataset)
    split = len(examples) // 2
    print(f"training the deployed model on {split} of {len(examples)} behavior examples ...")
    zigong = ZiGong.from_examples(examples, config=_zigong_config(args))
    zigong.apply_lora()
    zigong.finetune(examples[:split])

    traffic = [
        ScoreRequest(f"user-{user:04d}-p{period}", dataset.row_text(user, period))
        for user in range(dataset.n_users)
        for period in range(dataset.n_periods)
    ]
    prompts = [
        CLASSIFICATION_TEMPLATE.format(sentence=r.behavior_text, question=DEFAULT_QUESTION)
        for r in traffic[:32]
    ]
    calibration = np.asarray(zigong.score_batch(prompts, "yes", "no"))
    if args.no_drift:
        reference = calibration
    else:
        # Seeded synthetic drift: anchor the reference half a unit away
        # from the live score mass so PSI trips once the window fills.
        reference = (calibration + 0.5) % 1.0

    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-online-")
    config = OnlineConfig(
        drift_window=max(48, 4 * args.batch),
        min_observations=max(16, 2 * args.batch),
        n_bins=8,
        keep_fraction=args.keep_fraction,
        influence_strategy=args.estimator,
        retrain_epochs=args.retrain_epochs,
        shadow_requests=args.shadow_requests,
        shadow_window=max(32, 3 * args.shadow_requests),
        gate=PromotionGate(
            min_shadow_requests=max(1, args.shadow_requests),
            min_agreement=args.min_agreement,
            max_accuracy_drop=None,
            max_miss_increase=None,
        ),
        seed=args.seed,
    )
    pipeline = OnlinePipeline.for_zigong(
        zigong,
        reference_scores=reference,
        work_dir=work_dir,
        config=config,
        cluster_config=ClusterConfig(replicas=args.replicas),
        obs=obs,
    )
    pipeline.ingest(examples[split:])

    start = _time.perf_counter()
    served = 0
    ticks = 0
    cursor = 0
    for ticks in range(1, args.max_ticks + 1):
        requests = [traffic[(cursor + j) % len(traffic)] for j in range(args.batch)]
        cursor += args.batch
        served += len(pipeline.tick(requests))
        if pipeline.state.promotions or pipeline.state.rollbacks:
            break
    elapsed = _time.perf_counter() - start

    state = pipeline.state
    rows = [
        ["phase", state.phase],
        ["rounds (drift trips)", state.round],
        ["PSI at last trip", "-" if state.drift_psi is None else f"{state.drift_psi:.3f}"],
        ["promotions", state.promotions],
        ["rollbacks", state.rollbacks],
        ["gate failures", state.gate_failures],
        ["requests served", served],
        ["ticks", ticks],
        ["wall clock", f"{elapsed:.2f}s"],
        ["work dir", work_dir],
    ]
    if pipeline.last_gate is not None:
        verdict = "passed" if pipeline.last_gate.passed else "failed"
        detail = "; ".join(pipeline.last_gate.reasons) or (
            f"agreement {pipeline.last_gate.metrics.get('agreement_rate', float('nan')):.3f}"
        )
        rows.append(["last gate", f"{verdict} ({detail})"])
    print(format_table(["Metric", "Value"], rows, title="repro pipeline run: online learning loop"))
    if state.promotions:
        print("\ndrift -> retrain -> shadow -> promote completed; "
              "the cluster now serves the retrained weights.")
    elif state.rollbacks:
        print("\npromotion rolled back; the cluster serves the prior weights.")
    else:
        print(f"\nno promotion within {args.max_ticks} ticks (phase: {state.phase}).")
    if args.events:
        obs.events.emit_metrics(obs.metrics)
        obs.events.close()
        print(f"events written to {args.events}; inspect with: repro obs report --events {args.events}")
    return 0


def cmd_influence(args) -> int:
    """Attribution front door: train (or reuse checkpoints), rank, explain."""
    import tempfile

    from repro.influence import make_estimator
    from repro.influence.gradients import GradientProjector, trainable_parameters
    from repro.training.checkpoint import CheckpointManager

    train = load_jsonl(args.data)
    val = load_jsonl(args.val_data) if args.val_data else None
    if val is None:
        split = max(1, int(0.9 * len(train)))
        train, val = train[:split], train[split:] or train[-1:]
    zigong = ZiGong.from_examples(list(train) + list(val), config=_zigong_config(args))
    checkpoint_dir = args.checkpoint_dir or tempfile.mkdtemp(prefix="repro-influence-")
    manager = CheckpointManager(checkpoint_dir)
    if not manager.checkpoints():
        zigong.finetune(train, checkpoint_dir=checkpoint_dir)
    else:
        # Reusing a checkpoint directory: the model must still carry the
        # adapters those checkpoints were written with.
        zigong.apply_lora()
    checkpoints = manager.checkpoints()
    projector = None
    if args.projection_dim:
        dim = sum(p.size for p in trainable_parameters(zigong.model))
        projector = GradientProjector(dim, k=args.projection_dim, seed=args.seed)
    estimator = make_estimator(
        args.estimator,
        zigong.model,
        checkpoints,
        gamma=args.gamma,
        lam=args.lam,
        projector=projector,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    train_tokens = zigong.tokenize(train)
    val_tokens = zigong.tokenize(val)
    top = estimator.k_most_influential(
        train_tokens, val_tokens, k=args.top_k, proponents=not args.opponents
    )
    direction = "opponents" if args.opponents else "proponents"
    rows = []
    for j in range(len(val)):
        ranked = ", ".join(
            f"#{index}:{score:+.4f}"
            for index, score in zip(top.indices[j], top.scores[j])
        )
        rows.append([j, ranked])
    print(format_table(
        ["Test", f"top-{args.top_k} {direction} (train index:score)"],
        rows,
        title=f"Influence ({estimator.estimator_name}, {len(train)} train examples)",
    ))
    if args.tokens:
        id_to_token = zigong.tokenizer.vocab.id_to_token
        token_rows = []
        for j, example in enumerate(val_tokens):
            attribution = estimator.token_influence(train_tokens, example)
            per_position = attribution.position_totals()
            ranked = sorted(
                zip(attribution.positions, per_position),
                key=lambda ps: abs(ps[1]),
                reverse=True,
            )[:args.top_k]
            token_rows.append([
                j,
                ", ".join(
                    f"{id_to_token(int(example[0][p]))}:{s:+.4f}" for p, s in ranked
                ),
            ])
        print(format_table(
            ["Test", f"top-{args.top_k} tokens (token:score)"],
            token_rows,
            title="Token-wise attribution",
        ))
    return 0


def cmd_serve(args) -> int:
    import json
    import time as _time

    from repro.errors import QueueFullError
    from repro.obs import Observability, get_observability
    from repro.serving import (
        ClusterConfig,
        ClusterSupervisor,
        ScoreRequest,
        zigong_replica_factory,
    )

    if (args.requests is None) == (args.synthetic is None):
        print("error: pass exactly one of --requests or --synthetic", file=sys.stderr)
        return 2

    zigong = ZiGong.load(args.model)
    if args.requests is not None:
        requests = []
        with open(args.requests, encoding="utf-8") as handle:
            for i, line in enumerate(handle):
                if not line.strip():
                    continue
                record = json.loads(line)
                text = record.get("behavior_text") or record.get("text") or record.get("prompt")
                if not text:
                    print(f"error: line {i + 1} has no behavior text", file=sys.stderr)
                    return 2
                requests.append(ScoreRequest(record.get("user_id", f"user-{i}"), text))
    else:
        from repro.datasets import make_behavior

        dataset = make_behavior(n_users=max(1, (args.synthetic + 1) // 2), n_periods=2, seed=args.seed)
        requests = [
            ScoreRequest(f"user-{u:04d}-p{p}", dataset.row_text(u, p))
            for u in range(dataset.n_users)
            for p in range(dataset.n_periods)
        ][: args.synthetic]

    if args.continuous and args.transport != "thread":
        print("error: --continuous requires --transport thread", file=sys.stderr)
        return 2
    obs = Observability.create(events_path=args.events) if args.events else get_observability()
    cluster = ClusterSupervisor(
        zigong_replica_factory(zigong, threshold=args.threshold, quantize=args.quantize),
        ClusterConfig(
            replicas=args.replicas,
            transport=args.transport,
            engine_mode="continuous" if args.continuous else "microbatch",
            max_batch_size=args.max_batch_size,
            queue_capacity=max(64, args.max_batch_size * 4),
        ),
        obs=obs,
    )
    start = _time.perf_counter()
    with cluster:
        pendings = []
        for request in requests:
            while True:
                try:
                    pendings.append(cluster.submit(request))
                    break
                except QueueFullError:
                    _time.sleep(0.002)  # backpressure: wait for queue room
        results = [p.result(timeout=args.timeout) for p in pendings]
    elapsed = _time.perf_counter() - start

    rows = [
        [r.user_id, f"{r.score:.4f}", "yes" if r.approved else "no", r.replica]
        for r in results[: args.show]
    ]
    print(format_table(["User", "P(default)", "Approved", "Replica"], rows,
                       title=f"repro serve: first {len(rows)} of {len(results)} decisions"))
    per_replica = {r.id: 0 for r in cluster.replicas}
    for r in results:
        if r.replica is not None:
            per_replica[r.replica] += 1
    print(
        f"\n{len(results)} requests on {args.replicas} {args.transport} "
        f"{'continuous' if args.continuous else 'micro-batch'} replica(s) "
        f"in {elapsed:.2f}s ({len(results) / elapsed:.1f} req/s); "
        f"per-replica load {per_replica}; restarts {cluster.stats.restarts}"
    )
    if args.events:
        obs.events.emit_metrics(obs.metrics)
        obs.events.close()
        print(f"events written to {args.events}; inspect with: repro obs report --events {args.events}")
    return 0


def cmd_obs_report(args) -> int:
    from repro.obs import read_events, render_report

    events = read_events(args.events)
    print(render_report(events))
    return 0


def cmd_table3(args) -> int:
    print(format_table(
        ["Category", "Parameter", "Paper (Mistral 7B)", "This reproduction"],
        table3_rows(bench_config()),
        title="Table 3: ZiGong configuration",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available dataset generators").set_defaults(fn=cmd_datasets)

    p = sub.add_parser("generate", help="generate instruction data as jsonl")
    p.add_argument("--dataset", required=True)
    p.add_argument("--n", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--split", type=float, default=None, help="also write a test split")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("train", help="fine-tune ZiGong on a jsonl file")
    p.add_argument("--data", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=5e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--preset", choices=("test", "bench"), default="test")
    p.add_argument("--checkpoint-dir", default=None)
    p.add_argument("--no-lora", action="store_true", help="full-parameter fine-tune")
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from the latest checkpoint in --checkpoint-dir "
        "(bit-identical to an uninterrupted run)",
    )
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("evaluate", help="evaluate a saved model on a jsonl file")
    p.add_argument("--model", required=True)
    p.add_argument("--data", required=True)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser(
        "pipeline",
        help="data pipelines: prune + mix + fine-tune (default) or the online loop",
    )
    pipe_sub = p.add_subparsers(dest="pipeline_command", required=False)
    run = pipe_sub.add_parser(
        "run",
        help="online learning daemon: drift -> retrain -> shadow -> promote",
    )
    run.add_argument("--users", type=int, default=24, help="synthetic behavior users")
    run.add_argument("--periods", type=int, default=4, help="periods per user")
    run.add_argument("--replicas", type=int, default=2)
    run.add_argument("--batch", type=int, default=8, help="score requests per tick")
    run.add_argument("--max-ticks", type=int, default=60)
    run.add_argument("--epochs", type=int, default=2, help="base fine-tune epochs")
    run.add_argument("--retrain-epochs", type=int, default=1)
    run.add_argument("--estimator", default="agent",
                     help="influence filter for the retrain set "
                     "(tracin/tracseq/datainf/agent/combined/ppl/random)")
    run.add_argument("--keep-fraction", type=float, default=0.7)
    run.add_argument("--shadow-requests", type=int, default=12,
                     help="shadow comparisons collected before the gate decides")
    run.add_argument("--min-agreement", type=float, default=0.0)
    run.add_argument("--no-drift", action="store_true",
                     help="calibrate the reference on live scores (loop stays in monitor)")
    run.add_argument("--work-dir", default=None,
                     help="pipeline state directory (default: a fresh temp dir); "
                     "rerunning over an existing one resumes the persisted phase")
    run.add_argument("--lr", type=float, default=5e-3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--preset", choices=("test", "bench"), default="test")
    run.add_argument("--events", default=None,
                     help="record obs events to this jsonl (view: repro obs report)")
    run.set_defaults(fn=cmd_pipeline_run)

    p.add_argument("--dataset", default="german")
    p.add_argument("--n", type=int, default=400)
    p.add_argument("--estimator", default=None,
                   help="pruning score backend (tracin/tracseq/datainf/agent/combined/ppl/random)")
    p.add_argument("--strategy", default=None, help="deprecated alias of --estimator")
    p.add_argument("--gamma", type=float, default=0.9)
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool size for influence checkpoint replay (0 = in-process)")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the gradient store's disk tier (reused across runs)")
    p.add_argument("--pruned-fraction", type=float, default=0.3)
    p.add_argument("--epochs", type=int, default=8)
    p.add_argument("--lr", type=float, default=5e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--preset", choices=("test", "bench"), default="test")
    p.add_argument("--out", default=None)
    p.set_defaults(fn=cmd_pipeline)

    p = sub.add_parser(
        "influence",
        help="rank influential training examples (and tokens) for test examples",
    )
    p.add_argument("--data", required=True, help="training examples (jsonl)")
    p.add_argument("--val-data", default=None,
                   help="test examples to attribute (jsonl); default: a 10%% tail split of --data")
    p.add_argument("--estimator", choices=("tracin", "tracseq", "datainf"), default="datainf")
    p.add_argument("--top-k", type=int, default=5)
    p.add_argument("--opponents", action="store_true",
                   help="rank the most *opposing* examples instead of proponents")
    p.add_argument("--tokens", action="store_true",
                   help="also print the token-wise attribution per test example")
    p.add_argument("--gamma", type=float, default=0.9, help="tracseq time decay")
    p.add_argument("--lam", type=float, default=None,
                   help="datainf Hessian regularizer (default: per-layer heuristic)")
    p.add_argument("--projection-dim", type=int, default=128,
                   help="gradient sketch size (0 = exact gradients)")
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool size for influence checkpoint replay (0 = in-process)")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the gradient store's disk tier (reused across runs)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="reuse checkpoints from a previous run instead of retraining")
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--lr", type=float, default=5e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--preset", choices=("test", "bench"), default="test")
    p.set_defaults(fn=cmd_influence)

    p = sub.add_parser("serve", help="score requests on a replicated serving cluster")
    p.add_argument("--model", required=True, help="saved model directory (repro train --out)")
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--transport", choices=("thread", "fork"), default="thread")
    p.add_argument(
        "--continuous",
        action="store_true",
        help="continuous-batching engines: generative decode with streaming "
        "admission instead of per-tick micro-batches (thread transport only)",
    )
    p.add_argument("--requests", default=None, help="jsonl with user_id + behavior_text per line")
    p.add_argument("--synthetic", type=int, default=None, help="score N synthetic behavior rows instead")
    p.add_argument("--threshold", type=float, default=0.5)
    p.add_argument(
        "--quantize",
        choices=("int8",),
        default=None,
        help="serve replicas from int8 weights on the fused inference kernel "
        "(~4x less weight memory per replica; the saved checkpoint stays float)",
    )
    p.add_argument("--max-batch-size", type=int, default=8)
    p.add_argument("--timeout", type=float, default=60.0, help="per-request wait bound (seconds)")
    p.add_argument("--show", type=int, default=10, help="decisions to print")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events", default=None, help="record an obs run file (for `repro obs report`)")
    p.set_defaults(fn=cmd_serve)

    sub.add_parser("table3", help="print the configuration table").set_defaults(fn=cmd_table3)

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    r = obs_sub.add_parser(
        "report", help="render metrics / spans / events from a recorded JSONL run"
    )
    r.add_argument("--events", required=True, help="JSON-lines file written by an EventSink")
    r.set_defaults(fn=cmd_obs_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
