"""Nestable trace spans forming a per-thread trace tree.

``tracer.span("serving.batch", batch_size=4)`` times a block on the
tracer's injectable clock and records where it sat in the call tree:
spans opened while another span is active become its children, so one
engine pump produces ``serving.batch`` with a ``serving.forward`` child,
and a TracSeq scoring run produces ``influence.matrix`` with one
``influence.checkpoint`` child per replayed checkpoint.

Completed root spans land in ``tracer.roots`` (a bounded deque); every
finished span also feeds

* a per-name aggregate (``tracer.aggregates()`` — count / total / max),
* the ``span.duration_s{name=...}`` histogram when the tracer has a
  metrics registry, and
* a ``kind="span"`` event when it has an event sink,

so traces are queryable live, from metrics, or from a recorded run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import EventSink
    from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """One timed block; ``attrs`` may be filled in while the span is open."""

    name: str
    start_s: float
    end_s: float = 0.0
    status: str = "ok"
    attrs: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> dict:
        """JSON-able view of the subtree (used by the event sink)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """Shared inert span handed out by a disabled tracer."""

    name = "null"
    duration_s = 0.0
    status = "ok"
    children: list = []

    @property
    def attrs(self) -> dict[str, object]:
        return {}  # fresh throwaway dict: attr writes on a null span vanish


_NULL_SPAN = _NullSpan()


class Tracer:
    """Builds trace trees; thread-safe via a per-thread span stack.

    Parameters
    ----------
    clock:
        Injected time source (defaults to ``time.perf_counter``); tests
        pass a fake clock for deterministic durations.
    metrics / events:
        Optional :class:`MetricsRegistry` / :class:`EventSink` that every
        finished span is mirrored into.
    max_roots:
        Bound on retained completed root spans (oldest evicted first).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
        metrics: "MetricsRegistry | None" = None,
        events: "EventSink | None" = None,
        max_roots: int = 256,
    ):
        self.enabled = enabled
        self._clock = clock
        self._metrics = metrics
        self._events = events
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._aggregates: dict[str, list[float]] = {}  # name -> [count, total, max]

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a block; nested calls become children of the open span."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        record = Span(name=name, start_s=self._clock(), attrs=dict(attrs))
        stack = self._stack()
        stack.append(record)
        try:
            yield record
        except BaseException:
            record.status = "error"
            raise
        finally:
            record.end_s = self._clock()
            stack.pop()
            if stack:
                stack[-1].children.append(record)
            else:
                self.roots.append(record)
            self._finish(record)

    def _finish(self, record: Span) -> None:
        with self._lock:
            agg = self._aggregates.setdefault(record.name, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += record.duration_s
            agg[2] = max(agg[2], record.duration_s)
        if self._metrics is not None:
            self._metrics.histogram("span.duration_s", name=record.name).observe(
                record.duration_s
            )
        if self._events is not None:
            self._events.emit(
                "span",
                name=record.name,
                duration_s=record.duration_s,
                status=record.status,
                attrs=record.attrs,
                n_children=len(record.children),
            )

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def aggregates(self) -> dict[str, dict[str, float]]:
        """Per-span-name totals: ``{name: {count, total_s, mean_s, max_s}}``."""
        with self._lock:
            return {
                name: {
                    "count": count,
                    "total_s": total,
                    "mean_s": total / count if count else 0.0,
                    "max_s": peak,
                }
                for name, (count, total, peak) in sorted(self._aggregates.items())
            }
