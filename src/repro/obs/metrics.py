"""Process-local metrics: counters, gauges and windowed histograms.

The registry is the write side of the observability layer: hot paths
(serving engine, trainer, influence replay) hold direct references to
their instruments and update them with one attribute write per event, so
instrumentation stays well under the ~3 % overhead budget enforced by
``benchmarks/bench_obs_overhead.py``.  A disabled registry hands out
shared no-op instruments, making the instrumented code identical in both
modes — there are no ``if obs:`` branches on the hot paths.

Metric names are dotted strings (``serving.latency_s``); labels are
keyword arguments (``registry.counter("serving.requests", path="batch")``)
and every distinct label set is its own time series.  Histograms keep
exact running ``count / sum / min / max`` plus a bounded window of recent
observations for quantile summaries, so long-running processes stay
bounded in memory.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Mapping

from repro.errors import ObservabilityError

LabelItems = tuple[tuple[str, str], ...]


def _series_key(name: str, labels: Mapping[str, object]) -> str:
    """Render ``name{k=v,...}``, the stable key used in snapshots."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (requests, tokens, expiries)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Mapping[str, object] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins level (queue depth, loss, PSI)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Mapping[str, object] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Distribution summary: exact count/sum/min/max, windowed quantiles.

    The window (default 2048 observations) bounds memory on long runs;
    quantiles therefore describe *recent* behavior, which is what a
    latency dashboard wants anyway.
    """

    __slots__ = ("name", "labels", "window", "_lock", "_count", "_sum", "_min", "_max", "_recent")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        window: int = 2048,
    ):
        if window <= 0:
            raise ObservabilityError(f"histogram window must be positive, got {window}")
        self.name = name
        self.labels = dict(labels or {})
        self.window = window
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._recent: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._recent.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Quantile over the recent window (0 when nothing observed)."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._recent:
                return 0.0
            ordered = sorted(self._recent)
        # Nearest-rank on the window; deterministic, no interpolation noise.
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled registries."""

    name = "null"
    labels: dict[str, object] = {}
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0}


_NULL = _NullInstrument()


class MetricsRegistry:
    """Process-local home for every instrument, keyed by name + labels.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name and labels returns the same instrument, so
    independently constructed components share series.  A disabled
    registry returns the shared no-op instrument instead, which is how
    the overhead benchmark turns the whole layer off.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, table: dict, factory, name: str, labels: Mapping[str, object]):
        key = _series_key(name, labels)
        with self._lock:
            instrument = table.get(key)
            if instrument is None:
                instrument = table[key] = factory(name, labels)
            return instrument

    # ``name`` is positional-only so that labels may themselves be
    # called ``name`` (e.g. ``histogram("span.duration_s", name=span)``).
    def counter(self, name: str, /, **labels) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, /, **labels) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, /, window: int = 2048, **labels) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        return self._get(
            self._histograms,
            lambda n, l: Histogram(n, l, window=window),
            name,
            labels,
        )

    def snapshot(self) -> dict[str, dict]:
        """A JSON-able point-in-time view of every series."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: c.value for key, c in sorted(counters.items())},
            "gauges": {key: g.value for key, g in sorted(gauges.items())},
            "histograms": {key: h.summary() for key, h in sorted(histograms.items())},
        }

    def series(self) -> Iterable[str]:
        """All registered series keys (for tests and reports)."""
        with self._lock:
            return sorted([*self._counters, *self._gauges, *self._histograms])
