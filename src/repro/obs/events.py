"""Structured JSON-lines event sink.

Every event is one JSON object per line::

    {"ts": 1722945600.0, "kind": "serving.batch", "size": 8, "degraded": false}

``ts`` comes from the sink's injectable clock and ``kind`` namespaces the
event (``span``, ``serving.batch``, ``training.epoch``, ``metrics`` ...).
Events always land in a bounded in-memory ring (so tests and live
debugging can inspect them) and, when the sink has a path, are appended
to the file as they happen — a recorded run that ``repro obs report``
can replay later.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import IO, TYPE_CHECKING, Callable

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry


class EventSink:
    """Append-only structured event log (in-memory ring + optional file)."""

    def __init__(
        self,
        path: str | Path | None = None,
        clock: Callable[[], float] = time.time,
        max_events: int = 10000,
    ):
        if max_events <= 0:
            raise ObservabilityError(f"max_events must be positive, got {max_events}")
        self.path = Path(path) if path is not None else None
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=max_events)
        self._file: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the event dict."""
        event = {"ts": self._clock(), "kind": kind, **fields}
        self._ring.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event, default=str) + "\n")
            self._file.flush()
        return event

    def emit_metrics(self, registry: "MetricsRegistry") -> dict:
        """Record a point-in-time snapshot of a registry's series."""
        return self.emit("metrics", snapshot=registry.snapshot())

    @property
    def n_events(self) -> int:
        return len(self._ring)

    def events(self) -> list[dict]:
        """A copy of the in-memory ring (oldest first)."""
        return list(self._ring)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Load a recorded JSON-lines run (skipping blank lines)."""
    path = Path(path)
    if not path.exists():
        raise ObservabilityError(f"no recorded run at {path}")
    events = []
    with path.open(encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObservabilityError(f"{path}:{lineno} is not valid JSON: {exc}")
    return events
