"""Observability: metrics, trace spans and structured events.

The production story of the paper — a Behavior Card service inside a
live loan pipeline — needs more than correct scores: queue depths,
latency histograms, per-checkpoint influence timings and structured
events a dashboard or regression test can consume.  This package is that
layer, wired through ``repro.serving``, ``repro.training`` and
``repro.influence`` (metric names and schemas in
``docs/observability.md``):

* :class:`MetricsRegistry` — counters, gauges, labeled histograms with
  quantile summaries (:mod:`repro.obs.metrics`).
* :class:`Tracer` / ``span()`` — nestable timers forming a trace tree on
  an injectable clock (:mod:`repro.obs.trace`).
* :class:`EventSink` — JSON-lines structured events, replayable via
  ``repro obs report`` (:mod:`repro.obs.events`, :mod:`repro.obs.report`).

Instrumented components take an :class:`Observability` hub (or fall back
to the process-wide default from :func:`get_observability`).  Passing
``Observability.disabled()`` turns the whole layer into no-ops;
``benchmarks/bench_obs_overhead.py`` holds the overhead of enabled vs
disabled under ~3 % on the serving hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.events import EventSink, read_events
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_registry, render_report, render_snapshot
from repro.obs.trace import Span, Tracer


@dataclass
class Observability:
    """One handle bundling the three write paths.

    ``metrics`` and ``tracer`` are always present (possibly disabled);
    ``events`` is optional — most processes only record events when
    asked to produce a run file.
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)
    events: EventSink | None = None

    @classmethod
    def create(
        cls,
        events_path=None,
        clock: Callable[[], float] = time.perf_counter,
        wall_clock: Callable[[], float] = time.time,
    ) -> "Observability":
        """A fully wired hub: spans feed metrics and (optional) events."""
        metrics = MetricsRegistry()
        events = EventSink(events_path, clock=wall_clock) if events_path is not None else None
        tracer = Tracer(clock=clock, metrics=metrics, events=events)
        return cls(metrics=metrics, tracer=tracer, events=events)

    @classmethod
    def disabled(cls) -> "Observability":
        """All-no-op hub; instrumented code runs identically, records nothing."""
        return cls(
            metrics=MetricsRegistry(enabled=False),
            tracer=Tracer(enabled=False),
            events=None,
        )

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled

    def span(self, name: str, **attrs):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, **fields) -> dict | None:
        """Emit a structured event if a sink is attached (else no-op)."""
        if self.events is None:
            return None
        return self.events.emit(kind, **fields)


_default: Observability | None = None


def get_observability() -> Observability:
    """The process-wide default hub (created enabled, no event sink)."""
    global _default
    if _default is None:
        _default = Observability.create()
    return _default


def set_observability(obs: Observability | None) -> Observability | None:
    """Swap the process default (tests; returns the previous hub)."""
    global _default
    previous = _default
    _default = obs
    return previous


__all__ = [
    "Observability",
    "get_observability",
    "set_observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "EventSink",
    "read_events",
    "render_report",
    "render_registry",
    "render_snapshot",
]
