"""Render a human-readable summary of a recorded observability run.

The input is the event list produced by :class:`~repro.obs.events.EventSink`
(usually loaded back with :func:`~repro.obs.events.read_events`); the
output is the monospace report behind ``repro obs report``:

* event counts by kind,
* a span summary aggregated by name (count / total / mean / max), and
* the **last** ``metrics`` snapshot in the run — counters, gauges and
  histogram quantiles.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Mapping, Sequence

from repro.obs.metrics import MetricsRegistry


def _table(headers, rows, title=None) -> str:
    # Imported lazily: repro.eval transitively imports repro.influence,
    # which imports repro.obs — a cycle at module-import time only.
    from repro.eval import format_table

    return format_table(headers, rows, title=title)


def _num(value: float) -> str:
    """Compact numeric formatting (latencies are sub-millisecond)."""
    return f"{value:.6g}"


def _span_rows(events: Sequence[Mapping]) -> list[list]:
    totals: dict[str, list[float]] = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        agg = totals.setdefault(str(event.get("name", "?")), [0, 0.0, 0.0])
        duration = float(event.get("duration_s", 0.0))
        agg[0] += 1
        agg[1] += duration
        agg[2] = max(agg[2], duration)
    return [
        [name, int(count), _num(total), _num(total / count if count else 0.0), _num(peak)]
        for name, (count, total, peak) in sorted(totals.items())
    ]


def _latest_metrics(events: Sequence[Mapping]) -> Mapping | None:
    snapshot = None
    for event in events:
        if event.get("kind") == "metrics":
            snapshot = event.get("snapshot")
    return snapshot


def render_snapshot(snapshot: Mapping) -> str:
    """Render one registry snapshot (``MetricsRegistry.snapshot()``)."""
    parts = []
    scalars = [
        [key, _num(float(value)), "counter"]
        for key, value in snapshot.get("counters", {}).items()
    ] + [
        [key, _num(float(value)), "gauge"]
        for key, value in snapshot.get("gauges", {}).items()
    ]
    if scalars:
        parts.append(_table(["Metric", "Value", "Type"], scalars, title="Metrics"))
    histograms = [
        [
            key,
            int(summary.get("count", 0)),
            _num(float(summary.get("mean", 0.0))),
            _num(float(summary.get("p50", 0.0))),
            _num(float(summary.get("p90", 0.0))),
            _num(float(summary.get("p99", 0.0))),
            _num(float(summary.get("max", 0.0))),
        ]
        for key, summary in snapshot.get("histograms", {}).items()
    ]
    if histograms:
        parts.append(
            _table(
                ["Histogram", "Count", "Mean", "P50", "P90", "P99", "Max"],
                histograms,
                title="Histograms",
            )
        )
    return "\n\n".join(parts) if parts else "(empty metrics snapshot)"


def render_registry(registry: MetricsRegistry) -> str:
    """Render a live registry (used by benchmarks and the demo paths)."""
    return render_snapshot(registry.snapshot())


def render_report(events: Sequence[Mapping]) -> str:
    """Full report for a recorded run: events, spans, final metrics."""
    if not events:
        return "(no events recorded)"
    parts = []
    kinds = TallyCounter(str(event.get("kind", "?")) for event in events)
    parts.append(
        _table(
            ["Kind", "Count"],
            [[kind, count] for kind, count in sorted(kinds.items())],
            title=f"Recorded run: {len(events)} events",
        )
    )
    span_rows = _span_rows(events)
    if span_rows:
        parts.append(
            _table(
                ["Span", "Count", "Total s", "Mean s", "Max s"],
                span_rows,
                title="Spans",
            )
        )
    snapshot = _latest_metrics(events)
    if snapshot is not None:
        parts.append(render_snapshot(snapshot))
    return "\n\n".join(parts)
