"""Gradient-boosted decision stumps, from scratch.

A compact non-linear expert-system baseline (credit scorecards in
production are typically boosted trees); also usable as an alternative
agent model for data pruning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, DataError


@dataclass
class _Stump:
    feature: int
    threshold: float
    left_value: float
    right_value: float

    def predict(self, X: np.ndarray) -> np.ndarray:
        go_right = X[:, self.feature] > self.threshold
        return np.where(go_right, self.right_value, self.left_value)


class GradientBoostedStumps:
    """Binary classifier: logistic loss boosted over depth-1 trees."""

    def __init__(
        self,
        n_rounds: int = 50,
        learning_rate: float = 0.3,
        n_thresholds: int = 16,
    ):
        if n_rounds <= 0 or learning_rate <= 0 or n_thresholds <= 0:
            raise ConfigError("n_rounds, learning_rate and n_thresholds must be positive")
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.n_thresholds = n_thresholds
        self.stumps: list[_Stump] = []
        self.base_score: float = 0.0

    def _candidate_thresholds(self, column: np.ndarray) -> np.ndarray:
        qs = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]
        return np.unique(np.quantile(column, qs))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedStumps":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise DataError(f"bad shapes X={X.shape}, y={y.shape}")
        pos = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self.base_score = float(np.log(pos / (1 - pos)))
        margin = np.full(y.shape[0], self.base_score)
        self.stumps = []
        for _ in range(self.n_rounds):
            p = 1.0 / (1.0 + np.exp(-margin))
            residual = y - p  # negative gradient of logistic loss
            hessian = p * (1 - p)
            best: tuple[float, _Stump] | None = None
            for feature in range(X.shape[1]):
                column = X[:, feature]
                for threshold in self._candidate_thresholds(column):
                    right = column > threshold
                    left = ~right
                    if not right.any() or not left.any():
                        continue
                    # Newton step per leaf.
                    lv = residual[left].sum() / (hessian[left].sum() + 1e-9)
                    rv = residual[right].sum() / (hessian[right].sum() + 1e-9)
                    gain = (
                        residual[left].sum() ** 2 / (hessian[left].sum() + 1e-9)
                        + residual[right].sum() ** 2 / (hessian[right].sum() + 1e-9)
                    )
                    if best is None or gain > best[0]:
                        best = (gain, _Stump(feature, float(threshold), lv, rv))
            if best is None:
                break
            stump = best[1]
            self.stumps.append(stump)
            margin += self.learning_rate * stump.predict(X)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        margin = np.full(X.shape[0], self.base_score)
        for stump in self.stumps:
            margin += self.learning_rate * stump.predict(X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.decision_function(X)))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(np.int64)
