"""From-scratch binary logistic regression (numpy, full-batch gradient descent).

Used in two roles: the lightweight *agent model* that scores training
samples in the data-pruning pipeline, and the SOTA-expert-system style
baseline in the Table 2 benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, DataError


class LogisticRegression:
    """L2-regularized logistic regression trained by gradient descent.

    Features are standardized internally (mean/std learned on fit), which
    makes the fixed learning rate safe across datasets.
    """

    def __init__(
        self,
        lr: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-3,
        tol: float = 1e-7,
    ):
        if lr <= 0 or epochs <= 0:
            raise ConfigError("lr and epochs must be positive")
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.tol = tol
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if X.ndim != 2:
            raise DataError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if not np.isin(y, (0.0, 1.0)).all():
            raise DataError("y must contain only 0/1 labels")
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Xs = self._standardize(X)
        n, d = Xs.shape
        w = np.zeros(d)
        b = 0.0
        prev_loss = np.inf
        for _ in range(self.epochs):
            z = Xs @ w + b
            p = 1.0 / (1.0 + np.exp(-z))
            err = p - y
            grad_w = Xs.T @ err / n + self.l2 * w
            grad_b = err.mean()
            w -= self.lr * grad_w
            b -= self.lr * grad_b
            loss = self._loss(p, y, w)
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.weights = w
        self.bias = b
        return self

    def _loss(self, p: np.ndarray, y: np.ndarray, w: np.ndarray) -> float:
        eps = 1e-12
        nll = -(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)).mean()
        return float(nll + 0.5 * self.l2 * (w**2).sum())

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y=1) for each row of ``X``."""
        if self.weights is None:
            raise DataError("model is not fitted")
        Xs = self._standardize(np.asarray(X, dtype=np.float64))
        return 1.0 / (1.0 + np.exp(-(Xs @ self.weights + self.bias)))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(np.int64)
