"""Weight of Evidence (WoE) and Information Value (IV).

The classic credit-scorecard feature screen: per bin,

    WoE = ln( share of goods in bin / share of bads in bin )
    IV  = Σ_bins (share_good − share_bad) · WoE

Rule-of-thumb IV bands: < 0.02 useless, 0.02–0.1 weak, 0.1–0.3 medium,
0.3–0.5 strong, > 0.5 suspiciously strong (check leakage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.datasets.base import TabularDataset


@dataclass(frozen=True)
class WoeBin:
    """One bin's statistics."""

    label: str
    n_good: int
    n_bad: int
    woe: float


@dataclass(frozen=True)
class FeatureIV:
    """Information Value of a feature with its WoE bins."""

    feature: str
    iv: float
    bins: tuple[WoeBin, ...]

    @property
    def strength(self) -> str:
        if self.iv < 0.02:
            return "useless"
        if self.iv < 0.1:
            return "weak"
        if self.iv < 0.3:
            return "medium"
        if self.iv < 0.5:
            return "strong"
        return "suspicious"


def woe_iv(
    values: np.ndarray,
    y: np.ndarray,
    n_bins: int = 5,
    feature_name: str = "feature",
    epsilon: float = 0.5,
) -> FeatureIV:
    """WoE/IV of one column against a binary target (``y == 1`` = good).

    Numeric values are quantile-binned; pass pre-encoded categoricals as
    small integers (every distinct value becomes a bin when there are at
    most ``n_bins`` of them).  ``epsilon`` is the additive smoothing on
    bin counts that keeps WoE finite for pure bins.
    """
    values = np.asarray(values, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if values.shape != y.shape:
        raise DataError(f"values shape {values.shape} != y shape {y.shape}")
    if values.size == 0:
        raise DataError("empty inputs")
    if not np.isin(y, (0, 1)).all():
        raise DataError("y must be binary 0/1")
    n_good = int(y.sum())
    n_bad = int(y.size - n_good)
    if n_good == 0 or n_bad == 0:
        raise DataError("both classes must be present")

    distinct = np.unique(values)
    if distinct.size <= n_bins:
        assignments = np.searchsorted(distinct, values)
        labels = [f"={v:g}" for v in distinct]
        n_actual = distinct.size
    else:
        qs = np.linspace(0, 1, n_bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, qs))
        assignments = np.searchsorted(edges, values, side="right")
        n_actual = edges.size + 1
        labels = [f"bin{i}" for i in range(n_actual)]

    bins = []
    iv = 0.0
    for b in range(n_actual):
        mask = assignments == b
        good = int((y[mask] == 1).sum())
        bad = int((y[mask] == 0).sum())
        share_good = (good + epsilon) / (n_good + epsilon * n_actual)
        share_bad = (bad + epsilon) / (n_bad + epsilon * n_actual)
        woe = float(np.log(share_good / share_bad))
        iv += (share_good - share_bad) * woe
        bins.append(WoeBin(label=labels[b], n_good=good, n_bad=bad, woe=woe))
    return FeatureIV(feature=feature_name, iv=float(iv), bins=tuple(bins))


def dataset_iv(dataset: TabularDataset, n_bins: int = 5) -> list[FeatureIV]:
    """IV for every column of a tabular dataset, strongest first."""
    results = [
        woe_iv(dataset.X[:, j], dataset.y, n_bins=n_bins, feature_name=spec.name)
        for j, spec in enumerate(dataset.features)
    ]
    results.sort(key=lambda r: r.iv, reverse=True)
    return results
