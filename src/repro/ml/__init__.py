"""Small classic-ML toolbox (from scratch) shared by baselines and pruning."""

from repro.ml.features import HashingVectorizer
from repro.ml.logistic import LogisticRegression
from repro.ml.stumps import GradientBoostedStumps
from repro.ml.woe import FeatureIV, WoeBin, dataset_iv, woe_iv

__all__ = [
    "LogisticRegression",
    "GradientBoostedStumps",
    "HashingVectorizer",
    "woe_iv",
    "dataset_iv",
    "FeatureIV",
    "WoeBin",
]
