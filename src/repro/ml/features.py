"""Feature hashing for text, so the agent model can score raw prompts."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigError


class HashingVectorizer:
    """Map whitespace-tokenized text to a fixed-width hashed bag of words.

    Deterministic across processes (uses blake2b, not Python's randomized
    ``hash``).  Signs alternate by a second hash bit to reduce collision
    bias, as in the classic hashing-trick formulation.
    """

    def __init__(self, n_features: int = 256, signed: bool = True):
        if n_features <= 0:
            raise ConfigError("n_features must be positive")
        self.n_features = n_features
        self.signed = signed

    def _bucket(self, token: str) -> tuple[int, float]:
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
        value = int.from_bytes(digest, "little")
        index = value % self.n_features
        sign = 1.0 if (not self.signed or (value >> 62) & 1) else -1.0
        return index, sign

    def transform(self, texts: list[str]) -> np.ndarray:
        """Vectorize ``texts`` into an ``(n, n_features)`` float array."""
        out = np.zeros((len(texts), self.n_features), dtype=np.float64)
        for row, text in enumerate(texts):
            for token in text.split():
                index, sign = self._bucket(token)
                out[row, index] += sign
        return out
