"""Trainer callbacks: logging, history, metrics publishing, early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import Observability, get_observability


@dataclass
class StepLog:
    """One optimizer step's telemetry.

    ``step_s`` (wall time on the trainer's injectable clock) and
    ``tokens`` (input tokens consumed, padding included) feed the
    tokens/sec throughput metric.
    """

    step: int
    loss: float
    lr: float
    grad_norm: float
    step_s: float = 0.0
    tokens: int = 0

    @property
    def tokens_per_s(self) -> float:
        return self.tokens / self.step_s if self.step_s > 0 else 0.0


class Callback:
    """Hook interface; all methods are optional no-ops."""

    def on_step(self, log: StepLog) -> None:
        """Called after every optimizer step."""

    def on_epoch_end(self, epoch: int, mean_loss: float) -> None:
        """Called after each pass over the training data."""

    def should_stop(self) -> bool:
        """Return True to stop training after the current step."""
        return False


@dataclass
class History(Callback):
    """Records every step; the trainer installs one automatically."""

    steps: list[StepLog] = field(default_factory=list)
    epoch_losses: list[float] = field(default_factory=list)

    def on_step(self, log: StepLog) -> None:
        self.steps.append(log)

    def on_epoch_end(self, epoch: int, mean_loss: float) -> None:
        self.epoch_losses.append(mean_loss)

    @property
    def losses(self) -> list[float]:
        return [s.loss for s in self.steps]

    def final_loss(self) -> float:
        if not self.steps:
            raise ValueError("no steps recorded")
        return self.steps[-1].loss


class MetricsLogger(Callback):
    """Publish step telemetry into the observability layer.

    The trainer installs one automatically (wired to its own hub), so
    ``training.steps`` / ``training.tokens`` counters, the
    ``training.step_s`` histogram and the ``training.loss`` /
    ``training.lr`` / ``training.grad_norm`` / ``training.tokens_per_s``
    gauges stay fresh during any ``train()`` call; each step and epoch
    also emits a structured event when the hub has a sink.  Standalone
    use (e.g. a custom registry): pass it via ``callbacks=[...]``.
    """

    def __init__(self, obs: Observability | None = None):
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_steps = metrics.counter("training.steps")
        self._m_tokens = metrics.counter("training.tokens")
        self._h_step_s = metrics.histogram("training.step_s")
        self._g_loss = metrics.gauge("training.loss")
        self._g_lr = metrics.gauge("training.lr")
        self._g_grad_norm = metrics.gauge("training.grad_norm")
        self._g_tokens_per_s = metrics.gauge("training.tokens_per_s")

    def on_step(self, log: StepLog) -> None:
        self._m_steps.inc()
        self._m_tokens.inc(log.tokens)
        self._h_step_s.observe(log.step_s)
        self._g_loss.set(log.loss)
        self._g_lr.set(log.lr)
        self._g_grad_norm.set(log.grad_norm)
        if log.step_s > 0:
            self._g_tokens_per_s.set(log.tokens_per_s)
        self.obs.event(
            "training.step",
            step=log.step,
            loss=log.loss,
            lr=log.lr,
            grad_norm=log.grad_norm,
            tokens=log.tokens,
            step_s=log.step_s,
        )

    def on_epoch_end(self, epoch: int, mean_loss: float) -> None:
        self.obs.event("training.epoch", epoch=epoch, mean_loss=mean_loss)


class PrintLogger(Callback):
    """Prints a line every ``every`` steps (for examples/benchmarks)."""

    def __init__(self, every: int = 10):
        self.every = every

    def on_step(self, log: StepLog) -> None:
        if log.step % self.every == 0:
            print(f"step {log.step:5d}  loss {log.loss:.4f}  lr {log.lr:.2e}")


class ValidationLoss(Callback):
    """Tracks loss on a held-out set at each epoch end.

    Combine with :class:`EarlyStopping` by passing ``watch=val`` — the
    stopper then reacts to validation (not training) loss, the usual
    guard against overfitting small instruction sets.
    """

    def __init__(self, model, val_examples, pad_id: int = 0, max_len: int | None = None):
        if not val_examples:
            raise ValueError("ValidationLoss needs a non-empty validation set")
        self.model = model
        self.val_examples = list(val_examples)
        self.pad_id = pad_id
        self.max_len = max_len
        self.losses: list[float] = []

    def _compute(self) -> float:
        import numpy as np

        from repro.tensor import no_grad
        from repro.training.batching import collate

        batch = collate(self.val_examples, pad_id=self.pad_id, max_len=self.max_len)
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                value = self.model.loss(batch.input_ids, batch.labels).item()
        finally:
            if was_training:
                self.model.train()
        return float(value)

    def on_epoch_end(self, epoch: int, mean_loss: float) -> None:
        self.losses.append(self._compute())

    @property
    def best(self) -> float:
        if not self.losses:
            raise ValueError("no validation losses recorded yet")
        return min(self.losses)


class EarlyStopping(Callback):
    """Stop when the watched loss fails to improve ``patience`` times.

    By default watches the training epoch loss; pass a
    :class:`ValidationLoss` callback as ``watch`` (installed *before*
    this one in the trainer's callback list) to stop on validation loss.
    """

    def __init__(self, patience: int = 3, min_delta: float = 1e-4,
                 watch: "ValidationLoss | None" = None):
        self.patience = patience
        self.min_delta = min_delta
        self.watch = watch
        self.best = float("inf")
        self.bad_epochs = 0
        self._stop = False

    def on_epoch_end(self, epoch: int, mean_loss: float) -> None:
        value = self.watch.losses[-1] if self.watch is not None else mean_loss
        if value < self.best - self.min_delta:
            self.best = value
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs >= self.patience:
                self._stop = True

    def should_stop(self) -> bool:
        return self._stop
