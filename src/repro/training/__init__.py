"""Training loop, batching, checkpoints and callbacks."""

from repro.training.batching import IGNORE_INDEX, TokenBatch, collate, iter_batches
from repro.training.callbacks import (
    Callback,
    EarlyStopping,
    History,
    MetricsLogger,
    PrintLogger,
    StepLog,
    ValidationLoss,
)
from repro.training.checkpoint import CheckpointManager, CheckpointRecord
from repro.training.trainer import Trainer, TrainingConfig

__all__ = [
    "IGNORE_INDEX",
    "TokenBatch",
    "collate",
    "iter_batches",
    "Callback",
    "History",
    "MetricsLogger",
    "PrintLogger",
    "EarlyStopping",
    "ValidationLoss",
    "StepLog",
    "CheckpointManager",
    "CheckpointRecord",
    "Trainer",
    "TrainingConfig",
]
