"""Checkpoint persistence.

TracInCP / TracSeq replay training through stored checkpoints, so each
checkpoint records both the parameter state (``.npz``) and the learning
rate in effect (``.json`` sidecar) — the step size :math:`\\eta_i` in
Eq. 1 of the paper.

Writes are atomic: both files are staged under temporary names and
renamed into place, metadata sidecar first.  A crash mid-save therefore
never leaves a ``.npz`` without its sidecar, and :meth:`checkpoints`
tolerates (skips, with a warning) orphans left behind by older writers
instead of failing the whole directory listing.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.errors import CheckpointError
from repro.nn.module import Module
from repro.obs import Observability, get_observability
from repro.optim.optimizer import Optimizer


@dataclass(frozen=True)
class CheckpointRecord:
    """Metadata for one stored checkpoint.

    ``extra`` carries every sidecar field beyond ``step`` / ``lr`` —
    anything callers passed to ``save(..., extra=...)`` (the trainer's
    exact-resume state lives here) — so metadata round-trips through
    :meth:`CheckpointManager.checkpoints` instead of being readable
    only by re-parsing the ``.json`` by hand.
    """

    step: int
    lr: float
    path: Path
    extra: Mapping = field(default_factory=dict, compare=False)

    @property
    def meta_path(self) -> Path:
        return self.path.with_suffix(".json")

    @property
    def opt_path(self) -> Path:
        """Optimizer-state arrays (``.opt.npz``); absent for param-only saves."""
        return self.path.with_suffix(".opt.npz")

    @property
    def has_optimizer_state(self) -> bool:
        return self.opt_path.exists()


class CheckpointManager:
    """Save/load model checkpoints in a directory.

    File layout: ``step-000042.npz`` (parameters) plus
    ``step-000042.json`` (step, learning rate, extra metadata).
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int | None = None,
        obs: Observability | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if keep is not None and keep <= 0:
            raise CheckpointError(f"keep must be positive or None, got {keep}")
        self.keep = keep
        self.obs = obs or get_observability()
        self._m_orphans = self.obs.metrics.counter("checkpoint.orphans_skipped")

    def save(
        self,
        model: Module,
        step: int,
        lr: float,
        extra: dict | None = None,
        optimizer: Optimizer | dict[str, np.ndarray] | None = None,
    ) -> CheckpointRecord:
        """Persist the model state at ``step`` trained with rate ``lr``.

        ``optimizer`` (an :class:`~repro.optim.Optimizer` or a raw
        ``state_dict()``) additionally writes ``step-XXXXXX.opt.npz``
        with the moment buffers, enabling bit-identical crash-resume.

        All files are written to temporaries and renamed into place —
        optimizer arrays, then sidecar, then parameters — so an
        interrupted save leaves either nothing visible or a complete
        checkpoint, never an orphan ``.npz`` (listing keys off the
        ``.json``-paired parameter file).
        """
        path = self.directory / f"step-{step:06d}.npz"
        meta_path = path.with_suffix(".json")
        opt_path = path.with_suffix(".opt.npz")
        tmp_npz = self.directory / f".step-{step:06d}.tmp.npz"
        tmp_json = self.directory / f".step-{step:06d}.tmp.json"
        tmp_opt = self.directory / f".step-{step:06d}.tmp.opt.npz"
        opt_state = optimizer.state_dict() if isinstance(optimizer, Optimizer) else optimizer
        try:
            np.savez(tmp_npz, **model.state_dict())
            meta = {"step": step, "lr": lr}
            if extra:
                meta.update(extra)
            tmp_json.write_text(json.dumps(meta))
            if opt_state is not None:
                np.savez(tmp_opt, **opt_state)
                os.replace(tmp_opt, opt_path)
            # Sidecar before parameters: a lone .json (or .opt.npz) is
            # invisible to checkpoints(), a lone .npz would be an orphan.
            os.replace(tmp_json, meta_path)
            os.replace(tmp_npz, path)
        finally:
            tmp_npz.unlink(missing_ok=True)
            tmp_json.unlink(missing_ok=True)
            tmp_opt.unlink(missing_ok=True)
        record = CheckpointRecord(
            step=step, lr=lr, path=path,
            extra=MappingProxyType(dict(extra) if extra else {}),
        )
        if self.keep is not None:
            self._prune()
        return record

    def _prune(self) -> None:
        records = self.checkpoints()
        for record in records[: max(0, len(records) - self.keep)]:
            record.path.unlink(missing_ok=True)
            record.meta_path.unlink(missing_ok=True)
            record.opt_path.unlink(missing_ok=True)

    def checkpoints(self) -> list[CheckpointRecord]:
        """All stored checkpoints, ordered by step.

        A ``.npz`` without its ``.json`` sidecar (partial write by an
        older/foreign writer) is skipped with a warning instead of
        failing the listing for the entire directory.
        """
        records = []
        for path in sorted(self.directory.glob("step-*.npz")):
            if path.name.endswith(".opt.npz"):
                continue  # optimizer-state sibling, not a checkpoint
            meta_path = path.with_suffix(".json")
            if not meta_path.exists():
                warnings.warn(
                    f"skipping orphan checkpoint {path} (no metadata sidecar)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._m_orphans.inc()
                self.obs.event("checkpoint.orphan_skipped", path=str(path))
                continue
            meta = json.loads(meta_path.read_text())
            extra = {k: v for k, v in meta.items() if k not in ("step", "lr")}
            records.append(
                CheckpointRecord(
                    step=int(meta["step"]),
                    lr=float(meta["lr"]),
                    path=path,
                    extra=MappingProxyType(extra),
                )
            )
        records.sort(key=lambda r: r.step)
        return records

    def latest(self) -> CheckpointRecord | None:
        records = self.checkpoints()
        return records[-1] if records else None

    @staticmethod
    def load_state(record: CheckpointRecord) -> dict[str, np.ndarray]:
        """Load the parameter arrays of a checkpoint."""
        if not record.path.exists():
            raise CheckpointError(f"checkpoint file missing: {record.path}")
        with np.load(record.path) as data:
            return {key: data[key] for key in data.files}

    @staticmethod
    def load_optimizer_state(record: CheckpointRecord) -> dict[str, np.ndarray] | None:
        """The checkpoint's optimizer arrays, or ``None`` for param-only saves."""
        if not record.opt_path.exists():
            return None
        with np.load(record.opt_path) as data:
            return {key: data[key] for key in data.files}

    @staticmethod
    def restore(model: Module, record: CheckpointRecord) -> None:
        """Load a checkpoint's parameters into ``model`` in place."""
        model.load_state_dict(CheckpointManager.load_state(record))
