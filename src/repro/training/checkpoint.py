"""Checkpoint persistence.

TracInCP / TracSeq replay training through stored checkpoints, so each
checkpoint records both the parameter state (``.npz``) and the learning
rate in effect (``.json`` sidecar) — the step size :math:`\\eta_i` in
Eq. 1 of the paper.

Writes are atomic: both files are staged under temporary names and
renamed into place, metadata sidecar first.  A crash mid-save therefore
never leaves a ``.npz`` without its sidecar, and :meth:`checkpoints`
tolerates (skips, with a warning) orphans left behind by older writers
instead of failing the whole directory listing.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.nn.module import Module
from repro.obs import Observability, get_observability


@dataclass(frozen=True)
class CheckpointRecord:
    """Metadata for one stored checkpoint."""

    step: int
    lr: float
    path: Path

    @property
    def meta_path(self) -> Path:
        return self.path.with_suffix(".json")


class CheckpointManager:
    """Save/load model checkpoints in a directory.

    File layout: ``step-000042.npz`` (parameters) plus
    ``step-000042.json`` (step, learning rate, extra metadata).
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int | None = None,
        obs: Observability | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if keep is not None and keep <= 0:
            raise CheckpointError(f"keep must be positive or None, got {keep}")
        self.keep = keep
        self.obs = obs or get_observability()
        self._m_orphans = self.obs.metrics.counter("checkpoint.orphans_skipped")

    def save(self, model: Module, step: int, lr: float, extra: dict | None = None) -> CheckpointRecord:
        """Persist the model state at ``step`` trained with rate ``lr``.

        Both files are written to temporaries and renamed into place —
        sidecar first, so an interrupted save leaves either nothing
        visible or a complete checkpoint, never an orphan ``.npz``.
        """
        path = self.directory / f"step-{step:06d}.npz"
        meta_path = path.with_suffix(".json")
        tmp_npz = self.directory / f".step-{step:06d}.tmp.npz"
        tmp_json = self.directory / f".step-{step:06d}.tmp.json"
        try:
            np.savez(tmp_npz, **model.state_dict())
            meta = {"step": step, "lr": lr}
            if extra:
                meta.update(extra)
            tmp_json.write_text(json.dumps(meta))
            # Sidecar first: a lone .json is invisible to checkpoints(),
            # a lone .npz would be an orphan.
            os.replace(tmp_json, meta_path)
            os.replace(tmp_npz, path)
        finally:
            tmp_npz.unlink(missing_ok=True)
            tmp_json.unlink(missing_ok=True)
        record = CheckpointRecord(step=step, lr=lr, path=path)
        if self.keep is not None:
            self._prune()
        return record

    def _prune(self) -> None:
        records = self.checkpoints()
        for record in records[: max(0, len(records) - self.keep)]:
            record.path.unlink(missing_ok=True)
            record.meta_path.unlink(missing_ok=True)

    def checkpoints(self) -> list[CheckpointRecord]:
        """All stored checkpoints, ordered by step.

        A ``.npz`` without its ``.json`` sidecar (partial write by an
        older/foreign writer) is skipped with a warning instead of
        failing the listing for the entire directory.
        """
        records = []
        for path in sorted(self.directory.glob("step-*.npz")):
            meta_path = path.with_suffix(".json")
            if not meta_path.exists():
                warnings.warn(
                    f"skipping orphan checkpoint {path} (no metadata sidecar)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._m_orphans.inc()
                self.obs.event("checkpoint.orphan_skipped", path=str(path))
                continue
            meta = json.loads(meta_path.read_text())
            records.append(CheckpointRecord(step=int(meta["step"]), lr=float(meta["lr"]), path=path))
        records.sort(key=lambda r: r.step)
        return records

    def latest(self) -> CheckpointRecord | None:
        records = self.checkpoints()
        return records[-1] if records else None

    @staticmethod
    def load_state(record: CheckpointRecord) -> dict[str, np.ndarray]:
        """Load the parameter arrays of a checkpoint."""
        if not record.path.exists():
            raise CheckpointError(f"checkpoint file missing: {record.path}")
        with np.load(record.path) as data:
            return {key: data[key] for key in data.files}

    @staticmethod
    def restore(model: Module, record: CheckpointRecord) -> None:
        """Load a checkpoint's parameters into ``model`` in place."""
        model.load_state_dict(CheckpointManager.load_state(record))
