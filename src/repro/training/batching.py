"""Padding, collation and batch iteration for token sequences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import DataError
from repro.tensor.random import default_rng

IGNORE_INDEX = -100


@dataclass
class TokenBatch:
    """A right-padded batch: ``input_ids`` and ``labels`` of shape (B, T)."""

    input_ids: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        if self.input_ids.shape != self.labels.shape:
            raise DataError(
                f"input_ids {self.input_ids.shape} and labels {self.labels.shape} differ"
            )

    def __len__(self) -> int:
        return self.input_ids.shape[0]


def collate(
    examples: Sequence[tuple[list[int], list[int]]],
    pad_id: int = 0,
    max_len: int | None = None,
) -> TokenBatch:
    """Right-pad a list of ``(input_ids, labels)`` pairs into a batch.

    Padding positions get ``pad_id`` in inputs and ``IGNORE_INDEX`` in
    labels so they never contribute to the loss.  Sequences longer than
    ``max_len`` are truncated on the right.
    """
    if not examples:
        raise DataError("collate() received no examples")
    if max_len is not None:
        examples = [(ids[:max_len], lbl[:max_len]) for ids, lbl in examples]
    width = max(len(ids) for ids, _ in examples)
    batch = len(examples)
    input_ids = np.full((batch, width), pad_id, dtype=np.int64)
    labels = np.full((batch, width), IGNORE_INDEX, dtype=np.int64)
    for row, (ids, lbl) in enumerate(examples):
        if len(ids) != len(lbl):
            raise DataError(f"example {row}: input length {len(ids)} != label length {len(lbl)}")
        input_ids[row, : len(ids)] = ids
        labels[row, : len(lbl)] = lbl
    return TokenBatch(input_ids, labels)


def iter_batches(
    examples: Sequence[tuple[list[int], list[int]]],
    batch_size: int,
    pad_id: int = 0,
    max_len: int | None = None,
    shuffle: bool = True,
    rng=None,
    drop_last: bool = False,
) -> Iterator[TokenBatch]:
    """Yield :class:`TokenBatch` objects over ``examples``."""
    if batch_size <= 0:
        raise DataError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(len(examples))
    if shuffle:
        default_rng(rng).shuffle(order)
    for start in range(0, len(order), batch_size):
        index = order[start : start + batch_size]
        if drop_last and len(index) < batch_size:
            break
        yield collate([examples[i] for i in index], pad_id=pad_id, max_len=max_len)
