"""Supervised fine-tuning loop with gradient accumulation and checkpoints.

Mirrors the paper's training configuration (Table 3): AdamW, cosine-decay
learning rate, batch size with gradient accumulation, periodic
checkpoints consumed later by TracInCP / TracSeq.

Checkpoints capture the **full training state** — model parameters,
optimizer moments (``.opt.npz``), the LR-schedule position and the
data-order RNG state at the start of the current epoch — so
:meth:`Trainer.resume` continues a crashed run *bit-identically*: the
resumed run's final weights equal an uninterrupted run's, moment decay,
bias correction, shuffle order and all (pinned by the kill-and-resume
chaos test in ``tests/test_resilience.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, GradientError
from repro.nn.transformer import MistralTiny
from repro.obs import Observability, get_observability
from repro.optim.clip import clip_grad_norm
from repro.optim.optimizer import Optimizer
from repro.optim.schedule import ConstantLR, LRSchedule
from repro.resilience.faults import fault_point
from repro.training.batching import iter_batches
from repro.training.callbacks import Callback, History, MetricsLogger, StepLog
from repro.training.checkpoint import CheckpointManager

TokenExample = tuple[list[int], list[int]]


@dataclass(frozen=True)
class TrainingConfig:
    """Loop hyperparameters.

    ``batch_size`` is the *effective* batch; with ``grad_accum_steps > 1``
    it is split into that many micro-batches (paper: batch 32, grad
    accumulation 4).
    """

    epochs: int = 1
    batch_size: int = 8
    grad_accum_steps: int = 1
    max_steps: int | None = None
    clip_norm: float | None = 1.0
    checkpoint_every: int | None = None
    pad_id: int = 0
    max_seq_len: int | None = None
    shuffle: bool = True
    seed: int = 0
    # Fail loudly on NaN/Inf losses or gradients instead of silently
    # corrupting the weights (and every checkpoint after them).
    detect_anomalies: bool = True

    def __post_init__(self):
        if self.epochs <= 0:
            raise ConfigError("epochs must be positive")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if self.grad_accum_steps <= 0:
            raise ConfigError("grad_accum_steps must be positive")
        if self.batch_size % self.grad_accum_steps != 0:
            raise ConfigError(
                f"batch_size {self.batch_size} must be divisible by "
                f"grad_accum_steps {self.grad_accum_steps}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ConfigError("checkpoint_every must be positive or None")


class Trainer:
    """Runs supervised fine-tuning over tokenized instruction examples."""

    def __init__(
        self,
        model: MistralTiny,
        optimizer: Optimizer,
        config: TrainingConfig | None = None,
        schedule: LRSchedule | None = None,
        checkpoint_manager: CheckpointManager | None = None,
        callbacks: Sequence[Callback] = (),
        obs: Observability | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.model = model
        self.optimizer = optimizer
        self.config = config or TrainingConfig()
        self.schedule = schedule or ConstantLR(optimizer.lr)
        self.checkpoints = checkpoint_manager
        self.history = History()
        self.obs = obs or get_observability()
        self._clock = clock
        # Per-step timing, tokens/sec and the loss gauge publish through
        # an auto-installed MetricsLogger wired to this trainer's hub.
        self.callbacks: list[Callback] = [self.history, MetricsLogger(self.obs), *callbacks]
        self.global_step = 0
        # Position within the epoch loop, captured into checkpoint
        # metadata for exact resume.
        self._epoch = 0
        self._micro_consumed = 0
        self._epoch_rng_state: dict | None = None
        self._resume_state: dict | None = None

    def resume(self) -> int:
        """Restore the latest checkpoint and continue from its step.

        Returns the restored step (0 when no checkpoint exists).
        Restores model parameters, optimizer moments (when the
        checkpoint has an ``.opt.npz``), the LR-schedule position
        (``global_step``) and — via metadata the trainer wrote at save
        time — the epoch, the number of micro-batches already consumed
        in it, and the shuffle RNG state at the epoch's start.  A
        subsequent :meth:`train` call with the original examples then
        replays the exact uninterrupted trajectory: same batches, same
        order, same moments, bit-identical final weights.

        Checkpoints from older writers (parameters only, no trainer
        metadata) still resume, but restart the optimizer moments and
        the data order — the pre-resilience behavior.
        """
        if self.checkpoints is None:
            raise ConfigError("resume() requires a checkpoint manager")
        record = self.checkpoints.latest()
        if record is None:
            return 0
        CheckpointManager.restore(self.model, record)
        opt_state = CheckpointManager.load_optimizer_state(record)
        if opt_state is not None:
            self.optimizer.load_state_dict(opt_state)
        self.global_step = record.step
        trainer_meta = record.extra.get("trainer")
        self._resume_state = dict(trainer_meta) if trainer_meta else None
        return record.step

    def _run_micro_batch(self, batch) -> float:
        loss = self.model.loss(batch.input_ids, batch.labels)
        value = loss.item()
        if self.config.detect_anomalies and not np.isfinite(value):
            raise GradientError(
                f"non-finite loss ({value}) at step {self.global_step}; "
                "lower the learning rate or enable gradient clipping"
            )
        scaled = loss * (1.0 / self.config.grad_accum_steps)
        scaled.backward()
        return value

    def train(self, examples: Sequence[TokenExample]) -> History:
        """Train over ``examples`` (token id / label pairs); returns history.

        After :meth:`resume` restored a mid-run checkpoint, this picks
        up exactly where the crashed run left off: the shuffle RNG is
        rewound to the interrupted epoch's start, the epoch's order is
        re-derived, and the micro-batches the crashed run already
        consumed are skipped without touching the weights.
        """
        if not examples:
            raise ConfigError("train() received no examples")
        cfg = self.config
        micro = cfg.batch_size // cfg.grad_accum_steps
        rng = np.random.default_rng(cfg.seed)
        max_len = cfg.max_seq_len or self.model.config.max_seq_len
        stop = False

        start_epoch = 0
        skip_micro = 0
        resume = self._resume_state
        self._resume_state = None
        if resume is not None:
            if resume.get("rng_state") is not None:
                rng.bit_generator.state = resume["rng_state"]
            start_epoch = int(resume.get("epoch", 0))
            skip_micro = int(resume.get("micro_consumed", 0))

        self._epoch = start_epoch
        self._micro_consumed = 0
        self._epoch_rng_state = rng.bit_generator.state

        # Checkpoint 0 captures the initial parameters so influence replay
        # can include the pre-training state.
        if self.checkpoints is not None and self.global_step == 0:
            self._save_checkpoint(step=0, lr=self.schedule.lr_at(0))

        for epoch in range(start_epoch, cfg.epochs):
            self._epoch = epoch
            self._micro_consumed = 0
            # Captured *before* the epoch's shuffle draws, so a resumed
            # run can rewind and re-derive the identical data order.
            self._epoch_rng_state = rng.bit_generator.state
            epoch_losses: list[float] = []
            micro_iter = iter_batches(
                examples,
                batch_size=micro,
                pad_id=cfg.pad_id,
                max_len=max_len,
                shuffle=cfg.shuffle,
                rng=rng,
            )
            pending: list = []
            for batch in micro_iter:
                if skip_micro > 0:
                    # Already consumed by the crashed run before its
                    # last checkpoint; weights must not see it again.
                    skip_micro -= 1
                    self._micro_consumed += 1
                    continue
                pending.append(batch)
                self._micro_consumed += 1
                if len(pending) < cfg.grad_accum_steps:
                    continue
                loss = self._step(pending)
                pending = []
                epoch_losses.append(loss)
                if cfg.max_steps is not None and self.global_step >= cfg.max_steps:
                    stop = True
                if any(cb.should_stop() for cb in self.callbacks):
                    stop = True
                if stop:
                    break
            if pending and not stop:
                epoch_losses.append(self._step(pending))
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            for cb in self.callbacks:
                cb.on_epoch_end(epoch, mean_loss)
            if stop or any(cb.should_stop() for cb in self.callbacks):
                break
        return self.history

    def _save_checkpoint(self, step: int, lr: float) -> None:
        """Full-state checkpoint: parameters, moments, loop position."""
        assert self.checkpoints is not None
        self.checkpoints.save(
            self.model,
            step=step,
            lr=lr,
            extra={
                "trainer": {
                    "epoch": self._epoch,
                    "micro_consumed": self._micro_consumed,
                    "rng_state": self._epoch_rng_state,
                }
            },
            optimizer=self.optimizer,
        )
        # Chaos tests arm this to kill the run right after checkpoint k.
        fault_point("training.checkpoint_saved", step=step)

    def _step(self, micro_batches) -> float:
        started = self._clock()
        tokens = int(sum(batch.input_ids.size for batch in micro_batches))
        fault_point("training.step", step=self.global_step + 1)
        with self.obs.span(
            "training.step", step=self.global_step + 1, tokens=tokens
        ):
            lr = self.schedule.lr_at(self.global_step)
            self.optimizer.lr = lr
            self.optimizer.zero_grad()
            losses = [self._run_micro_batch(batch) for batch in micro_batches]
            if self.config.clip_norm is not None:
                grad_norm = clip_grad_norm(self.optimizer.params, self.config.clip_norm)
            else:
                from repro.optim.clip import global_grad_norm

                grad_norm = global_grad_norm(self.optimizer.params)
            if self.config.detect_anomalies and not np.isfinite(grad_norm):
                raise GradientError(
                    f"non-finite gradient norm at step {self.global_step}; "
                    "check inputs and learning rate"
                )
            self.optimizer.step()
            self.model.bump_weight_version()
        self.global_step += 1
        loss = float(np.mean(losses))
        log = StepLog(
            step=self.global_step,
            loss=loss,
            lr=lr,
            grad_norm=grad_norm,
            step_s=max(0.0, self._clock() - started),
            tokens=tokens,
        )
        for cb in self.callbacks:
            cb.on_step(log)
        if (
            self.checkpoints is not None
            and self.config.checkpoint_every is not None
            and self.global_step % self.config.checkpoint_every == 0
        ):
            self._save_checkpoint(step=self.global_step, lr=lr)
        return loss
