"""Bootstrap confidence intervals for evaluation metrics.

At laptop-scale test sets (tens to hundreds of samples) point metrics
are noisy; benchmark claims should come with intervals.  The resampling
is seeded and metric-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import EvaluationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile-bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_metric(
    metric: Callable[[Sequence[int], Sequence], float],
    y_true: Sequence[int],
    y_pred: Sequence,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap of ``metric(y_true, y_pred)``.

    Resamples (label, prediction) pairs with replacement.  Resamples on
    which the metric is undefined (e.g. KS with a single class present)
    are skipped; if fewer than half the resamples survive, an error is
    raised rather than returning a misleading interval.
    """
    if len(y_true) != len(y_pred):
        raise EvaluationError(f"{len(y_true)} labels but {len(y_pred)} predictions")
    if len(y_true) == 0:
        raise EvaluationError("empty inputs")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples <= 0:
        raise EvaluationError("n_resamples must be positive")

    y_true = list(y_true)
    y_pred = list(y_pred)
    point = metric(y_true, y_pred)
    rng = np.random.default_rng(seed)
    values = []
    for _ in range(n_resamples):
        idx = rng.integers(0, len(y_true), size=len(y_true))
        try:
            values.append(metric([y_true[i] for i in idx], [y_pred[i] for i in idx]))
        except EvaluationError:
            continue
    if len(values) < n_resamples / 2:
        raise EvaluationError(
            f"metric undefined on {n_resamples - len(values)}/{n_resamples} resamples"
        )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [alpha, 1.0 - alpha])
    return ConfidenceInterval(point=float(point), low=float(low), high=float(high), confidence=confidence)
