"""Evaluation: metrics, parsing, harness, CALM benchmark, reporting."""

from repro.eval.calibration import (
    PlattCalibrator,
    brier_score,
    expected_calibration_error,
    hallucination_rate,
)
from repro.eval.bootstrap import ConfidenceInterval, bootstrap_metric
from repro.eval.calm import CalmBenchmark, CalmTask
from repro.eval.fairness import FairnessReport, fairness_report
from repro.eval.forgetting import ForgettingResult, measure_forgetting
from repro.eval.generative import GenerativeEvalResult, evaluate_generative
from repro.eval.harness import (
    CreditModel,
    EvalResult,
    EvalSample,
    Prediction,
    evaluate,
    make_eval_samples,
)
from repro.eval.metrics import (
    accuracy,
    confusion_matrix,
    f1_binary,
    ks_statistic,
    miss_rate,
    roc_auc,
    weighted_f1,
)
from repro.eval.parsing import parse_answer, parse_choice
from repro.eval.report import format_table

__all__ = [
    "accuracy",
    "f1_binary",
    "weighted_f1",
    "miss_rate",
    "ks_statistic",
    "roc_auc",
    "confusion_matrix",
    "parse_answer",
    "parse_choice",
    "CreditModel",
    "EvalSample",
    "Prediction",
    "EvalResult",
    "evaluate",
    "make_eval_samples",
    "CalmBenchmark",
    "CalmTask",
    "format_table",
    "brier_score",
    "expected_calibration_error",
    "hallucination_rate",
    "PlattCalibrator",
    "GenerativeEvalResult",
    "evaluate_generative",
    "ConfidenceInterval",
    "bootstrap_metric",
    "ForgettingResult",
    "measure_forgetting",
    "FairnessReport",
    "fairness_report",
]
