"""Group-fairness metrics for credit decisions.

The paper's related-work section flags "biases inherent in training data
that could affect financial decision-making" and calls for bias
mitigation in deployed financial LLMs.  These are the three standard
group metrics regulators and fair-lending reviews use:

* **demographic parity difference** — gap in approval rates between the
  two groups (0 is parity);
* **equalized odds difference** — the larger of the TPR and FPR gaps;
* **disparate impact ratio** — min over groups of approval-rate ratios;
  the US "four-fifths rule" flags values below 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError


@dataclass(frozen=True)
class FairnessReport:
    """Group metrics for a binary decision over a binary protected attribute.

    Rates over unsupported strata (a group with no positives has no TPR;
    no negatives, no FPR) are ``nan``, and a ``nan`` rate propagates into
    ``equalized_odds_difference`` — a missing stratum must surface as
    "unknown", not masquerade as a perfect ``0.0`` gap.
    """

    positive_rate_a: float
    positive_rate_b: float
    demographic_parity_difference: float
    equalized_odds_difference: float
    disparate_impact_ratio: float
    tpr_a: float = float("nan")
    fpr_a: float = float("nan")
    tpr_b: float = float("nan")
    fpr_b: float = float("nan")

    def passes_four_fifths(self) -> bool:
        """The classic disparate-impact screen (ratio >= 0.8)."""
        return self.disparate_impact_ratio >= 0.8


def _rates(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[float, float]:
    """(TPR, FPR); ``nan`` where the group lacks positives/negatives."""
    pos = y_true == 1
    neg = ~pos
    tpr = float(y_pred[pos].mean()) if pos.any() else float("nan")
    fpr = float(y_pred[neg].mean()) if neg.any() else float("nan")
    return tpr, fpr


def fairness_report(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    group: Sequence[int],
) -> FairnessReport:
    """Compute group-fairness metrics.

    ``group`` is a binary protected attribute (0 = group A, 1 = group B);
    ``y_pred`` is the model's decision (1 = approve / positive outcome).
    Both groups must be present.
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    group = np.asarray(group, dtype=np.int64)
    if not (y_true.shape == y_pred.shape == group.shape):
        raise EvaluationError("y_true, y_pred and group must have the same shape")
    if y_true.size == 0:
        raise EvaluationError("empty inputs")
    for name, arr in (("y_true", y_true), ("y_pred", y_pred), ("group", group)):
        if not np.isin(arr, (0, 1)).all():
            raise EvaluationError(f"{name} must be binary 0/1")
    mask_a = group == 0
    mask_b = group == 1
    if not mask_a.any() or not mask_b.any():
        raise EvaluationError("both protected groups must be present")

    rate_a = float(y_pred[mask_a].mean())
    rate_b = float(y_pred[mask_b].mean())
    tpr_a, fpr_a = _rates(y_true[mask_a], y_pred[mask_a])
    tpr_b, fpr_b = _rates(y_true[mask_b], y_pred[mask_b])

    high = max(rate_a, rate_b)
    ratio = 1.0 if high == 0 else min(rate_a, rate_b) / high

    # Python's max() is order-dependent under nan; propagate explicitly so
    # a missing stratum always yields an unknown (nan) odds gap.
    gaps = (abs(tpr_a - tpr_b), abs(fpr_a - fpr_b))
    odds_gap = float("nan") if any(np.isnan(g) for g in gaps) else max(gaps)

    return FairnessReport(
        positive_rate_a=rate_a,
        positive_rate_b=rate_b,
        demographic_parity_difference=abs(rate_a - rate_b),
        equalized_odds_difference=odds_gap,
        disparate_impact_ratio=ratio,
        tpr_a=tpr_a,
        fpr_a=fpr_a,
        tpr_b=tpr_b,
        fpr_b=fpr_b,
    )
