"""The CALM-style benchmark suite (Feng et al., 2023) used in Table 2.

Five datasets spanning credit scoring, fraud detection and claim
analysis.  Each task exposes a train split (for fine-tuning / fitting)
and verbalized eval samples; a *model factory* receives the task and
returns a fitted :class:`~repro.eval.harness.CreditModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import EvaluationError
from repro.datasets.base import TabularDataset
from repro.datasets.registry import CALM_DATASETS, load_dataset
from repro.data.instruct import InstructExample, build_classification_examples
from repro.eval.harness import CreditModel, EvalResult, EvalSample, evaluate, make_eval_samples
from repro.eval.report import format_table


@dataclass
class CalmTask:
    """One benchmark dataset with its splits and prompt views."""

    name: str
    train: TabularDataset
    test: TabularDataset
    train_examples: list[InstructExample]
    eval_samples: list[EvalSample]


ModelFactory = Callable[[CalmTask], CreditModel]


class CalmBenchmark:
    """Builds the five tasks and evaluates model factories over them."""

    def __init__(
        self,
        sizes: Mapping[str, int] | None = None,
        seed: int = 0,
        test_fraction: float = 0.2,
        datasets: Sequence[str] = CALM_DATASETS,
    ):
        if not 0.0 < test_fraction < 1.0:
            raise EvaluationError(f"test_fraction must be in (0, 1), got {test_fraction}")
        self.seed = seed
        self.tasks: dict[str, CalmTask] = {}
        sizes = dict(sizes or {})
        for name in datasets:
            kwargs = {"seed": seed + hash(name) % 1000}
            if name in sizes:
                kwargs["n"] = sizes[name]
            full = load_dataset(name, **kwargs)
            train, test = full.split(test_fraction=test_fraction, seed=seed)
            self.tasks[name] = CalmTask(
                name=name,
                train=train,
                test=test,
                train_examples=build_classification_examples(train),
                eval_samples=make_eval_samples(test),
            )

    def run(self, factories: Mapping[str, ModelFactory]) -> list[EvalResult]:
        """Fit and evaluate each factory on each task.

        Returns one :class:`EvalResult` per (model, dataset) pair, in
        dataset-major order matching the paper's Table 2.
        """
        if not factories:
            raise EvaluationError("run() needs at least one model factory")
        results = []
        for task in self.tasks.values():
            for model_name, factory in factories.items():
                model = factory(task)
                model.name = model_name
                results.append(evaluate(model, task.eval_samples, dataset_name=task.name))
        return results

    @staticmethod
    def table(results: Sequence[EvalResult], title: str = "Table 2 (reproduced)") -> str:
        """Render results in the paper's layout: dataset x metric rows, model columns."""
        if not results:
            raise EvaluationError("table() received no results")
        models = list(dict.fromkeys(r.model for r in results))
        datasets = list(dict.fromkeys(r.dataset for r in results))
        index = {(r.dataset, r.model): r for r in results}
        rows = []
        for dataset in datasets:
            for metric in ("acc", "f1", "miss"):
                row = [dataset, metric.capitalize()]
                for model in models:
                    result = index.get((dataset, model))
                    if result is None:
                        row.append(None)
                        continue
                    value = {"acc": result.accuracy, "f1": result.f1, "miss": result.miss}[metric]
                    row.append(value)
                rows.append(row)
        return format_table(["Dataset", "Metric", *models], rows, title=title)
