"""Catastrophic-forgetting measurement (the paper's motivation #2).

The paper claims TracSeq-style data selection "preserves long-term
knowledge and reduces catastrophic forgetting".  This module provides
the standard sequential-fine-tuning probe:

1. fine-tune on task A, evaluate on A        -> ``before``
2. continue fine-tuning on task B (optionally replaying a fraction of
   A's data into B's batches), evaluate on A -> ``after``
3. ``forgetting = before − after`` (accuracy drop on A)

The 70/30 hybrid mix acts as the replay mechanism: mixing retained
high-influence A-samples into B's training counters the drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.data.instruct import InstructExample
from repro.eval.harness import EvalSample, evaluate


@dataclass(frozen=True)
class ForgettingResult:
    """Accuracy on task A before/after fine-tuning on task B."""

    before_accuracy: float
    after_accuracy: float
    task_b_accuracy: float
    replay_fraction: float

    @property
    def forgetting(self) -> float:
        """Accuracy drop on task A (positive = forgot)."""
        return self.before_accuracy - self.after_accuracy


def _to_samples(examples: Sequence[InstructExample]) -> list[EvalSample]:
    answers = sorted({e.answer for e in examples})
    if len(answers) != 2:
        raise EvaluationError(f"binary task expected, found answers {answers}")
    positive = {e.answer for e in examples if e.label == 1}
    if len(positive) != 1:
        raise EvaluationError("could not infer positive answer text")
    pos = positive.pop()
    neg = next(a for a in answers if a != pos)
    return [
        EvalSample(prompt=e.prompt, label=e.label, positive_text=pos, negative_text=neg)
        for e in examples
    ]


def measure_forgetting(
    zigong,
    task_a_train: Sequence[InstructExample],
    task_a_test: Sequence[InstructExample],
    task_b_train: Sequence[InstructExample],
    task_b_test: Sequence[InstructExample],
    replay_fraction: float = 0.0,
    seed: int = 0,
) -> ForgettingResult:
    """Sequentially fine-tune ``zigong`` on A then B, probing A's accuracy.

    ``replay_fraction`` of task A's training set is mixed into the task-B
    fine-tune (0 = plain sequential training, the worst case).  The model
    is mutated in place; pass a fresh instance per measurement.
    """
    if not 0.0 <= replay_fraction <= 1.0:
        raise EvaluationError(f"replay_fraction must be in [0, 1], got {replay_fraction}")
    if not task_a_train or not task_b_train:
        raise EvaluationError("both tasks need training data")

    samples_a = _to_samples(task_a_test)
    samples_b = _to_samples(task_b_test)

    zigong.finetune(task_a_train)
    before = evaluate(zigong.classifier(), samples_a, "task_a").accuracy

    rng = np.random.default_rng(seed)
    n_replay = int(round(replay_fraction * len(task_a_train)))
    replay_idx = rng.choice(len(task_a_train), size=n_replay, replace=False) if n_replay else []
    phase_b = list(task_b_train) + [task_a_train[i] for i in replay_idx]

    zigong.finetune(phase_b)
    after = evaluate(zigong.classifier(), samples_a, "task_a").accuracy
    task_b = evaluate(zigong.classifier(), samples_b, "task_b").accuracy

    return ForgettingResult(
        before_accuracy=before,
        after_accuracy=after,
        task_b_accuracy=task_b,
        replay_fraction=replay_fraction,
    )
