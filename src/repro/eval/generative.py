"""Evaluation of generative multi-choice tasks (sentiment, income QA).

The binary harness in :mod:`repro.eval.harness` covers yes/no tasks;
this module evaluates tasks whose answer is one of N choice words,
reporting accuracy, miss rate and the per-class breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import EvaluationError
from repro.data.instruct import InstructExample
from repro.eval.parsing import parse_choice


@dataclass
class GenerativeEvalResult:
    """Rollup for one generative multi-choice evaluation."""

    n: int
    accuracy: float
    miss: float
    per_class_accuracy: dict[str, float] = field(default_factory=dict)
    confusion: dict[tuple[str, str], int] = field(default_factory=dict)

    def as_rows(self) -> list[list]:
        rows = [["overall", round(self.accuracy, 3), round(self.miss, 3)]]
        for cls, acc in self.per_class_accuracy.items():
            rows.append([cls, round(acc, 3), None])
        return rows


def evaluate_generative(
    generate_fn: Callable[[str], str],
    examples: Sequence[InstructExample],
    choices: tuple[str, ...],
    generate_batch_fn: Callable[[list[str]], list[str]] | None = None,
) -> GenerativeEvalResult:
    """Run ``generate_fn`` over every example and score parsed choices.

    ``generate_fn`` maps a prompt string to generated text; answers are
    parsed with :func:`~repro.eval.parsing.parse_choice`.  Misses count
    as incorrect for accuracy (and never as a confusion entry).

    ``generate_batch_fn`` (e.g. an
    :meth:`~repro.baselines.lm.LMClassifier.generate_answer_batch` bound
    method) generates every prompt in one batched decode loop instead of
    per-example calls; under greedy decoding the results — and therefore
    the metrics — are identical.
    """
    if not examples:
        raise EvaluationError("evaluate_generative() received no examples")
    if not choices:
        raise EvaluationError("choices must be non-empty")
    unknown = {e.answer for e in examples} - set(choices)
    if unknown:
        raise EvaluationError(f"example answers {sorted(unknown)} not in choices {choices}")

    if generate_batch_fn is not None:
        generations = generate_batch_fn([e.prompt for e in examples])
        if len(generations) != len(examples):
            raise EvaluationError(
                f"generate_batch_fn returned {len(generations)} texts "
                f"for {len(examples)} examples"
            )
    else:
        generations = [generate_fn(e.prompt) for e in examples]

    hits = misses = 0
    per_class: dict[str, list[int]] = {c: [0, 0] for c in choices}  # [hits, total]
    confusion: dict[tuple[str, str], int] = {}
    for example, generated in zip(examples, generations):
        choice = parse_choice(generated, choices)
        per_class[example.answer][1] += 1
        if choice is None:
            misses += 1
            continue
        confusion[(example.answer, choice)] = confusion.get((example.answer, choice), 0) + 1
        if choice == example.answer:
            hits += 1
            per_class[example.answer][0] += 1

    return GenerativeEvalResult(
        n=len(examples),
        accuracy=hits / len(examples),
        miss=misses / len(examples),
        per_class_accuracy={
            cls: (h / t if t else 0.0) for cls, (h, t) in per_class.items()
        },
        confusion=confusion,
    )
