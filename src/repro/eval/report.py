"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import Sequence

from repro.errors import EvaluationError


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Render an aligned monospace table.

    ``None`` cells render as ``-``; floats are shown with three decimals,
    matching the paper's tables.
    """
    if not headers:
        raise EvaluationError("format_table needs headers")

    def fmt(cell) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise EvaluationError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
