"""Calibration and hallucination metrics.

The paper motivates its data pruning as a *hallucination* mitigation.
For a yes/no credit model, the operational form of a hallucination is a
**confidently wrong** answer — a decision handed downstream with high
score but the wrong label.  This module quantifies that:

* ``brier_score`` — mean squared error of the probability forecast;
* ``expected_calibration_error`` — the standard binned |confidence −
  accuracy| gap;
* ``hallucination_rate`` — fraction of predictions that are wrong while
  the model's confidence exceeds a threshold.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EvaluationError


def _validate(y_true: Sequence[int], scores: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y_true, dtype=np.int64)
    s = np.asarray(scores, dtype=np.float64)
    if y.size == 0:
        raise EvaluationError("empty inputs")
    if y.shape != s.shape:
        raise EvaluationError(f"labels shape {y.shape} != scores shape {s.shape}")
    if not np.isin(y, (0, 1)).all():
        raise EvaluationError("labels must be binary 0/1")
    if (s < 0).any() or (s > 1).any():
        raise EvaluationError("scores must be probabilities in [0, 1]")
    return y, s


def brier_score(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Mean squared error of P(positive) forecasts (lower is better)."""
    y, s = _validate(y_true, scores)
    return float(((s - y) ** 2).mean())


def expected_calibration_error(
    y_true: Sequence[int], scores: Sequence[float], n_bins: int = 10
) -> float:
    """Binned ECE over P(positive) (lower is better).

    Bins are equal-width on [0, 1]; empty bins contribute nothing.
    """
    if n_bins <= 0:
        raise EvaluationError("n_bins must be positive")
    y, s = _validate(y_true, scores)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    # Right-closed bins; clip so score 1.0 lands in the last bin.
    which = np.clip(np.digitize(s, edges[1:-1], right=False), 0, n_bins - 1)
    ece = 0.0
    for b in range(n_bins):
        mask = which == b
        if not mask.any():
            continue
        confidence = s[mask].mean()
        accuracy = y[mask].mean()
        ece += mask.mean() * abs(confidence - accuracy)
    return float(ece)


class PlattCalibrator:
    """Post-hoc probability calibration (Platt scaling).

    Fits ``sigmoid(a * logit(p) + b)`` on validation scores so that
    overconfident models (the hallucination-prone regime) are pulled
    toward honest probabilities.  Fitted by gradient descent on the
    log loss; deterministic.
    """

    def __init__(self, lr: float = 0.1, epochs: int = 500):
        if lr <= 0 or epochs <= 0:
            raise EvaluationError("lr and epochs must be positive")
        self.lr = lr
        self.epochs = epochs
        self.a = 1.0
        self.b = 0.0
        self._fitted = False

    @staticmethod
    def _logit(p: np.ndarray) -> np.ndarray:
        p = np.clip(p, 1e-6, 1 - 1e-6)
        return np.log(p / (1 - p))

    def fit(self, y_true, scores) -> "PlattCalibrator":
        y, s = _validate(y_true, scores)
        z = self._logit(s)
        a, b = 1.0, 0.0
        n = y.size
        for _ in range(self.epochs):
            p = 1.0 / (1.0 + np.exp(-(a * z + b)))
            err = p - y
            grad_a = float((err * z).mean())
            grad_b = float(err.mean())
            a -= self.lr * grad_a
            b -= self.lr * grad_b
        self.a, self.b = a, b
        self._fitted = True
        return self

    def transform(self, scores) -> np.ndarray:
        """Calibrated probabilities for raw scores."""
        if not self._fitted:
            raise EvaluationError("PlattCalibrator.transform() called before fit()")
        s = np.asarray(scores, dtype=np.float64)
        if (s < 0).any() or (s > 1).any():
            raise EvaluationError("scores must be probabilities in [0, 1]")
        z = self._logit(s)
        return 1.0 / (1.0 + np.exp(-(self.a * z + self.b)))


def hallucination_rate(
    y_true: Sequence[int],
    predictions: Sequence[int | None],
    scores: Sequence[float],
    confidence: float = 0.8,
) -> float:
    """Fraction of answers that are *confidently wrong*.

    A prediction hallucinates when it disagrees with the label while the
    model's confidence in its own answer — ``score`` for a positive
    prediction, ``1 - score`` for a negative one — exceeds
    ``confidence``.  Missing predictions are not hallucinations (the
    model declined to answer); they are captured by the Miss metric.
    """
    if not 0.0 < confidence < 1.0:
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")
    y = np.asarray(y_true, dtype=np.int64)
    s = np.asarray(scores, dtype=np.float64)
    if y.size == 0:
        raise EvaluationError("empty inputs")
    if len(predictions) != y.size or s.size != y.size:
        raise EvaluationError("labels, predictions and scores must align")
    count = 0
    for label, pred, score in zip(y, predictions, s):
        if pred is None:
            continue
        own_confidence = score if pred == 1 else 1.0 - score
        if pred != label and own_confidence > confidence:
            count += 1
    return count / y.size
