"""Evaluation harness: model protocol, sample construction, metric rollup."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.datasets.base import TabularDataset
from repro.data.templates import CLASSIFICATION_TEMPLATE
from repro.eval.metrics import accuracy, ks_statistic, miss_rate, roc_auc, weighted_f1


@dataclass(frozen=True)
class EvalSample:
    """One benchmark item: a prompt, its gold label, and raw features.

    ``features`` lets expert-system baselines run on the same split the
    LMs see; LM models use only ``prompt``.
    """

    prompt: str
    label: int
    positive_text: str
    negative_text: str
    features: np.ndarray | None = None
    timestamp: float = 0.0


@dataclass(frozen=True)
class Prediction:
    """A model's output for one sample.

    ``label`` is None on a miss (unparseable generation); ``score`` is an
    optional continuous P(positive)-like value used for KS / AUC.
    """

    label: int | None
    score: float | None = None


class CreditModel(abc.ABC):
    """Anything that can answer benchmark prompts."""

    name: str = "model"

    @abc.abstractmethod
    def predict(self, sample: EvalSample) -> Prediction:
        """Predict one sample."""

    def predict_many(self, samples: Sequence[EvalSample]) -> list[Prediction]:
        """Predict a batch; defaults to a sequential loop.

        Models with a faster batched path should override this — the
        harness's :func:`evaluate` always goes through ``predict_many``,
        so an override (e.g. the batched decode in
        :class:`~repro.baselines.lm.LMClassifier`) speeds up every
        benchmark run.  Overrides must return one prediction per sample,
        in order, and match ``predict`` label-for-label.
        """
        return [self.predict(sample) for sample in samples]


@dataclass
class EvalResult:
    """Metric rollup for one (model, dataset) pair."""

    model: str
    dataset: str
    n: int
    accuracy: float
    f1: float
    miss: float
    ks: float | None = None
    auc: float | None = None
    extra: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "n": self.n,
            "acc": round(self.accuracy, 3),
            "f1": round(self.f1, 3),
            "miss": round(self.miss, 3),
            "ks": None if self.ks is None else round(self.ks, 3),
            "auc": None if self.auc is None else round(self.auc, 3),
        }


def make_eval_samples(dataset: TabularDataset) -> list[EvalSample]:
    """Verbalize a tabular dataset into benchmark samples."""
    samples = []
    for i in range(len(dataset)):
        prompt = CLASSIFICATION_TEMPLATE.format(
            sentence=dataset.row_text(i), question=dataset.question
        )
        samples.append(
            EvalSample(
                prompt=prompt,
                label=int(dataset.y[i]),
                positive_text=dataset.positive_text,
                negative_text=dataset.negative_text,
                features=dataset.X[i],
            )
        )
    return samples


def evaluate(model: CreditModel, samples: Sequence[EvalSample], dataset_name: str = "") -> EvalResult:
    """Run ``model`` over ``samples`` and compute the Table-2 metrics.

    KS and AUC are reported only when the model emits scores for every
    sample and both classes are present.
    """
    if not samples:
        raise EvaluationError("evaluate() received no samples")
    predictions = model.predict_many(samples)
    labels = [s.label for s in samples]
    pred_labels = [p.label for p in predictions]

    ks = auc = None
    extra: dict = {}
    scores = [p.score for p in predictions]
    if all(s is not None for s in scores):
        if 0 < sum(labels) < len(labels):
            ks = ks_statistic(labels, scores)
            auc = roc_auc(labels, scores)
        if all(0.0 <= s <= 1.0 for s in scores):
            from repro.eval.calibration import (
                brier_score,
                expected_calibration_error,
                hallucination_rate,
            )

            extra["brier"] = brier_score(labels, scores)
            extra["ece"] = expected_calibration_error(labels, scores)
            extra["hallucination"] = hallucination_rate(labels, pred_labels, scores)

    return EvalResult(
        model=model.name,
        dataset=dataset_name,
        n=len(samples),
        accuracy=accuracy(labels, pred_labels),
        f1=weighted_f1(labels, pred_labels),
        miss=miss_rate(pred_labels),
        ks=ks,
        auc=auc,
        extra=extra,
    )
