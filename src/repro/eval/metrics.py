"""Evaluation metrics: accuracy, F1, miss rate, KS, ROC-AUC.

Conventions follow the CALM benchmark the paper evaluates on:

* a *missed* prediction (the model's output could not be parsed into a
  valid answer) counts as incorrect for accuracy and as a negative
  prediction for F1;
* ``Miss`` itself is reported separately (smaller is better);
* the KS statistic — the financial risk-control industry's standard
  discrimination measure — is the maximum gap between the score CDFs of
  the two classes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EvaluationError


def _check_labels(y_true: np.ndarray) -> np.ndarray:
    y_true = np.asarray(y_true, dtype=np.int64)
    if y_true.size == 0:
        raise EvaluationError("empty label array")
    if not np.isin(y_true, (0, 1)).all():
        raise EvaluationError("labels must be binary 0/1")
    return y_true


def miss_rate(predictions: Sequence[int | None]) -> float:
    """Fraction of predictions that are missing (``None``)."""
    if not len(predictions):
        raise EvaluationError("empty prediction list")
    return sum(1 for p in predictions if p is None) / len(predictions)


def accuracy(y_true: Sequence[int], predictions: Sequence[int | None]) -> float:
    """Accuracy with missing predictions counted as incorrect."""
    y_true = _check_labels(y_true)
    if len(predictions) != y_true.shape[0]:
        raise EvaluationError(f"{len(predictions)} predictions for {y_true.shape[0]} labels")
    correct = sum(1 for t, p in zip(y_true, predictions) if p is not None and p == t)
    return correct / y_true.shape[0]


def f1_binary(y_true: Sequence[int], predictions: Sequence[int | None], positive: int = 1) -> float:
    """Binary F1 for the ``positive`` class; missing predictions count negative."""
    y_true = _check_labels(y_true)
    if len(predictions) != y_true.shape[0]:
        raise EvaluationError(f"{len(predictions)} predictions for {y_true.shape[0]} labels")
    tp = fp = fn = 0
    for t, p in zip(y_true, predictions):
        pred_pos = p is not None and p == positive
        true_pos = t == positive
        if pred_pos and true_pos:
            tp += 1
        elif pred_pos and not true_pos:
            fp += 1
        elif not pred_pos and true_pos:
            fn += 1
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def weighted_f1(y_true: Sequence[int], predictions: Sequence[int | None]) -> float:
    """Support-weighted average of per-class F1 (the CALM reporting style)."""
    y_true = _check_labels(y_true)
    total = y_true.shape[0]
    score = 0.0
    for cls in (0, 1):
        support = int((y_true == cls).sum())
        if support == 0:
            continue
        score += support / total * f1_binary(y_true, predictions, positive=cls)
    return score


def confusion_matrix(y_true: Sequence[int], predictions: Sequence[int | None]) -> np.ndarray:
    """2x2 matrix ``[[tn, fp], [fn, tp]]``; missing predictions count negative."""
    y_true = _check_labels(y_true)
    matrix = np.zeros((2, 2), dtype=np.int64)
    for t, p in zip(y_true, predictions):
        pred = 0 if p is None else int(p)
        matrix[int(t), pred] += 1
    return matrix


def ks_statistic(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Kolmogorov–Smirnov statistic between positive and negative scores.

    ``max_s |P(score <= s | y=1) - P(score <= s | y=0)|`` — equivalently
    the maximum of ``|TPR - FPR|`` over thresholds.
    """
    y_true = _check_labels(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape[0] != y_true.shape[0]:
        raise EvaluationError(f"{scores.shape[0]} scores for {y_true.shape[0]} labels")
    pos = np.sort(scores[y_true == 1])
    neg = np.sort(scores[y_true == 0])
    if pos.size == 0 or neg.size == 0:
        raise EvaluationError("KS needs both classes present")
    grid = np.unique(scores)
    cdf_pos = np.searchsorted(pos, grid, side="right") / pos.size
    cdf_neg = np.searchsorted(neg, grid, side="right") / neg.size
    return float(np.abs(cdf_pos - cdf_neg).max())


def roc_auc(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Rank-based ROC-AUC (ties share rank)."""
    y_true = _check_labels(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape[0] != y_true.shape[0]:
        raise EvaluationError(f"{scores.shape[0]} scores for {y_true.shape[0]} labels")
    n_pos = int(y_true.sum())
    n_neg = y_true.shape[0] - n_pos
    if n_pos == 0 or n_neg == 0:
        raise EvaluationError("AUC needs both classes present")
    order = np.argsort(scores)
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    rank = 1
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        mean_rank = (rank + rank + (j - i)) / 2.0
        ranks[order[i : j + 1]] = mean_rank
        rank += j - i + 1
        i = j + 1
    sum_pos = ranks[y_true == 1].sum()
    return float((sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
