"""Parsing generated text into discrete answers.

The Miss metric in Table 2 counts generations that contain no valid
answer (or contradict themselves); this module implements that parse.
"""

from __future__ import annotations

from repro.errors import EvaluationError


def parse_answer(
    text: str,
    positive_text: str,
    negative_text: str,
) -> int | None:
    """Map generated ``text`` to 1 / 0 / None (miss).

    The first token that matches either answer wins; if neither answer
    appears the generation is a miss.  Matching is case-insensitive and
    token-based so ``"yes definitely"`` parses while ``"eyesore"`` does
    not.
    """
    if positive_text == negative_text:
        raise EvaluationError("positive and negative answers must differ")
    positive = positive_text.lower()
    negative = negative_text.lower()
    for token in text.lower().split():
        cleaned = token.strip(".,!?;:")
        if cleaned == positive:
            return 1
        if cleaned == negative:
            return 0
    return None


def parse_choice(text: str, choices: tuple[str, ...]) -> str | None:
    """First matching choice token in a generation, else None (miss)."""
    if not choices:
        raise EvaluationError("parse_choice needs at least one choice")
    lowered = {c.lower(): c for c in choices}
    for token in text.lower().split():
        cleaned = token.strip(".,!?;:")
        if cleaned in lowered:
            return lowered[cleaned]
    return None
