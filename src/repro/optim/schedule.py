"""Learning-rate schedules.

The paper trains with cosine decay (Table 3); warmup and constant
schedules are provided for ablations and the trainer's default.
"""

from __future__ import annotations

import abc
import math

from repro.errors import ConfigError


class LRSchedule(abc.ABC):
    """Maps a 0-based optimizer step to a learning rate."""

    @abc.abstractmethod
    def lr_at(self, step: int) -> float:
        """Learning rate to use for optimizer step ``step``."""

    def __call__(self, step: int) -> float:
        return self.lr_at(step)


class ConstantLR(LRSchedule):
    """A fixed learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ConfigError(f"lr must be positive, got {lr}")
        self.lr = lr

    def lr_at(self, step: int) -> float:
        return self.lr


class CosineDecayLR(LRSchedule):
    """Linear warmup followed by cosine decay to ``min_lr``.

    After ``total_steps`` the schedule stays at ``min_lr``.
    """

    def __init__(self, base_lr: float, total_steps: int, warmup_steps: int = 0, min_lr: float = 0.0):
        if base_lr <= 0:
            raise ConfigError(f"base_lr must be positive, got {base_lr}")
        if total_steps <= 0:
            raise ConfigError(f"total_steps must be positive, got {total_steps}")
        if not 0 <= warmup_steps < total_steps:
            raise ConfigError(
                f"warmup_steps must be in [0, total_steps), got {warmup_steps}/{total_steps}"
            )
        if not 0 <= min_lr <= base_lr:
            raise ConfigError("min_lr must be in [0, base_lr]")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / max(self.total_steps - self.warmup_steps, 1)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class LinearDecayLR(LRSchedule):
    """Linear decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, base_lr: float, total_steps: int, min_lr: float = 0.0):
        if base_lr <= 0 or total_steps <= 0:
            raise ConfigError("base_lr and total_steps must be positive")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        return self.base_lr + (self.min_lr - self.base_lr) * progress
