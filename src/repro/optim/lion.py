"""Lion optimizer (Chen et al., 2023): sign-of-momentum updates.

A memory-light alternative to AdamW (one moment buffer instead of two)
offered for ablations; the paper's recipe remains AdamW.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Lion(Optimizer):
    """EvoLved sign momentum: ``w -= lr * sign(b1*m + (1-b1)*g)``."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.99),
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m}

    def step(self) -> None:
        self.step_count += 1
        for p, m in zip(self.params, self._m):
            if p.grad is None:
                continue
            g = p.grad
            update = np.sign(self.beta1 * m + (1.0 - self.beta1) * g)
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= (self.lr * update).astype(np.float32)
            m *= self.beta2
            m += (1.0 - self.beta2) * g
