"""Optimizers, LR schedules and gradient utilities."""

from repro.optim.optimizer import Optimizer
from repro.optim.adamw import AdamW
from repro.optim.lion import Lion
from repro.optim.sgd import SGD
from repro.optim.schedule import ConstantLR, CosineDecayLR, LinearDecayLR, LRSchedule
from repro.optim.clip import clip_grad_norm, global_grad_norm

__all__ = [
    "Optimizer",
    "AdamW",
    "SGD",
    "Lion",
    "LRSchedule",
    "ConstantLR",
    "CosineDecayLR",
    "LinearDecayLR",
    "clip_grad_norm",
    "global_grad_norm",
]
