"""Optimizer base class."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CheckpointError, ConfigError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list.

    Only parameters with ``requires_grad=True`` are updated, so a model
    with frozen base weights and LoRA adapters can hand its full
    parameter list to the optimizer.

    Optimizers are checkpointable: :meth:`state_dict` captures the step
    count plus every moment buffer a subclass reports through
    :meth:`_state_buffers`, and :meth:`load_state_dict` restores them
    in place.  Restoring makes a resumed run *bit-identical* to an
    uninterrupted one — AdamW's bias correction and moment decay depend
    on both the buffers and ``step_count``.
    """

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ConfigError("optimizer received no trainable parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointable state ------------------------------------------

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        """Per-parameter moment buffers, keyed by buffer name.

        Subclasses with state (AdamW's ``m``/``v``, SGD's velocity,
        Lion's momentum) override this; each list must be parallel to
        ``self.params``.
        """
        return {}

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat array mapping suitable for ``np.savez``."""
        state: dict[str, np.ndarray] = {
            "step_count": np.asarray(self.step_count, dtype=np.int64)
        }
        for key, buffers in self._state_buffers().items():
            for index, buffer in enumerate(buffers):
                state[f"{key}.{index:04d}"] = buffer
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output in place (buffers stay aliased)."""
        if "step_count" not in state:
            raise CheckpointError("optimizer state missing 'step_count'")
        for key, buffers in self._state_buffers().items():
            for index, buffer in enumerate(buffers):
                name = f"{key}.{index:04d}"
                if name not in state:
                    raise CheckpointError(f"optimizer state missing buffer {name!r}")
                value = np.asarray(state[name])
                if value.shape != buffer.shape:
                    raise CheckpointError(
                        f"optimizer buffer {name!r} shape {value.shape} != {buffer.shape}"
                    )
                buffer[...] = value
        self.step_count = int(np.asarray(state["step_count"]))
