"""Optimizer base class."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list.

    Only parameters with ``requires_grad=True`` are updated, so a model
    with frozen base weights and LoRA adapters can hand its full
    parameter list to the optimizer.
    """

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ConfigError("optimizer received no trainable parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError
