"""AdamW with decoupled weight decay — the paper's optimizer (Table 3)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class AdamW(Optimizer):
    """AdamW (Loshchilov & Hutter).

    Defaults follow the paper: ``beta1=0.9``, ``beta2=0.999``.  Weight
    decay is decoupled (applied directly to the weights, not the
    gradient).
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(np.float32)
