"""Gradient clipping."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter


def global_grad_norm(params: Sequence[Parameter]) -> float:
    """L2 norm over all gradients (missing gradients count as zero)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad.astype(np.float64) ** 2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = np.float32(max_norm / norm)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
