"""Plain SGD with optional momentum.

TracInCP's derivation assumes SGD steps between checkpoints, so the
influence tests use this optimizer; production fine-tuning uses AdamW.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def _state_buffers(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity} if self._velocity is not None else {}

    def step(self) -> None:
        self.step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if self._velocity is not None:
                vel = self._velocity[i]
                vel *= self.momentum
                vel += p.grad
                update = vel
            else:
                update = p.grad
            p.data -= (self.lr * update).astype(np.float32)
