"""Multi-head attention with grouped-query heads and sliding-window mask.

This mirrors Mistral's attention: rotary position embeddings on q/k,
``n_kv_heads <= n_heads`` grouped-query attention, and a causal mask that
additionally limits each token to a trailing window of
``sliding_window`` positions.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor, softmax
from repro.tensor.random import default_rng
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.rope import RotaryEmbedding

_NEG_INF = np.float32(-1e9)


def _freeze(mask: np.ndarray) -> np.ndarray:
    """Mark a cached mask read-only so shared copies cannot be corrupted."""
    mask.flags.writeable = False
    return mask


@functools.lru_cache(maxsize=256)
def rect_attention_mask(
    q_len: int,
    kv_len: int,
    window: int | None,
    q_offset: int = 0,
    kv_offset: int = 0,
) -> np.ndarray:
    """Additive mask of shape ``(q_len, kv_len)`` for cached decoding.

    Query ``i`` sits at absolute position ``q_offset + i`` and key ``j``
    at ``kv_offset + j``; attention is allowed when the key is not in
    the future and (with a window) not older than ``window`` positions.

    Results are memoized and returned **read-only** — callers share the
    same array, so mutation would corrupt every future forward pass.
    """
    q_pos = (q_offset + np.arange(q_len))[:, None]
    k_pos = (kv_offset + np.arange(kv_len))[None, :]
    allowed = k_pos <= q_pos
    if window is not None:
        allowed &= (q_pos - k_pos) < window
    return _freeze(np.where(allowed, np.float32(0.0), _NEG_INF).astype(np.float32))


@functools.lru_cache(maxsize=64)
def sliding_window_mask(seq_len: int, window: int | None) -> np.ndarray:
    """Additive attention mask of shape ``(seq_len, seq_len)``.

    Entry ``(i, j)`` is 0 when token ``i`` may attend to token ``j``
    (``j <= i`` and, with a window, ``i - j < window``) and ``-1e9``
    otherwise.  Memoized and returned **read-only** (see
    :func:`rect_attention_mask`).
    """
    i = np.arange(seq_len)[:, None]
    j = np.arange(seq_len)[None, :]
    allowed = j <= i
    if window is not None:
        allowed &= (i - j) < window
    return _freeze(np.where(allowed, np.float32(0.0), _NEG_INF).astype(np.float32))


def fused_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    n_kv_heads: int,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Fused scaled-dot-product attention over raw numpy arrays.

    Collapses the separate scale / mask / softmax / weighted-sum steps of
    the autograd path into one kernel: the ``1/sqrt(head_dim)`` scale is
    folded into ``q``, grouped-query heads are handled by reshaping ``q``
    to ``(B, KV, group·T, hd)`` and batching the matmul against the
    un-repeated ``(B, KV, S, hd)`` keys/values (einsum
    ``bkgth,bksh->bkgts`` lowered to a single BLAS call per side — no
    head-repeat copies of the KV cache), the additive ``mask`` is applied
    only when given, and the softmax runs in place on the score buffer.

    Shapes: ``q`` is ``(B, H, T, hd)``, ``k``/``v`` are ``(B, KV, S, hd)``;
    ``mask`` broadcasts over ``(B, H, T, S)`` — either ``(T, S)`` or
    ``(B, 1, 1, S)`` / ``(B, H, T, S)``.  Returns merged heads
    ``(B, T, H·hd)``.  Serves both prefill (``T > 1``) and the
    ``T == 1`` decode fast path (``mask=None``).
    """
    batch, n_heads, q_len, head_dim = q.shape
    group = n_heads // n_kv_heads
    kv_len = k.shape[2]
    q = q * np.float32(1.0 / np.sqrt(head_dim))
    q5 = q.reshape(batch, n_kv_heads, group * q_len, head_dim)
    scores = np.matmul(q5, k.swapaxes(-1, -2))  # (B, KV, group*T, S)
    if mask is not None:
        scores = scores.reshape(batch, n_kv_heads, group, q_len, kv_len)
        if mask.ndim <= 2:
            scores = scores + mask  # (T, S) broadcasts over (B, KV, G, T, S)
        elif mask.ndim == 4 and mask.shape[1] == 1:
            scores = scores + mask[:, :, None]  # (B, 1, 1, S) -> (B, 1, 1, 1, S)
        elif mask.ndim == 4:
            scores = scores + mask.reshape(batch, n_kv_heads, group, *mask.shape[2:])
        else:
            raise ConfigError(f"attention mask must have ndim <= 4, got shape {mask.shape}")
        scores = scores.reshape(batch, n_kv_heads, group * q_len, kv_len)
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    out = np.matmul(scores, v)  # (B, KV, group*T, hd)
    out = out.reshape(batch, n_kv_heads, group, q_len, head_dim)
    return out.transpose(0, 3, 1, 2, 4).reshape(batch, q_len, n_heads * head_dim)


class MultiHeadAttention(Module):
    """Grouped-query multi-head self-attention with RoPE."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        n_kv_heads: int | None = None,
        max_seq_len: int = 512,
        sliding_window: int | None = None,
        rope_theta: float = 10000.0,
        dropout: float = 0.0,
        rng=None,
    ):
        super().__init__()
        rng = default_rng(rng)
        n_kv_heads = n_kv_heads or n_heads
        if d_model % n_heads != 0:
            raise ConfigError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        if n_heads % n_kv_heads != 0:
            raise ConfigError(f"n_heads={n_heads} not divisible by n_kv_heads={n_kv_heads}")
        self.n_heads = n_heads
        self.n_kv_heads = n_kv_heads
        self.head_dim = d_model // n_heads
        self.sliding_window = sliding_window
        self.wq = Linear(d_model, n_heads * self.head_dim, bias=False, rng=rng)
        self.wk = Linear(d_model, n_kv_heads * self.head_dim, bias=False, rng=rng)
        self.wv = Linear(d_model, n_kv_heads * self.head_dim, bias=False, rng=rng)
        self.wo = Linear(n_heads * self.head_dim, d_model, bias=False, rng=rng)
        self.rope = RotaryEmbedding(self.head_dim, max_seq_len, theta=rope_theta)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, n_heads: int) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, n_heads, self.head_dim).transpose((0, 2, 1, 3))

    def _decode_step(self, q: Tensor, k: Tensor, v: Tensor, batch: int) -> Tensor:
        """Single-token decode kernel: no mask, no grouped-head repeat.

        Every retained key is visible to the one (newest) query, so the
        mask is skipped entirely — no ``(B, H, 1, T_kv)`` mask build and
        no ``-1e9`` softmax lanes.  The ``1/sqrt(head_dim)`` scale is
        folded into ``q`` (one ``(B, H, 1, hd)`` multiply instead of
        scaling the ``(B, H, 1, T_kv)`` score matrix), and grouped-query
        heads are handled by reshaping ``q`` to ``(B, KV, group, hd)``
        and broadcasting the matmul instead of materializing repeated
        key/value copies of the whole cache.
        """
        group = self.n_heads // self.n_kv_heads
        kv_len = k.shape[2]
        q = q * np.float32(1.0 / np.sqrt(self.head_dim))
        q = q.reshape(batch, self.n_kv_heads, group, self.head_dim)
        scores = q @ k.swapaxes(-1, -2)  # (B, KV, group, T_kv)
        weights = softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        out = weights @ v  # (B, KV, group, hd)
        return out.reshape(batch, 1, self.n_heads * self.head_dim)

    def mask_for(self, seq, kv_len, start, kv_offset, cache, attn_mask):
        """The additive mask a forward step needs, or ``None`` on the
        decode fast path (single newest query, every retained key
        visible) where building an all-zero mask would be pure waste.
        Shared by the autograd :meth:`forward` and the fused raw-numpy
        inference kernel so both paths agree on when masking applies.
        """
        if cache is not None and seq == 1 and attn_mask is None:
            # The single query is the newest position, so causality
            # admits every retained key, and the rolling window trim
            # (or an explicit length check) guarantees no key is older
            # than the window.
            if (
                self.sliding_window is None
                or cache.window is not None  # append() already trimmed to window
                or kv_len <= self.sliding_window
            ):
                return None
        if attn_mask is not None:
            return attn_mask
        if cache is not None:
            return rect_attention_mask(
                seq, kv_len, self.sliding_window, q_offset=start, kv_offset=kv_offset
            )
        return sliding_window_mask(seq, self.sliding_window)

    def forward(self, x: Tensor, cache=None, positions=None, attn_mask=None) -> Tensor:
        """Self-attention over ``x``.

        With ``cache`` (a :class:`~repro.nn.cache.LayerKVCache`) runs
        incremental decoding: ``x`` holds only the new tokens and
        attends over the cached prefix as well.  ``positions`` overrides
        the RoPE positions (``(T,)`` shared or ``(B, T)`` per-row, for
        ragged batched decoding); ``attn_mask`` is an additive mask
        broadcastable to ``(B, H, T, T_kv)`` that replaces the
        internally constructed causal/sliding mask (the batched
        generation loop builds per-row masks that also hide padding).
        """
        batch, seq, _ = x.shape
        start = cache.next_position if cache is not None else 0
        q = self._split_heads(self.wq(x), self.n_heads)  # (B, H, T, hd)
        k = self._split_heads(self.wk(x), self.n_kv_heads)  # (B, KV, T, hd)
        v = self._split_heads(self.wv(x), self.n_kv_heads)

        if positions is None:
            positions = np.arange(start, start + seq)
        q = self.rope.apply(q, positions=positions)
        k = self.rope.apply(k, positions=positions)

        if cache is not None:
            k_all, v_all = cache.append(k.data, v.data)
            k = Tensor(k_all)
            v = Tensor(v_all)
            kv_offset = cache.offset
        else:
            kv_offset = 0

        mask = self.mask_for(seq, k.shape[2], start, kv_offset, cache, attn_mask)
        if mask is None:
            return self.wo(self._decode_step(q, k, v, batch))

        if self.n_kv_heads != self.n_heads:
            group = self.n_heads // self.n_kv_heads
            idx = np.repeat(np.arange(self.n_kv_heads), group)
            k = k[:, idx]
            v = v[:, idx]

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale  # (B, H, T, T_kv)
        scores = scores + (mask if isinstance(mask, Tensor) else Tensor(mask))
        weights = softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        out = weights @ v  # (B, H, T, hd)
        out = out.transpose((0, 2, 1, 3)).reshape(batch, seq, self.n_heads * self.head_dim)
        return self.wo(out)
