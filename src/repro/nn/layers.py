"""Basic layers: Linear, Embedding, RMSNorm, LayerNorm, Dropout."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor, embedding
from repro.tensor.random import default_rng, kaiming_init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W^T + b``.

    Weight is stored as ``(out_features, in_features)`` to match the usual
    convention (and checkpoint layouts).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        init = kaiming_init(in_features)
        self.weight = Parameter(init((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.swapaxes(-1, -2)
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table of shape ``(num_embeddings, dim)``."""

    def __init__(self, num_embeddings: int, dim: int, rng=None, std: float = 0.02):
        super().__init__()
        rng = default_rng(rng)
        self.num_embeddings = num_embeddings
        self.dim = dim
        # Draw rows in bounded chunks straight into a float32 table: a
        # single rng.normal() call materializes a float64 intermediate
        # twice the table size.  Chunked draws consume the identical bit
        # stream, so seeded models stay weight-identical.
        table = np.empty((num_embeddings, dim), dtype=np.float32)
        rows_per_chunk = max(1, (1 << 20) // max(1, 8 * dim))  # <= ~1 MiB float64 scratch
        for start in range(0, num_embeddings, rows_per_chunk):
            stop = min(start + rows_per_chunk, num_embeddings)
            table[start:stop] = rng.normal(0.0, std, size=(stop - start, dim))
        self.weight = Parameter(table)

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding(self.weight, indices)

    def project(self, x: Tensor) -> Tensor:
        """Tied LM head: project hidden states onto the vocabulary.

        ``(..., dim) -> (..., num_embeddings)`` via ``x @ W^T`` with the
        same table used for lookups.  :class:`~repro.nn.quant.QuantizedEmbedding`
        implements the identical contract over int8 rows, which is what
        lets ``quantize_model`` swap the tied embedding/head pair as one
        unit.
        """
        return x @ self.weight.swapaxes(-1, -2)


class RMSNorm(Module):
    """Root-mean-square normalization (Mistral / Llama style, no bias)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        ms = (x * x).mean(axis=-1, keepdims=True)
        inv = (ms + self.eps) ** -0.5
        return x * inv * self.weight


class LayerNorm(Module):
    """Standard layer normalization with learnable scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centred = x - mu
        var = (centred * centred).mean(axis=-1, keepdims=True)
        return centred * ((var + self.eps) ** -0.5) * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout; identity when ``p == 0`` or in eval mode."""

    def __init__(self, p: float = 0.0, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)
