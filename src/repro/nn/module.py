"""Module / Parameter system.

A :class:`Module` discovers its parameters and submodules by inspecting its
attributes, in the spirit of ``torch.nn.Module`` but without registration
magic: an attribute that *is* a :class:`Parameter`, a :class:`Module`, or a
:class:`ModuleList` participates; everything else is ignored.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import CheckpointError
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, requires_grad: bool = True, name: str | None = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for neural network components.

    ``weight_version`` is a monotonic counter bumped whenever this
    module's parameters are mutated (optimizer steps, checkpoint loads,
    LoRA injection/merging).  Weight-dependent caches — most notably
    :class:`~repro.nn.cache.PrefixCache`, which stores KV snapshots and
    logits — compare it to detect stale entries.  Code that mutates
    ``Parameter.data`` directly must call :meth:`bump_weight_version`
    on the owning model.
    """

    def __init__(self):
        self.training = True
        self.weight_version = 0

    def bump_weight_version(self) -> None:
        """Mark this module's weights as changed (invalidates KV caches)."""
        self.weight_version += 1

    # -- traversal -----------------------------------------------------

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield f"{key}.{i}", child

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{key}", value)
        for name, child in self.named_children():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total scalar parameter count."""
        return sum(
            p.size for p in self.parameters() if p.requires_grad or not trainable_only
        )

    # -- modes ---------------------------------------------------------

    def train(self) -> "Module":
        self.training = True
        for _, child in self.named_children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for _, child in self.named_children():
            child.eval()
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- state dict ----------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values in place.

        With ``strict=True`` (default) the key sets must match exactly and
        every shape must agree.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise CheckpointError(
                    f"state dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.shape:
                raise CheckpointError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {param.shape}"
                )
            param.data = value.copy()
        self.bump_weight_version()

    # -- call ----------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList:
    """An ordered container of modules that participates in traversal."""

    def __init__(self, modules=()):
        self._modules: list[Module] = list(modules)

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
