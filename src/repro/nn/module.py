"""Module / Parameter system.

A :class:`Module` discovers its parameters and submodules by inspecting its
attributes, in the spirit of ``torch.nn.Module`` but without registration
magic: an attribute that *is* a :class:`Parameter`, a :class:`Module`, or a
:class:`ModuleList` participates; everything else is ignored.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import CheckpointError
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, requires_grad: bool = True, name: str | None = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Buffer:
    """Non-trainable module state of any dtype.

    Unlike :class:`Parameter`, a buffer never participates in autograd
    and its dtype is preserved verbatim — this is what lets
    :class:`~repro.nn.quant.QuantizedLinear` keep ``int8`` weights in a
    ``state_dict`` round-trip, where parameters are always forced to
    ``float32``.  Buffers are discovered by attribute inspection exactly
    like parameters and travel through ``state_dict`` /
    ``load_state_dict`` under the same dotted-path naming.
    """

    __slots__ = ("data",)

    def __init__(self, data):
        self.data = np.asarray(data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


class Module:
    """Base class for neural network components.

    ``weight_version`` is a monotonic counter bumped whenever this
    module's parameters are mutated (optimizer steps, checkpoint loads,
    LoRA injection/merging).  Weight-dependent caches — most notably
    :class:`~repro.nn.cache.PrefixCache`, which stores KV snapshots and
    logits — compare it to detect stale entries.  Code that mutates
    ``Parameter.data`` directly must call :meth:`bump_weight_version`
    on the owning model.
    """

    def __init__(self):
        self.training = True
        self.weight_version = 0

    def bump_weight_version(self) -> None:
        """Mark this module's weights as changed (invalidates KV caches)."""
        self.weight_version += 1

    # -- traversal -----------------------------------------------------

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield f"{key}.{i}", child

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{key}", value)
        for name, child in self.named_children():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, Buffer]]:
        for key, value in vars(self).items():
            if isinstance(value, Buffer):
                yield (f"{prefix}{key}", value)
        for name, child in self.named_children():
            yield from child.named_buffers(prefix=f"{prefix}{name}.")

    def buffers(self) -> list[Buffer]:
        return [b for _, b in self.named_buffers()]

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total scalar parameter count."""
        return sum(
            p.size for p in self.parameters() if p.requires_grad or not trainable_only
        )

    # -- modes ---------------------------------------------------------

    def train(self) -> "Module":
        self.training = True
        for _, child in self.named_children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for _, child in self.named_children():
            child.eval()
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- state dict ----------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's and buffer's data, keyed by dotted path.

        Parameters are float32 by construction; buffers keep their own
        dtype (e.g. int8 quantized weights).
        """
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.data.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter and buffer values in place.

        With ``strict=True`` (default) the key sets must match exactly and
        every shape must agree.  Parameter values are cast to float32;
        buffer values are cast to the buffer's existing dtype (so int8
        quantized weights stay int8 through a round-trip).
        """
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        if strict:
            own_keys = set(own_params) | set(own_buffers)
            missing = sorted(own_keys - set(state))
            unexpected = sorted(set(state) - own_keys)
            if missing or unexpected:
                raise CheckpointError(
                    f"state dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, param in own_params.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.shape:
                raise CheckpointError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {param.shape}"
                )
            param.data = value.copy()
        for name, buffer in own_buffers.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=buffer.data.dtype)
            if value.shape != buffer.data.shape:
                raise CheckpointError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {buffer.data.shape}"
                )
            buffer.data = value.copy()
        self.bump_weight_version()

    # -- call ----------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList:
    """An ordered container of modules that participates in traversal."""

    def __init__(self, modules=()):
        self._modules: list[Module] = list(modules)

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
