"""Decoding: greedy / temperature / top-k sampling, single and batched.

Generation always runs under :func:`~repro.tensor.no_grad`.  Two paths
share the same sampling semantics:

* :func:`generate` — one sequence, incremental KV-cached decoding (or a
  re-forward loop with ``use_cache=False``).
* :func:`generate_batch` — many sequences at once: one left-aligned
  padded prefill forward, then one-token-per-step batched decode with
  per-row RoPE positions, per-row stop-token tracking and **early row
  retirement** (finished rows are physically compacted out of the
  batch).  Greedy outputs match sequential :func:`generate` exactly,
  and seeded sampling matches row-for-row because every row draws from
  its own ``default_rng(config.seed)`` stream, just like a sequential
  call would.

Both paths accept a :class:`~repro.nn.cache.PrefixCache`: prompts that
share a cached token prefix (repeat behavior texts, shared instruct
preambles, repeat sampling seeds) fork the stored KV snapshot and only
prefill the unseen suffix.  Hit/miss/saved-token counters and the
decode-step histogram are reported through :mod:`repro.obs`
(``generation.*`` series; see ``docs/generation.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.tensor import no_grad
from repro.tensor.random import default_rng
from repro.nn.cache import KVCache, KVCacheSnapshot, LayerKVCache, PrefixCache
from repro.nn.transformer import MistralTiny

_NEG_INF = np.float32(-1e9)


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding parameters.

    ``temperature == 0`` means greedy decoding; ``top_k`` (when set)
    restricts sampling to the k most likely tokens.
    """

    max_new_tokens: int = 16
    temperature: float = 0.0
    top_k: int | None = None
    stop_tokens: tuple[int, ...] = ()
    seed: int = 0
    use_cache: bool = True

    def __post_init__(self):
        if self.max_new_tokens <= 0:
            raise ConfigError("max_new_tokens must be positive")
        if self.temperature < 0:
            raise ConfigError("temperature must be non-negative")
        if self.top_k is not None and self.top_k <= 0:
            raise ConfigError("top_k must be positive when set")


def _check_budget(model: MistralTiny, config: GenerationConfig) -> int:
    """Validate that prompt + generation fit the model's context window.

    Returns the prompt-length budget.  Without this check,
    ``ids[-(max_seq_len - max_new_tokens):]`` silently keeps the wrong
    slice when ``max_new_tokens >= max_seq_len`` (``ids[-0:]`` is the
    *whole* list) and decode positions overflow the RoPE table.
    """
    budget = model.config.max_seq_len - config.max_new_tokens
    if budget <= 0:
        raise ConfigError(
            f"max_new_tokens={config.max_new_tokens} must be smaller than the model's "
            f"max_seq_len={model.config.max_seq_len}: no context budget would remain for "
            "the prompt and decode positions would overflow the RoPE table"
        )
    return budget


def _sample_token(logits: np.ndarray, config: GenerationConfig, rng) -> int:
    if config.temperature == 0.0:
        return int(logits.argmax())
    scaled = logits / config.temperature
    if config.top_k is not None and config.top_k < scaled.size:
        cutoff = np.partition(scaled, -config.top_k)[-config.top_k]
        scaled = np.where(scaled >= cutoff, scaled, -np.inf)
    scaled = scaled - scaled.max()
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))


def _prefill_single(
    model: MistralTiny,
    prompt: np.ndarray,
    prefix_cache: PrefixCache | None,
) -> tuple[KVCache, np.ndarray]:
    """Prefill one prompt, reusing the longest cached prefix if any.

    Returns the ready-to-decode cache and the logits following the last
    prompt token.
    """
    window = model.config.sliding_window
    entry = prefix_cache.lookup(prompt) if prefix_cache is not None else None
    if entry is not None and entry.length == len(prompt):
        return KVCache.from_snapshot(entry.snapshot, window=None).trimmed(window), entry.logits
    if entry is not None:
        cache = KVCache.from_snapshot(entry.snapshot, window=None)
        suffix = prompt[entry.length :]
        logits = model.forward(suffix[None, :], cache=cache).data[0, -1]
    else:
        # Prefill through an *untrimmed* cache: the attention masks
        # enforce the sliding window exactly, whereas trimming mid-prompt
        # would drop keys that early queries (and, through deeper layers,
        # the final logits) still depend on.  The window-sized rolling
        # cache is cut from the result afterwards for O(window) decode.
        cache = KVCache(model.config.n_layers, window=None)
        logits = model.forward(prompt[None, :], cache=cache).data[0, -1]
    if prefix_cache is not None:
        prefix_cache.insert(prompt, cache.snapshot(), logits)
    return cache.trimmed(window), logits


def generate(
    model: MistralTiny,
    prompt_ids: np.ndarray,
    config: GenerationConfig | None = None,
    prefix_cache: PrefixCache | None = None,
) -> list[int]:
    """Generate a continuation for a single prompt.

    Returns only the newly generated token ids (prompt excluded).  The
    prompt is truncated on the left if it would overflow the model's
    context window; ``max_new_tokens`` must leave a positive prompt
    budget (:class:`~repro.errors.ConfigError` otherwise).
    """
    config = config or GenerationConfig()
    budget = _check_budget(model, config)
    if prefix_cache is not None:
        prefix_cache.sync(model.weight_version)
    rng = default_rng(config.seed)
    # Left-truncate to the prompt budget up front so the cached and
    # uncached paths condition on the identical context window and the
    # whole run fits the RoPE position table.
    ids = list(np.asarray(prompt_ids, dtype=np.int64).reshape(-1))[-budget:]
    generated: list[int] = []
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            if config.use_cache:
                # Incremental decoding: prefill once (reusing any cached
                # prefix), then one token per step.
                prompt = np.asarray(ids, dtype=np.int64)
                cache, logits = _prefill_single(model, prompt, prefix_cache)
                for _ in range(config.max_new_tokens):
                    next_id = _sample_token(logits, config, rng)
                    generated.append(next_id)
                    if next_id in config.stop_tokens or len(generated) == config.max_new_tokens:
                        break
                    logits = model.forward(
                        np.asarray([next_id], dtype=np.int64)[None, :], cache=cache
                    ).data[0, -1]
            else:
                for _ in range(config.max_new_tokens):
                    logits = model.forward(np.asarray(ids, dtype=np.int64)[None, :])
                    next_id = _sample_token(logits.data[0, -1], config, rng)
                    ids.append(next_id)
                    generated.append(next_id)
                    if next_id in config.stop_tokens:
                        break
    finally:
        if was_training:
            model.train()
    return generated


# ----------------------------------------------------------------------
# Batched decoding
# ----------------------------------------------------------------------


class _BatchState:
    """Mutable per-row bookkeeping for the batched decode loop.

    The stacked KV cache is left-aligned: row ``i`` occupies slots
    ``0..kv_len_i`` and shorter rows carry invalid (padding or absent)
    slots that the per-row additive mask hides.  ``kv_pos[i, j]`` is the
    absolute RoPE position slot ``j`` holds for row ``i`` — decode
    positions continue from each row's *own* prompt length, so batched
    logits match the sequential run exactly.
    """

    __slots__ = ("cache", "kv_pos", "kv_valid", "row_pos", "uniform", "window")

    def __init__(self, cache, kv_pos, kv_valid, row_pos, uniform, window):
        self.cache = cache
        self.kv_pos = kv_pos  # (B, K) int64
        self.kv_valid = kv_valid  # (B, K) bool
        self.row_pos = row_pos  # (B,) int64: position of the next token
        self.uniform = uniform  # True when slots == positions for every row
        self.window = window

    def step_mask(self) -> np.ndarray | None:
        """Additive mask for the next single-token step (or None).

        ``None`` means the model's own mask logic (including the decode
        fast path) is exact: every row's slots line up with its
        positions.  Otherwise builds a ``(B, 1, 1, K+1)`` mask covering
        the about-to-be-appended token's slot (always visible).
        """
        if self.uniform:
            return None
        allowed = self.kv_valid
        if self.window is not None:
            allowed = allowed & ((self.row_pos[:, None] - self.kv_pos) < self.window)
        batch = allowed.shape[0]
        mask = np.where(allowed, np.float32(0.0), _NEG_INF).astype(np.float32)
        mask = np.concatenate([mask, np.zeros((batch, 1), dtype=np.float32)], axis=1)
        return mask[:, None, None, :]

    def advance(self) -> None:
        """Record the slot the forward pass just appended."""
        self.kv_pos = np.concatenate([self.kv_pos, self.row_pos[:, None]], axis=1)
        self.kv_valid = np.concatenate(
            [self.kv_valid, np.ones((self.kv_valid.shape[0], 1), dtype=bool)], axis=1
        )
        self.row_pos = self.row_pos + 1

    def select_rows(self, keep: list[int]) -> None:
        self.cache.select_rows(keep)
        self.kv_pos = self.kv_pos[keep]
        self.kv_valid = self.kv_valid[keep]
        self.row_pos = self.row_pos[keep]

    def admit(self, other: "_BatchState") -> None:
        """Merge another batch's rows into this one (continuous admit).

        Pads both slot tables to a common width, appends the newcomer's
        rows to every layer's stacked cache, and recomputes ``uniform``
        exactly.  Padding slots stay invalid (masked forever), so a
        merged step computes bitwise the same per-row logits as running
        the two batches separately — the foundation of the continuous
        scheduler's parity guarantee.
        """
        width = max(self.kv_pos.shape[1], other.kv_pos.shape[1])

        def pad_cols(a: np.ndarray) -> np.ndarray:
            if a.shape[1] == width:
                return a
            extra = np.zeros((a.shape[0], width - a.shape[1]), dtype=a.dtype)
            return np.concatenate([a, extra], axis=1)

        self.kv_pos = np.concatenate([pad_cols(self.kv_pos), pad_cols(other.kv_pos)], axis=0)
        self.kv_valid = np.concatenate(
            [pad_cols(self.kv_valid), pad_cols(other.kv_valid)], axis=0
        )
        self.row_pos = np.concatenate([self.row_pos, other.row_pos], axis=0)
        for mine, theirs in zip(self.cache.layers, other.cache.layers):
            mine.admit_rows(theirs)
        # Exact uniformity: every slot real and contiguous from 0, every
        # row about to decode position ``width`` — the condition under
        # which the model's own mask logic (and decode fast path) is
        # correct without an explicit mask.
        self.uniform = (
            bool(self.kv_valid.all())
            and bool((self.kv_pos == np.arange(width, dtype=np.int64)).all())
            and bool((self.row_pos == width).all())
        )


# Public name for the batched-decode bookkeeping: the continuous
# scheduler builds on the same state object generate_batch() uses.
DecodeState = _BatchState


def _snapshot_row(layers_kv, row: int, length: int, offset: int = 0) -> KVCacheSnapshot:
    """Freeze one row's first ``length`` KV slots as a cache snapshot."""
    from repro.nn.cache import LayerKVSnapshot, _read_only

    snaps = []
    for k, v in layers_kv:
        snaps.append(
            LayerKVSnapshot(
                k=_read_only(np.ascontiguousarray(k[row : row + 1, :, :length])),
                v=_read_only(np.ascontiguousarray(v[row : row + 1, :, :length])),
                offset=offset,
            )
        )
    return KVCacheSnapshot(layers=tuple(snaps), window=None)


def _prefill_batch(
    model: MistralTiny,
    rows: list[np.ndarray],
    prefix_cache: PrefixCache | None,
    metrics,
) -> tuple[_BatchState, list[np.ndarray]]:
    """Prefill every prompt and stack the results into one batch state.

    Rows without a cached prefix share one left-aligned padded prefill
    forward; rows with a prefix hit fork the stored snapshot and prefill
    only their unseen suffix.
    """
    n_layers = model.config.n_layers
    window = model.config.sliding_window
    batch = len(rows)
    lengths = [len(r) for r in rows]
    entries = [prefix_cache.lookup(r) if prefix_cache is not None else None for r in rows]
    miss_idx = [i for i, e in enumerate(entries) if e is None]

    last_logits: list[np.ndarray | None] = [None] * batch
    row_kv: list[list[tuple[np.ndarray, np.ndarray]] | None] = [None] * batch
    row_offsets = [0] * batch
    row_kv_len = [0] * batch

    if miss_idx:
        pad_to = max(lengths[i] for i in miss_idx)
        padded = np.zeros((len(miss_idx), pad_to), dtype=np.int64)
        for r, i in enumerate(miss_idx):
            padded[r, : lengths[i]] = rows[i]
        miss_cache = KVCache(n_layers, window=None)
        logits = model.forward(padded, cache=miss_cache).data
        metrics["prefill_tokens"].inc(sum(lengths[i] for i in miss_idx))
        miss_layers = [miss_cache[layer].views() for layer in range(n_layers)]
        for r, i in enumerate(miss_idx):
            last_logits[i] = logits[r, lengths[i] - 1]
            row_kv[i] = [(k[r : r + 1], v[r : r + 1]) for k, v in miss_layers]
            row_kv_len[i] = pad_to
            if prefix_cache is not None:
                prefix_cache.insert(
                    rows[i],
                    _snapshot_row(miss_layers, r, lengths[i]),
                    last_logits[i],
                )

    for i, entry in enumerate(entries):
        if entry is None:
            continue
        if entry.length == lengths[i]:
            fork = KVCache.from_snapshot(entry.snapshot, window=None)
            last_logits[i] = np.asarray(entry.logits)
        else:
            fork = KVCache.from_snapshot(entry.snapshot, window=None)
            suffix = rows[i][entry.length :]
            last_logits[i] = model.forward(suffix[None, :], cache=fork).data[0, -1]
            metrics["prefill_tokens"].inc(len(suffix))
            if prefix_cache is not None:
                prefix_cache.insert(rows[i], fork.snapshot(), last_logits[i])
        row_kv[i] = [fork[layer].views() for layer in range(n_layers)]
        row_offsets[i] = fork[0].offset
        row_kv_len[i] = len(fork[0])

    # Stack every row's KV block left-aligned into one batched cache.
    kv_capacity = max(row_kv_len)
    kv_pos = np.zeros((batch, kv_capacity), dtype=np.int64)
    kv_valid = np.zeros((batch, kv_capacity), dtype=bool)
    stacked = []
    for layer in range(n_layers):
        template = row_kv[0][layer][0]
        _, kv_heads, _, head_dim = template.shape
        k_l = np.zeros((batch, kv_heads, kv_capacity, head_dim), dtype=template.dtype)
        v_l = np.zeros_like(k_l)
        for i in range(batch):
            k_row, v_row = row_kv[i][layer]
            k_l[i, :, : row_kv_len[i]] = k_row[0]
            v_l[i, :, : row_kv_len[i]] = v_row[0]
        stacked.append((k_l, v_l))
    for i in range(batch):
        span = np.arange(row_kv_len[i])
        kv_pos[i, : row_kv_len[i]] = row_offsets[i] + span
        # Padding slots of a shared prefill (beyond the row's own prompt
        # length) hold garbage K/V and must stay masked forever.
        valid_len = min(lengths[i] - row_offsets[i], row_kv_len[i])
        kv_valid[i, :valid_len] = True

    cache = KVCache.__new__(KVCache)
    cache.layers = [
        LayerKVCache.from_arrays(k_l, v_l, offset=0, window=None) for k_l, v_l in stacked
    ]
    cache.window = None

    uniform = (
        all(e is None for e in entries)
        and len(set(lengths)) == 1
        and all(o == 0 for o in row_offsets)
    )
    state = _BatchState(
        cache=cache,
        kv_pos=kv_pos,
        kv_valid=kv_valid,
        row_pos=np.asarray(lengths, dtype=np.int64),
        uniform=uniform,
        window=window,
    )
    return state, [np.asarray(l) for l in last_logits]


def generate_batch(
    model: MistralTiny,
    prompts,
    config: GenerationConfig | None = None,
    prefix_cache: PrefixCache | None = None,
    obs=None,
) -> list[list[int]]:
    """Generate continuations for many prompts in one batched decode.

    Returns one list of newly generated token ids per prompt, in input
    order.  Exact parity with per-prompt :func:`generate` calls: greedy
    outputs are identical, and seeded sampling matches because each row
    draws from its own ``default_rng(config.seed)`` stream.  Rows retire
    as soon as they emit a stop token (or hit ``max_new_tokens``) and
    are compacted out of the running batch.
    """
    config = config or GenerationConfig()
    budget = _check_budget(model, config)
    if prefix_cache is not None:
        prefix_cache.sync(model.weight_version)
    if obs is None:
        from repro.obs import get_observability

        obs = get_observability()
    registry = obs.metrics
    metrics = {
        "prefill_tokens": registry.counter("generation.prefill_tokens"),
        "tokens": registry.counter("generation.tokens_generated"),
    }
    h_step = registry.histogram("generation.decode_step_s")
    h_rows = registry.histogram("generation.batch_rows")

    rows = [np.asarray(p, dtype=np.int64).reshape(-1)[-budget:] for p in prompts]
    if not rows:
        return []
    if any(len(r) == 0 for r in rows):
        raise ConfigError("generate_batch() received an empty prompt")
    h_rows.observe(len(rows))

    outputs: list[list[int]] = [[] for _ in rows]
    rngs = [default_rng(config.seed) for _ in rows]
    was_training = model.training
    model.eval()
    try:
        with no_grad(), obs.span("generation.batch", rows=len(rows)):
            state, last_logits = _prefill_batch(model, rows, prefix_cache, metrics)

            active: list[int] = []  # original row index per live batch row
            tokens: list[int] = []
            # The first token of every row is sampled from the prefill
            # logits — it counts toward throughput like any other.
            metrics["tokens"].inc(len(rows))
            for i in range(len(rows)):
                next_id = _sample_token(last_logits[i], config, rngs[i])
                outputs[i].append(next_id)
                if next_id in config.stop_tokens or len(outputs[i]) == config.max_new_tokens:
                    continue
                active.append(i)
                tokens.append(next_id)
            if active and len(active) < len(rows):
                state.select_rows(active)

            while active:
                started = time.perf_counter()
                mask = state.step_mask()
                step_ids = np.asarray(tokens, dtype=np.int64)[:, None]
                logits = model.forward(
                    step_ids,
                    cache=state.cache,
                    positions=state.row_pos[:, None],
                    attn_mask=mask,
                ).data[:, -1, :]
                state.advance()
                h_step.observe(time.perf_counter() - started)
                metrics["tokens"].inc(len(active))

                keep: list[int] = []
                next_tokens: list[int] = []
                for row, i in enumerate(active):
                    next_id = _sample_token(logits[row], config, rngs[i])
                    outputs[i].append(next_id)
                    if (
                        next_id in config.stop_tokens
                        or len(outputs[i]) == config.max_new_tokens
                    ):
                        continue  # retired: stop token or budget exhausted
                    keep.append(row)
                    next_tokens.append(next_id)
                if len(keep) < len(active):
                    active = [active[row] for row in keep]
                    if active:
                        state.select_rows(keep)
                tokens = next_tokens
    finally:
        if was_training:
            model.train()
    return outputs


def next_token_logits(model: MistralTiny, prompt_ids: np.ndarray) -> np.ndarray:
    """Logits over the vocabulary for the token following ``prompt_ids``.

    Used by the evaluation harness to score discrete answers (e.g. the
    relative likelihood of "yes" vs "no"), which feeds the KS metric.
    """
    ids = np.asarray(prompt_ids, dtype=np.int64).reshape(-1)
    ids = ids[-model.config.max_seq_len:]
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            logits = model.forward(ids[None, :])
    finally:
        if was_training:
            model.train()
    return logits.data[0, -1].copy()
