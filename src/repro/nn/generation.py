"""Decoding utilities: greedy, temperature and top-k sampling.

Generation always runs under :func:`~repro.tensor.no_grad`.  Sequences are
re-forwarded each step — at the scales this library targets that is both
simple and fast enough; the sliding-window mask keeps attention cost
bounded exactly as it would with a rolling KV cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.tensor import no_grad
from repro.tensor.random import default_rng
from repro.nn.transformer import MistralTiny


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding parameters.

    ``temperature == 0`` means greedy decoding; ``top_k`` (when set)
    restricts sampling to the k most likely tokens.
    """

    max_new_tokens: int = 16
    temperature: float = 0.0
    top_k: int | None = None
    stop_tokens: tuple[int, ...] = ()
    seed: int = 0
    use_cache: bool = True

    def __post_init__(self):
        if self.max_new_tokens <= 0:
            raise ConfigError("max_new_tokens must be positive")
        if self.temperature < 0:
            raise ConfigError("temperature must be non-negative")
        if self.top_k is not None and self.top_k <= 0:
            raise ConfigError("top_k must be positive when set")


def _sample_token(logits: np.ndarray, config: GenerationConfig, rng) -> int:
    if config.temperature == 0.0:
        return int(logits.argmax())
    scaled = logits / config.temperature
    if config.top_k is not None and config.top_k < scaled.size:
        cutoff = np.partition(scaled, -config.top_k)[-config.top_k]
        scaled = np.where(scaled >= cutoff, scaled, -np.inf)
    scaled = scaled - scaled.max()
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))


def generate(
    model: MistralTiny,
    prompt_ids: np.ndarray,
    config: GenerationConfig | None = None,
) -> list[int]:
    """Generate a continuation for a single prompt.

    Returns only the newly generated token ids (prompt excluded).  The
    prompt is truncated on the left if it would overflow the model's
    context window.
    """
    config = config or GenerationConfig()
    rng = default_rng(config.seed)
    ids = list(np.asarray(prompt_ids, dtype=np.int64).reshape(-1))
    generated: list[int] = []
    max_len = model.config.max_seq_len
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            if config.use_cache:
                # Incremental decoding: prefill once, then one token per
                # step.  The prompt is left-truncated so the whole run
                # fits the position table.
                prompt = ids[-(max_len - config.max_new_tokens):]
                cache = model.make_cache()
                logits = model.forward(np.asarray(prompt, dtype=np.int64)[None, :], cache=cache)
                for _ in range(config.max_new_tokens):
                    next_id = _sample_token(logits.data[0, -1], config, rng)
                    generated.append(next_id)
                    if next_id in config.stop_tokens or len(generated) == config.max_new_tokens:
                        break
                    logits = model.forward(
                        np.asarray([next_id], dtype=np.int64)[None, :], cache=cache
                    )
            else:
                for _ in range(config.max_new_tokens):
                    context = ids[-(max_len):]
                    logits = model.forward(np.asarray(context, dtype=np.int64)[None, :])
                    next_id = _sample_token(logits.data[0, -1], config, rng)
                    ids.append(next_id)
                    generated.append(next_id)
                    if next_id in config.stop_tokens:
                        break
    finally:
        if was_training:
            model.train()
    return generated


def next_token_logits(model: MistralTiny, prompt_ids: np.ndarray) -> np.ndarray:
    """Logits over the vocabulary for the token following ``prompt_ids``.

    Used by the evaluation harness to score discrete answers (e.g. the
    relative likelihood of "yes" vs "no"), which feeds the KS metric.
    """
    ids = np.asarray(prompt_ids, dtype=np.int64).reshape(-1)
    ids = ids[-model.config.max_seq_len:]
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            logits = model.forward(ids[None, :])
    finally:
        if was_training:
            model.train()
    return logits.data[0, -1].copy()
