"""Int8 weight-only quantization and the fused raw-numpy inference path.

Two tightly coupled pieces live here:

* :class:`QuantizedLinear` / :class:`QuantizedEmbedding` — weight-only
  int8 storage with **symmetric per-output-channel float32 scales**
  (``scale[o] = max|W[o, :]| / 127``), cutting weight memory ~4x.  The
  forward computes ``x @ W_q^T * scale``: numpy promotes the int8
  operand to float32 inside the matmul, so the dequantization is folded
  into the accumulator and **no float copy of the weight is ever
  materialized on the hot path**.  Quantization is inference-only —
  driving a quantized layer from a gradient-recording graph raises
  :class:`~repro.errors.QuantizationError`.

* :func:`quantize_model` — a compile pass that walks a ``Module`` tree
  swapping eligible layers for their quantized twins, then switches the
  model's forward onto a **fused raw-numpy kernel**
  (:func:`infer_logits_np`): one Python call per forward instead of one
  autograd ``Tensor`` per op, with attention collapsed into the single
  einsum-style kernel :func:`repro.nn.attention.fused_attention`.  The
  pass must run **after** :func:`repro.lora.merge_lora` (unmerged
  adapters are refused), bumps ``weight_version`` so
  :meth:`~repro.nn.cache.PrefixCache.sync` invalidates stale KV/logit
  entries, and the resulting model round-trips through
  ``state_dict()/load_state_dict()`` (int8 buffers keep their dtype),
  which is what the cluster's stage->drain->swap rolling deploys need.

Float models are untouched: training, backward, and the float serving
path run exactly the code they ran before this module existed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.tensor import Tensor, is_grad_enabled
from repro.nn.attention import MultiHeadAttention, fused_attention
from repro.nn.layers import Embedding, Linear, RMSNorm
from repro.nn.mlp import SwiGLU
from repro.nn.module import Buffer, Module, ModuleList, Parameter

#: Attribute names swapped by default: attention q/k/v/o projections,
#: the SwiGLU gate/up/down projections, and an untied LM head.  The
#: classifier ``head`` is opt-in via ``quantize_head=True``.
DEFAULT_TARGETS = frozenset({"wq", "wk", "wv", "wo", "w1", "w2", "w3", "lm_head"})

_QMAX = 127.0


def quantize_weight(weight: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of ``(out, in)`` weights.

    Returns ``(w_q, scale)`` with ``w_q`` int8 and ``scale`` float32 of
    shape ``(out,)`` such that ``w_q[o, :] * scale[o] ~= W[o, :]`` with
    per-element error at most ``scale[o] / 2`` (round-to-nearest).
    All-zero rows get scale 1.0 so dequantization stays exact.
    """
    w = np.asarray(weight, dtype=np.float32)
    if w.ndim != 2:
        raise QuantizationError(f"expected a 2-D weight, got shape {w.shape}")
    absmax = np.abs(w).max(axis=1)
    scale = np.where(absmax > 0, absmax / np.float32(_QMAX), np.float32(1.0)).astype(np.float32)
    w_q = np.clip(np.rint(w / scale[:, None]), -_QMAX, _QMAX).astype(np.int8)
    return w_q, scale


def _guard_inference_only(x, what: str) -> None:
    if is_grad_enabled() and getattr(x, "requires_grad", False):
        raise QuantizationError(
            f"{what} is inference-only: it stores int8 weights with no backward. "
            "Run under no_grad() (generation/scoring already does), or keep a "
            "float model for training."
        )


class QuantizedLinear(Module):
    """Weight-only int8 linear layer: ``y = (x @ W_q^T) * scale + b``.

    ``weight_q`` (int8) and ``scale`` (float32) are :class:`Buffer`\\ s,
    so ``state_dict`` round-trips preserve their dtypes.  The bias, when
    present, stays float32 (its memory is negligible and biases are
    precision-sensitive).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = False):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_q = Buffer(np.zeros((out_features, in_features), dtype=np.int8))
        self.scale = Buffer(np.ones(out_features, dtype=np.float32))
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=np.float32), requires_grad=False)
        else:
            self.bias = None

    @classmethod
    def from_linear(cls, linear: Linear) -> "QuantizedLinear":
        q = cls(linear.in_features, linear.out_features, bias=linear.bias is not None)
        w_q, scale = quantize_weight(linear.weight.data)
        q.weight_q.data = w_q
        q.scale.data = scale
        if linear.bias is not None:
            q.bias.data = linear.bias.data.copy()
        return q

    def matmul_np(self, x: np.ndarray) -> np.ndarray:
        # float32 @ int8 promotes inside the gufunc: the accumulator is
        # float32 and no dequantized weight copy is ever materialized.
        # Leading dims are flattened first — a single 2-D GEMM is
        # substantially faster than a batched 3-D matmul at decode shapes.
        lead = x.shape[:-1]
        out = np.matmul(x.reshape(-1, x.shape[-1]), self.weight_q.data.T)
        out *= self.scale.data
        if self.bias is not None:
            out += self.bias.data
        return out.reshape(*lead, self.out_features)

    def forward(self, x: Tensor) -> Tensor:
        _guard_inference_only(x, "QuantizedLinear")
        return Tensor(self.matmul_np(x.data))


class QuantizedEmbedding(Module):
    """Int8 token-embedding table with per-row scales.

    Implements both directions of a tied embedding/head pair: row
    lookups (:meth:`forward`) dequantize only the gathered rows, and
    :meth:`project` maps hidden states onto the vocabulary with the same
    folded-dequant matmul as :class:`QuantizedLinear` — which is why
    ``quantize_model`` can swap a tied ``tok_embed`` as one unit.
    """

    def __init__(self, num_embeddings: int, dim: int):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight_q = Buffer(np.zeros((num_embeddings, dim), dtype=np.int8))
        self.scale = Buffer(np.ones(num_embeddings, dtype=np.float32))

    @classmethod
    def from_embedding(cls, emb: Embedding) -> "QuantizedEmbedding":
        q = cls(emb.num_embeddings, emb.dim)
        w_q, scale = quantize_weight(emb.weight.data)
        q.weight_q.data = w_q
        q.scale.data = scale
        return q

    def lookup_np(self, indices) -> np.ndarray:
        idx = np.asarray(indices)
        rows = self.weight_q.data[idx].astype(np.float32)
        rows *= self.scale.data[idx][..., None]
        return rows

    def forward(self, indices) -> Tensor:
        return Tensor(self.lookup_np(indices))

    def project_np(self, x: np.ndarray) -> np.ndarray:
        lead = x.shape[:-1]
        out = np.matmul(x.reshape(-1, x.shape[-1]), self.weight_q.data.T)
        out *= self.scale.data
        return out.reshape(*lead, self.num_embeddings)

    def project(self, x: Tensor) -> Tensor:
        _guard_inference_only(x, "QuantizedEmbedding")
        return Tensor(self.project_np(x.data))


# ----------------------------------------------------------------------
# The compile pass
# ----------------------------------------------------------------------


def _iter_modules(root: Module):
    stack = [root]
    seen: set[int] = set()
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        yield current
        for value in vars(current).values():
            if isinstance(value, Module):
                stack.append(value)
            elif isinstance(value, ModuleList):
                stack.extend(list(value))


def quantize_model(
    model: Module,
    dtype: str = "int8",
    quantize_embeddings: bool = True,
    quantize_head: bool = False,
    targets=None,
) -> Module:
    """Swap eligible layers for int8 twins and fuse the inference path.

    Walks the module tree replacing every :class:`~repro.nn.Linear`
    whose attribute name is in ``targets`` (default:
    attention q/k/v/o + SwiGLU w1/w2/w3 + ``lm_head``; add the
    classifier ``head`` with ``quantize_head=True``) with a
    :class:`QuantizedLinear`, and — when ``quantize_embeddings`` —
    every :class:`~repro.nn.Embedding` with a
    :class:`QuantizedEmbedding`.  Merged LoRA wrappers at target names
    are collapsed onto their (already merged) base weight; **unmerged**
    adapters raise, because quantizing would silently drop the adapter
    delta: call :func:`repro.lora.merge_lora` first.

    Every :class:`~repro.nn.MistralTiny` in the tree is then switched
    onto the fused raw-numpy kernel (:func:`infer_logits_np`), the model
    is put in eval mode, and ``weight_version`` is bumped exactly once
    so :meth:`PrefixCache.sync` flushes KV/logit entries computed under
    float weights.

    The pass mutates ``model`` in place and returns it.
    """
    if dtype != "int8":
        raise QuantizationError(f"unsupported quantization dtype {dtype!r}; only 'int8' is implemented")
    from repro.lora.adapter import LoRALinear  # local import: repro.lora imports repro.nn

    for module in _iter_modules(model):
        if isinstance(module, LoRALinear) and not module.merged:
            raise QuantizationError(
                "quantize_model must run after LoRA merge: found an unmerged "
                "LoRALinear (its low-rank delta would be dropped). Call "
                "repro.lora.merge_lora(model) first."
            )

    target_names = set(DEFAULT_TARGETS if targets is None else targets)
    if quantize_head:
        target_names.add("head")

    replaced = 0
    for module in list(_iter_modules(model)):
        for key, value in list(vars(module).items()):
            if isinstance(value, LoRALinear) and key in target_names:
                setattr(module, key, QuantizedLinear.from_linear(value.base))
                replaced += 1
            elif isinstance(value, Linear) and key in target_names:
                setattr(module, key, QuantizedLinear.from_linear(value))
                replaced += 1
            elif isinstance(value, Embedding) and quantize_embeddings:
                setattr(module, key, QuantizedEmbedding.from_embedding(value))
                replaced += 1
    if replaced == 0:
        raise QuantizationError(
            f"quantize_model found no eligible layers (targets={sorted(target_names)})"
        )

    from repro.nn.transformer import MistralTiny  # local import: avoid cycle at module load

    for module in _iter_modules(model):
        if isinstance(module, MistralTiny):
            module._inference_kernel = infer_logits_np
    model.eval()
    model.bump_weight_version()
    return model


def is_quantized(model: Module) -> bool:
    """Whether any layer in the tree is an int8 quantized layer."""
    return any(
        isinstance(m, (QuantizedLinear, QuantizedEmbedding)) for m in _iter_modules(model)
    )


def weight_bytes(model: Module) -> int:
    """Resident bytes of all weights: float parameters plus int8 buffers.

    This is the number the ~4x quantization claim is about — KV caches
    and activations are accounted separately.
    """
    return sum(p.data.nbytes for _, p in model.named_parameters()) + sum(
        b.data.nbytes for _, b in model.named_buffers()
    )


# ----------------------------------------------------------------------
# Fused raw-numpy inference kernel
# ----------------------------------------------------------------------
#
# One Python frame per layer instead of one autograd Tensor per op.
# Numerics deliberately mirror the Tensor path op for op (same reduction
# orders), so a float layer evaluated through this kernel matches the
# autograd forward to ~1 ulp — the only reassociation is the attention
# scale, which the fused kernel folds into q before QK^T (exactly like
# the existing _decode_step fast path) instead of scaling the scores.


def linear_np(layer, x: np.ndarray) -> np.ndarray:
    """Raw forward for Linear / QuantizedLinear / merged LoRALinear."""
    if isinstance(layer, QuantizedLinear):
        return layer.matmul_np(x)
    if isinstance(layer, Linear):
        lead = x.shape[:-1]
        out = np.matmul(x.reshape(-1, x.shape[-1]), layer.weight.data.T)
        if layer.bias is not None:
            out += layer.bias.data
        return out.reshape(*lead, layer.out_features)
    base = getattr(layer, "base", None)
    if base is not None and getattr(layer, "merged", False):
        return linear_np(base, x)
    raise QuantizationError(
        f"fused inference path cannot evaluate layer type {type(layer).__name__}"
    )


def _rmsnorm_np(norm: RMSNorm, x: np.ndarray) -> np.ndarray:
    ms = (x * x).sum(axis=-1, keepdims=True)
    ms /= x.shape[-1]  # same bits as np.mean, less call overhead
    inv = (ms + norm.eps) ** -0.5
    return x * inv * norm.weight.data


def _swiglu_np(ffn: SwiGLU, x: np.ndarray) -> np.ndarray:
    gate = linear_np(ffn.w1, x)
    sig = 1.0 / (1.0 + np.exp(-gate))
    gate *= sig
    gate *= linear_np(ffn.w3, x)
    return linear_np(ffn.w2, gate)


def _attention_np(attn: MultiHeadAttention, x: np.ndarray, cache, positions, attn_mask):
    batch, seq, _ = x.shape
    start = cache.next_position if cache is not None else 0
    q = linear_np(attn.wq, x).reshape(batch, seq, attn.n_heads, attn.head_dim).transpose(0, 2, 1, 3)
    k = linear_np(attn.wk, x).reshape(batch, seq, attn.n_kv_heads, attn.head_dim).transpose(0, 2, 1, 3)
    v = linear_np(attn.wv, x).reshape(batch, seq, attn.n_kv_heads, attn.head_dim).transpose(0, 2, 1, 3)
    if positions is None:
        positions = np.arange(start, start + seq)
    q = attn.rope.apply_np(q, positions)
    k = attn.rope.apply_np(k, positions)
    if cache is not None:
        k, v = cache.append(k, v)
        kv_offset = cache.offset
    else:
        kv_offset = 0
    mask = attn.mask_for(seq, k.shape[2], start, kv_offset, cache, attn_mask)
    if isinstance(mask, Tensor):
        mask = mask.data
    out = fused_attention(q, k, v, attn.n_kv_heads, mask)
    return linear_np(attn.wo, out)


def _block_np(block, x: np.ndarray, cache, positions, attn_mask) -> np.ndarray:
    x = x + _attention_np(block.attn, _rmsnorm_np(block.attn_norm, x), cache, positions, attn_mask)
    return x + _swiglu_np(block.ffn, _rmsnorm_np(block.ffn_norm, x))


def infer_logits_np(model, token_ids: np.ndarray, cache=None, positions=None, attn_mask=None):
    """Fused no-graph forward for a (quantized) :class:`MistralTiny`.

    Installed by :func:`quantize_model` as ``model._inference_kernel``;
    :meth:`MistralTiny.forward` dispatches here whenever gradients are
    off and the model is in eval mode, so ``generate``,
    ``generate_batch`` and the :class:`ContinuousScheduler` all share
    this path without changes.  Returns raw ``(B, T, vocab)`` logits.
    """
    if isinstance(attn_mask, Tensor):
        attn_mask = attn_mask.data
    embed = model.tok_embed
    if isinstance(embed, QuantizedEmbedding):
        x = embed.lookup_np(token_ids)
    else:
        x = embed.weight.data[token_ids]
    for i, block in enumerate(model.blocks):
        x = _block_np(block, x, cache[i] if cache is not None else None, positions, attn_mask)
    x = _rmsnorm_np(model.final_norm, x)
    if model.lm_head is not None:
        return linear_np(model.lm_head, x)
    if isinstance(embed, QuantizedEmbedding):
        return embed.project_np(x)
    return np.matmul(x, embed.weight.data.swapaxes(-1, -2))
