"""KV caches for incremental decoding.

Generation re-uses the attention keys/values of already-processed
tokens instead of re-running the full prefix each step.  With a sliding
window of ``w`` the cache is a *rolling buffer*: entries older than the
window can never be attended to again and are dropped — the same trick
Mistral uses to bound memory at long contexts.

Caches hold plain numpy arrays (decoding runs under ``no_grad``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class LayerKVCache:
    """Rolling key/value buffer for one attention layer.

    Shapes are ``(batch, n_heads, t, head_dim)``; ``offset`` is the
    absolute position of the first retained entry.
    """

    def __init__(self, window: int | None = None):
        self.window = window
        self.k: np.ndarray | None = None
        self.v: np.ndarray | None = None
        self.offset = 0

    def __len__(self) -> int:
        return 0 if self.k is None else self.k.shape[2]

    @property
    def next_position(self) -> int:
        """Absolute position of the next token to be appended."""
        return self.offset + len(self)

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new keys/values; return the full retained buffers."""
        if k.shape != v.shape:
            raise ShapeError(f"k shape {k.shape} != v shape {v.shape}")
        if self.k is None:
            self.k, self.v = k, v
        else:
            if k.shape[:2] != self.k.shape[:2] or k.shape[3] != self.k.shape[3]:
                raise ShapeError(
                    f"cache append shape {k.shape} incompatible with {self.k.shape}"
                )
            self.k = np.concatenate([self.k, k], axis=2)
            self.v = np.concatenate([self.v, v], axis=2)
        if self.window is not None and self.k.shape[2] > self.window:
            drop = self.k.shape[2] - self.window
            self.k = self.k[:, :, drop:]
            self.v = self.v[:, :, drop:]
            self.offset += drop
        return self.k, self.v


class KVCache:
    """Per-layer cache bundle for a full model."""

    def __init__(self, n_layers: int, window: int | None = None):
        if n_layers <= 0:
            raise ShapeError("n_layers must be positive")
        self.layers = [LayerKVCache(window) for _ in range(n_layers)]

    def __getitem__(self, index: int) -> LayerKVCache:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def next_position(self) -> int:
        return self.layers[0].next_position
