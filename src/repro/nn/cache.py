"""KV caches for incremental decoding.

Generation re-uses the attention keys/values of already-processed
tokens instead of re-running the full prefix each step.  Two layers of
reuse live here:

* :class:`LayerKVCache` / :class:`KVCache` — a **preallocated rolling
  buffer** per attention layer.  Appends write into reserved slots
  (amortized O(1) per token) instead of reallocating the whole buffer
  with ``np.concatenate`` every step, and with a sliding window of
  ``w`` the buffer is compacted in place so retained entries stay a
  contiguous view — the same trick Mistral uses to bound memory at
  long contexts.
* :class:`PrefixCache` — a trie keyed by token ids that stores
  immutable :class:`KVCacheSnapshot` objects for already-prefilled
  prompts.  Repeated behavior texts, shared few-shot / instruct
  preambles and repeat sampling seeds re-use the longest matching
  prefix via :meth:`KVCache.fork` instead of re-running prefill; hit /
  miss / saved-token counters are reported through :mod:`repro.obs`.

Caches hold plain numpy arrays (decoding runs under ``no_grad``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError

_MIN_CAPACITY = 64


def _read_only(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class LayerKVSnapshot:
    """Immutable copy of one layer's retained keys/values."""

    k: np.ndarray  # (batch, n_kv_heads, t, head_dim), read-only
    v: np.ndarray
    offset: int


@dataclass(frozen=True)
class KVCacheSnapshot:
    """Frozen state of a full :class:`KVCache` (one entry per layer).

    Snapshots are safe to share: the arrays are copies marked
    read-only, so no amount of decoding on a forked cache can corrupt
    them.  ``length`` is the number of *retained* positions;
    ``next_position`` the absolute position decoding resumes from.
    """

    layers: tuple[LayerKVSnapshot, ...]
    window: int | None

    @property
    def length(self) -> int:
        return self.layers[0].k.shape[2] if self.layers else 0

    @property
    def next_position(self) -> int:
        if not self.layers:
            return 0
        return self.layers[0].offset + self.length

    @property
    def nbytes(self) -> int:
        return sum(layer.k.nbytes + layer.v.nbytes for layer in self.layers)


class LayerKVCache:
    """Rolling key/value buffer for one attention layer.

    Shapes are ``(batch, n_heads, t, head_dim)``; ``offset`` is the
    absolute position of the first retained entry.  Internally the
    buffer is preallocated with slack: appends write into free slots,
    window trims advance the start index, and the retained span is
    compacted to the front only when it would run off the end of the
    buffer — amortized O(1) work per appended token, versus the
    O(T) (unwindowed: O(T^2) total) reallocation of a
    concatenate-per-step cache.
    """

    __slots__ = ("window", "offset", "_k", "_v", "_start", "_len")

    def __init__(self, window: int | None = None):
        if window is not None and window <= 0:
            raise ShapeError(f"window must be positive when set, got {window}")
        self.window = window
        self.offset = 0
        self._k: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._start = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def next_position(self) -> int:
        """Absolute position of the next token to be appended."""
        return self.offset + self._len

    @property
    def batch_size(self) -> int:
        return 0 if self._k is None else self._k.shape[0]

    @property
    def capacity(self) -> int:
        return 0 if self._k is None else self._k.shape[2]

    # -- internal buffer management ------------------------------------

    def _initial_capacity(self, t: int) -> int:
        if self.window is not None:
            # window + equal slack => one O(window) compaction per
            # ~window appended tokens.
            return max(self.window + max(self.window, t), t)
        return max(_MIN_CAPACITY, 2 * t)

    def _allocate(self, like: np.ndarray, t: int) -> None:
        batch, heads, _, head_dim = like.shape
        cap = self._initial_capacity(t)
        self._k = np.empty((batch, heads, cap, head_dim), dtype=like.dtype)
        self._v = np.empty_like(self._k)
        self._start = 0
        self._len = 0

    def _make_room(self, t: int) -> None:
        """Ensure ``t`` more slots are writable after the retained span."""
        cap = self.capacity
        need = self._len + t
        if self._start + need <= cap:
            return
        if need > cap:  # grow geometrically (unwindowed long decode)
            new_cap = cap
            while new_cap < need:
                new_cap *= 2
            k = np.empty(self._k.shape[:2] + (new_cap,) + self._k.shape[3:], dtype=self._k.dtype)
            v = np.empty_like(k)
            k[:, :, : self._len] = self._k[:, :, self._start : self._start + self._len]
            v[:, :, : self._len] = self._v[:, :, self._start : self._start + self._len]
            self._k, self._v = k, v
        else:
            # Compact the retained span to the front.  With a window the
            # buffer has >= window slack, so source and destination never
            # overlap; without one we only land here via the grow branch.
            if self._start < self._len:
                retained_k = self._k[:, :, self._start : self._start + self._len].copy()
                retained_v = self._v[:, :, self._start : self._start + self._len].copy()
            else:
                retained_k = self._k[:, :, self._start : self._start + self._len]
                retained_v = self._v[:, :, self._start : self._start + self._len]
            self._k[:, :, : self._len] = retained_k
            self._v[:, :, : self._len] = retained_v
        self._start = 0

    # -- public API ----------------------------------------------------

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new keys/values; return views of the retained buffers.

        The returned arrays are views into the internal buffer and are
        only valid until the next ``append`` — attention consumes them
        immediately within the same forward step.
        """
        if k.shape != v.shape:
            raise ShapeError(f"k shape {k.shape} != v shape {v.shape}")
        if k.ndim != 4:
            raise ShapeError(f"cache entries must be (batch, heads, t, head_dim), got {k.shape}")
        t = k.shape[2]
        if self._k is None:
            self._allocate(k, t)
        elif k.shape[:2] != self._k.shape[:2] or k.shape[3] != self._k.shape[3]:
            raise ShapeError(
                f"cache append shape {k.shape} incompatible with "
                f"{self._k.shape[:2] + (self._len,) + self._k.shape[3:]}"
            )
        self._make_room(t)
        end = self._start + self._len
        self._k[:, :, end : end + t] = k
        self._v[:, :, end : end + t] = v
        self._len += t
        if self.window is not None and self._len > self.window:
            drop = self._len - self.window
            self._start += drop
            self.offset += drop
            self._len = self.window
        return self.views()

    def views(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of the retained keys and values."""
        if self._k is None:
            raise ShapeError("cache is empty; nothing to view")
        span = slice(self._start, self._start + self._len)
        return self._k[:, :, span], self._v[:, :, span]

    def snapshot(self) -> LayerKVSnapshot:
        """An immutable (read-only, copied) view of the retained state."""
        if self._k is None:
            return LayerKVSnapshot(
                k=_read_only(np.empty((0, 0, 0, 0), dtype=np.float32)),
                v=_read_only(np.empty((0, 0, 0, 0), dtype=np.float32)),
                offset=self.offset,
            )
        k, v = self.views()
        return LayerKVSnapshot(k=_read_only(k.copy()), v=_read_only(v.copy()), offset=self.offset)

    @classmethod
    def from_arrays(
        cls, k: np.ndarray, v: np.ndarray, offset: int = 0, window: int | None = None
    ) -> "LayerKVCache":
        """A fresh cache whose retained span is a copy of ``k`` / ``v``."""
        cache = cls(window)
        if k.ndim == 4 and k.shape[2] > 0:
            cache._allocate(k, k.shape[2])
            cache._k[:, :, : k.shape[2]] = k
            cache._v[:, :, : k.shape[2]] = v
            cache._len = k.shape[2]
        cache.offset = offset
        return cache

    @classmethod
    def from_snapshot(
        cls, snap: LayerKVSnapshot, window: int | None = None
    ) -> "LayerKVCache":
        return cls.from_arrays(snap.k, snap.v, offset=snap.offset, window=window)

    def fork(self) -> "LayerKVCache":
        """An independent copy: decoding on the fork never touches this cache."""
        if self._k is None:
            fork = LayerKVCache(self.window)
            fork.offset = self.offset
            return fork
        k, v = self.views()
        return LayerKVCache.from_arrays(k, v, offset=self.offset, window=self.window)

    def trimmed(self, window: int | None) -> "LayerKVCache":
        """An independent copy keeping only the trailing ``window`` entries.

        Converts an untrimmed prefill cache into a rolling decode cache:
        every future query sits past the current end, so keys older than
        the window can never be visible again and are safe to drop.
        """
        if window is None or self._k is None:
            fork = self.fork()
            fork.window = window
            return fork
        k, v = self.views()
        keep = min(self._len, window)
        return LayerKVCache.from_arrays(
            k[:, :, self._len - keep :],
            v[:, :, self._len - keep :],
            offset=self.offset + self._len - keep,
            window=window,
        )

    def select_rows(self, indices) -> None:
        """Keep only the given batch rows (early retirement compaction)."""
        if self._k is None:
            return
        indices = np.asarray(indices, dtype=np.intp)
        span = slice(self._start, self._start + self._len)
        self._k = np.ascontiguousarray(self._k[indices][:, :, span])
        self._v = np.ascontiguousarray(self._v[indices][:, :, span])
        self._start = 0

    def admit_rows(self, other: "LayerKVCache") -> None:
        """Append another cache's batch rows to this one (ragged admit).

        The continuous scheduler uses this to merge a freshly prefilled
        batch into the live decode batch between steps.  Both caches
        must be zero-offset stacked caches (the batched-decode
        convention: per-row positions live in the caller's slot table)
        with matching head count and head dim.  Retained spans are
        padded with zeros to a common length; slots past a row's own
        valid span must stay hidden by the caller's additive mask
        (zero K/V keeps their scores finite, so the ``-1e9`` mask lanes
        underflow to exactly 0 in softmax).
        """
        if self._k is None or other._k is None:
            raise ShapeError("admit_rows() requires non-empty caches on both sides")
        if self.offset != 0 or other.offset != 0:
            raise ShapeError(
                f"admit_rows() requires zero-offset stacked caches, "
                f"got offsets {self.offset} and {other.offset}"
            )
        if self._k.shape[1] != other._k.shape[1] or self._k.shape[3] != other._k.shape[3]:
            raise ShapeError(
                f"admit_rows() head layout mismatch: {self._k.shape[1:2] + self._k.shape[3:]} "
                f"vs {other._k.shape[1:2] + other._k.shape[3:]}"
            )
        t = max(self._len, other._len)
        k_self, v_self = self.views()
        k_other, v_other = other.views()
        rows_self = k_self.shape[0]
        batch = rows_self + k_other.shape[0]
        cap = max(self.capacity, self._initial_capacity(t))
        new_k = np.zeros((batch, self._k.shape[1], cap, self._k.shape[3]), dtype=self._k.dtype)
        new_v = np.zeros_like(new_k)
        new_k[:rows_self, :, : self._len] = k_self
        new_v[:rows_self, :, : self._len] = v_self
        new_k[rows_self:, :, : other._len] = k_other
        new_v[rows_self:, :, : other._len] = v_other
        self._k, self._v = new_k, new_v
        self._start = 0
        self._len = t


class KVCache:
    """Per-layer cache bundle for a full model."""

    def __init__(self, n_layers: int, window: int | None = None):
        if n_layers <= 0:
            raise ShapeError("n_layers must be positive")
        self.layers = [LayerKVCache(window) for _ in range(n_layers)]
        self.window = window

    def __getitem__(self, index: int) -> LayerKVCache:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def next_position(self) -> int:
        return self.layers[0].next_position

    @property
    def batch_size(self) -> int:
        return self.layers[0].batch_size

    def snapshot(self) -> KVCacheSnapshot:
        """Freeze the current state (copied, read-only arrays)."""
        return KVCacheSnapshot(
            layers=tuple(layer.snapshot() for layer in self.layers),
            window=self.window,
        )

    @classmethod
    def from_snapshot(
        cls, snap: KVCacheSnapshot, window: int | None = "unset"  # type: ignore[assignment]
    ) -> "KVCache":
        """Rehydrate a writable cache from a snapshot.

        ``window`` defaults to the snapshot's own window; pass ``None``
        explicitly to disable trimming on the rehydrated cache (the
        batched decode path enforces the window via masks instead).
        """
        if not snap.layers:
            raise ShapeError("cannot rebuild a KVCache from an empty snapshot")
        if window == "unset":
            window = snap.window
        cache = cls.__new__(cls)
        cache.layers = [LayerKVCache.from_snapshot(layer, window=window) for layer in snap.layers]
        cache.window = window
        return cache

    def fork(self) -> "KVCache":
        """An independent deep copy sharing nothing with this cache."""
        cache = KVCache.__new__(KVCache)
        cache.layers = [layer.fork() for layer in self.layers]
        cache.window = self.window
        return cache

    def trimmed(self, window: int | None) -> "KVCache":
        """An independent copy trimmed to the trailing ``window`` entries."""
        cache = KVCache.__new__(KVCache)
        cache.layers = [layer.trimmed(window) for layer in self.layers]
        cache.window = window
        return cache

    def select_rows(self, indices) -> None:
        """Keep only the given batch rows in every layer."""
        for layer in self.layers:
            layer.select_rows(indices)


# ----------------------------------------------------------------------
# Prefix cache
# ----------------------------------------------------------------------


class _TrieNode:
    __slots__ = ("children", "key")

    def __init__(self):
        self.children: dict[int, _TrieNode] = {}
        self.key: tuple[int, ...] | None = None  # set when an entry ends here


@dataclass(frozen=True)
class PrefixEntry:
    """One cached prefill: frozen KV state plus the last-position logits."""

    key: tuple[int, ...]
    snapshot: KVCacheSnapshot
    logits: np.ndarray  # (vocab,), read-only — logits after the last prefix token

    @property
    def length(self) -> int:
        return len(self.key)

    @property
    def nbytes(self) -> int:
        return self.snapshot.nbytes + self.logits.nbytes


@dataclass
class PrefixCacheStats:
    hits: int = 0
    misses: int = 0
    tokens_saved: int = 0
    evictions: int = 0
    rejected: int = 0  # inserts refused by the admission policy
    invalidations: int = 0  # full flushes after a model weight change

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PrefixCache:
    """Trie-keyed LRU cache of prefilled prompt prefixes.

    ``lookup`` walks the query's token ids down the trie and returns
    the deepest stored entry — the longest cached prefix — so repeat
    behavior texts, shared instruction preambles and repeat sampling
    seeds skip the matching part of prefill entirely.  Matches shorter
    than ``min_match`` tokens are ignored (forking a cache for a
    two-token match costs more than it saves), and prefixes that short
    are never stored.

    Three policies bound the cache and keep it correct:

    * **LRU by entries and bytes** — eviction keeps at most ``capacity``
      entries and, when ``max_bytes`` is set, at most that many bytes of
      KV snapshots (each entry holds full per-layer K/V for its prompt,
      so entry count alone is a weak memory bound).
    * **Second-sighting admission** — while the cache has free room every
      prefix is stored, but once full a *new* key is only admitted after
      it has been seen before (tracked in a small fingerprint table).  A
      stream of unique one-off prompts therefore cannot churn out the
      genuinely shared preamble entries the cache exists for.
    * **Weight-version invalidation** — :meth:`sync` compares the owning
      model's ``weight_version`` counter and flushes every entry when the
      weights changed (finetune step, LoRA inject/merge, checkpoint
      load); cached KV/logits from old weights are never served.

    Counters (``generation.prefix_hits`` / ``generation.prefix_misses``
    / ``generation.prefill_tokens_saved`` / ``generation.prefix_evictions``
    / ``generation.prefix_rejected`` / ``generation.prefix_invalidations``)
    are registered on the :mod:`repro.obs` hub so ``repro obs report``
    shows prefix reuse next to the serving metrics.
    """

    def __init__(
        self,
        capacity: int = 64,
        min_match: int = 4,
        max_bytes: int | None = None,
        obs=None,
    ):
        if capacity <= 0:
            raise ShapeError(f"PrefixCache capacity must be positive, got {capacity}")
        if min_match < 1:
            raise ShapeError(f"min_match must be >= 1, got {min_match}")
        if max_bytes is not None and max_bytes <= 0:
            raise ShapeError(f"max_bytes must be positive when set, got {max_bytes}")
        self.capacity = capacity
        self.min_match = min_match
        self.max_bytes = max_bytes
        self._root = _TrieNode()
        self._entries: dict[tuple[int, ...], PrefixEntry] = {}
        self._order: list[tuple[int, ...]] = []  # LRU order, oldest first
        self._bytes = 0
        self._weight_version: int | None = None
        # Fingerprints of keys refused while full; a key seen here gets
        # admitted on its next insert.  Bounded FIFO (oldest forgotten).
        self._candidates: dict[tuple[int, ...], None] = {}
        self.stats = PrefixCacheStats()
        if obs is None:
            from repro.obs import get_observability

            obs = get_observability()
        metrics = obs.metrics
        self._m_hits = metrics.counter("generation.prefix_hits")
        self._m_misses = metrics.counter("generation.prefix_misses")
        self._m_saved = metrics.counter("generation.prefill_tokens_saved")
        self._m_evictions = metrics.counter("generation.prefix_evictions")
        self._m_rejected = metrics.counter("generation.prefix_rejected")
        self._m_invalidations = metrics.counter("generation.prefix_invalidations")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total bytes of stored KV snapshots and logits."""
        return self._bytes

    def sync(self, weight_version: int) -> None:
        """Flush every entry if the model's weights changed since last use.

        Generation calls this with the model's ``weight_version`` before
        any lookup/insert; a mismatch means the stored KV snapshots and
        logits were computed under old weights and must not be served.
        """
        if self._weight_version == weight_version:
            return
        if self._entries:
            self.stats.invalidations += 1
            self._m_invalidations.inc()
        self.clear()
        self._weight_version = weight_version

    def _touch(self, key: tuple[int, ...]) -> None:
        self._order.remove(key)
        self._order.append(key)

    def lookup(self, ids) -> PrefixEntry | None:
        """Longest stored prefix of ``ids`` (>= ``min_match`` tokens)."""
        node = self._root
        best: tuple[int, ...] | None = None
        for token in np.asarray(ids).reshape(-1).tolist():
            node = node.children.get(int(token))
            if node is None:
                break
            if node.key is not None:
                best = node.key
        if best is None or len(best) < self.min_match:
            self.stats.misses += 1
            self._m_misses.inc()
            return None
        self._touch(best)
        entry = self._entries[best]
        self.stats.hits += 1
        self.stats.tokens_saved += entry.length
        self._m_hits.inc()
        self._m_saved.inc(entry.length)
        return entry

    def insert(self, ids, snapshot: KVCacheSnapshot, logits: np.ndarray) -> PrefixEntry | None:
        """Store the prefilled state for ``ids`` (refreshes an existing key).

        Returns ``None`` when the prefix is not stored: keys shorter than
        ``min_match`` can never be returned by :meth:`lookup`, and once
        the cache is full a never-before-seen key must be sighted twice
        before it is admitted (so one-off prompts cannot evict shared
        preambles).
        """
        key = tuple(int(t) for t in np.asarray(ids).reshape(-1).tolist())
        if not key:
            raise ShapeError("cannot cache an empty prefix")
        if len(key) < self.min_match:
            return None
        logits = _read_only(np.asarray(logits).reshape(-1).copy())
        entry = PrefixEntry(key=key, snapshot=snapshot, logits=logits)
        if key in self._entries:
            self._bytes += entry.nbytes - self._entries[key].nbytes
            self._entries[key] = entry
            self._touch(key)
            self._shrink()
            return entry
        if not self._admit(key):
            self.stats.rejected += 1
            self._m_rejected.inc()
            return None
        node = self._root
        for token in key:
            node = node.children.setdefault(token, _TrieNode())
        node.key = key
        self._entries[key] = entry
        self._order.append(key)
        self._bytes += entry.nbytes
        self._shrink()
        return entry

    def _admit(self, key: tuple[int, ...]) -> bool:
        """Second-sighting admission: free room admits; full requires a re-sight."""
        full = len(self._entries) >= self.capacity or (
            self.max_bytes is not None and self._bytes >= self.max_bytes
        )
        if not full:
            self._candidates.pop(key, None)
            return True
        if key in self._candidates:
            del self._candidates[key]
            return True
        self._candidates[key] = None
        while len(self._candidates) > 4 * self.capacity:
            del self._candidates[next(iter(self._candidates))]
        return False

    def _shrink(self) -> None:
        """Evict LRU entries to satisfy the entry and byte bounds.

        The newest entry is always retained, so a single prefix larger
        than ``max_bytes`` still caches (memory is bounded by
        ``max(max_bytes, one entry)``).
        """
        while len(self._entries) > self.capacity or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            self._evict(self._order[0])

    def _evict(self, key: tuple[int, ...]) -> None:
        self._order.remove(key)
        self._bytes -= self._entries[key].nbytes
        del self._entries[key]
        self.stats.evictions += 1
        self._m_evictions.inc()
        # Walk down recording the path, then prune childless entry-less nodes.
        path = [self._root]
        for token in key:
            path.append(path[-1].children[token])
        path[-1].key = None
        for depth in range(len(key), 0, -1):
            node = path[depth]
            if node.children or node.key is not None:
                break
            del path[depth - 1].children[key[depth - 1]]

    def clear(self) -> None:
        self._root = _TrieNode()
        self._entries.clear()
        self._order.clear()
        self._candidates.clear()
        self._bytes = 0
