"""MistralTiny: a laptop-scale causal LM with Mistral's architecture.

RMSNorm pre-normalization, rotary embeddings, grouped-query sliding-window
attention, SwiGLU feed-forward, and an optional tied LM head — the same
family as the 7B base model the paper fine-tunes, shrunk so that full
fine-tuning, LoRA adaptation and per-sample gradient tracing (TracSeq)
run in seconds.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.tensor import Tensor, cross_entropy, is_grad_enabled
from repro.tensor.random import default_rng
from repro.nn.attention import MultiHeadAttention
from repro.nn.cache import KVCache
from repro.nn.layers import Dropout, Embedding, Linear, RMSNorm
from repro.nn.mlp import SwiGLU
from repro.nn.module import Module, ModuleList


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters for :class:`MistralTiny`.

    Defaults are the "test-size" model; benchmark presets live in
    :mod:`repro.config`.
    """

    vocab_size: int = 256
    d_model: int = 64
    n_layers: int = 2
    n_heads: int = 4
    n_kv_heads: int = 2
    d_ff: int = 128
    max_seq_len: int = 128
    sliding_window: int | None = 64
    rope_theta: float = 10000.0
    dropout: float = 0.0
    tie_embeddings: bool = True

    def __post_init__(self):
        if self.vocab_size <= 0:
            raise ConfigError("vocab_size must be positive")
        if self.d_model % self.n_heads != 0:
            raise ConfigError(
                f"d_model={self.d_model} must be divisible by n_heads={self.n_heads}"
            )
        if self.n_heads % self.n_kv_heads != 0:
            raise ConfigError(
                f"n_heads={self.n_heads} must be divisible by n_kv_heads={self.n_kv_heads}"
            )
        if (self.d_model // self.n_heads) % 2 != 0:
            raise ConfigError("head dim must be even for RoPE")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ModelConfig":
        return cls(**data)


class TransformerBlock(Module):
    """Pre-norm transformer block: ``x + attn(norm(x))``, ``x + ffn(norm(x))``."""

    def __init__(self, config: ModelConfig, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.attn_norm = RMSNorm(config.d_model)
        self.attn = MultiHeadAttention(
            d_model=config.d_model,
            n_heads=config.n_heads,
            n_kv_heads=config.n_kv_heads,
            max_seq_len=config.max_seq_len,
            sliding_window=config.sliding_window,
            rope_theta=config.rope_theta,
            dropout=config.dropout,
            rng=rng,
        )
        self.ffn_norm = RMSNorm(config.d_model)
        self.ffn = SwiGLU(config.d_model, config.d_ff, dropout=config.dropout, rng=rng)

    def forward(self, x: Tensor, cache=None, positions=None, attn_mask=None) -> Tensor:
        x = x + self.attn(self.attn_norm(x), cache=cache, positions=positions, attn_mask=attn_mask)
        x = x + self.ffn(self.ffn_norm(x))
        return x


class MistralTiny(Module):
    """Causal language model over integer token ids.

    ``forward`` maps ``(batch, seq)`` int arrays to ``(batch, seq, vocab)``
    logits; :meth:`loss` adds next-token cross entropy with the usual
    shift-by-one and ``-100`` masking, which the instruction-tuning code
    uses to supervise only the answer span.
    """

    def __init__(self, config: ModelConfig, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.config = config
        self.tok_embed = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = ModuleList(TransformerBlock(config, rng=rng) for _ in range(config.n_layers))
        self.final_norm = RMSNorm(config.d_model)
        if config.tie_embeddings:
            self.lm_head = None
        else:
            self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)
        # Set by quantize_model(): a raw-numpy forward used whenever
        # gradients are off and the model is in eval mode.  None on
        # float models, which keep the autograd path below unchanged.
        self._inference_kernel = None

    def forward(self, token_ids: np.ndarray, cache=None, positions=None, attn_mask=None) -> Tensor:
        """Logits for ``token_ids``.

        With ``cache`` (a :class:`~repro.nn.cache.KVCache`), ``token_ids``
        holds only the *new* tokens: the cached prefix supplies attention
        keys/values and absolute positions advance automatically.
        ``positions`` overrides the RoPE positions (``(T,)`` shared or
        ``(B, T)`` per-row) and ``attn_mask`` replaces the internal
        causal/sliding mask — both are used by the batched ragged decode
        loop in :mod:`repro.nn.generation`.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        if token_ids.ndim != 2:
            raise ShapeError(f"token_ids must be (batch, seq), got shape {token_ids.shape}")
        if positions is not None:
            positions = np.asarray(positions)
            max_pos = int(positions.max(initial=0))
            if max_pos >= self.config.max_seq_len:
                raise ShapeError(
                    f"position {max_pos} exceeds max_seq_len {self.config.max_seq_len} "
                    "(RoPE table would overflow)"
                )
        else:
            start = cache.next_position if cache is not None else 0
            if start + token_ids.shape[1] > self.config.max_seq_len:
                raise ShapeError(
                    f"sequence length {start + token_ids.shape[1]} exceeds max_seq_len "
                    f"{self.config.max_seq_len}"
                )
        kernel = self._inference_kernel
        if kernel is not None and not self.training and not is_grad_enabled():
            return Tensor(kernel(self, token_ids, cache, positions, attn_mask))
        x = self.embed_dropout(self.tok_embed(token_ids))
        for i, block in enumerate(self.blocks):
            x = block(
                x,
                cache=cache[i] if cache is not None else None,
                positions=positions,
                attn_mask=attn_mask,
            )
        x = self.final_norm(x)
        if self.lm_head is not None:
            return self.lm_head(x)
        return self.tok_embed.project(x)

    def hidden_states(self, token_ids: np.ndarray) -> Tensor:
        """Final-norm hidden states ``(batch, seq, d_model)`` (no LM head).

        Used by :class:`~repro.nn.classifier.SequenceClassifier` to attach
        a task head to the same backbone.
        """
        token_ids = np.atleast_2d(np.asarray(token_ids))
        if token_ids.shape[1] > self.config.max_seq_len:
            raise ShapeError(
                f"sequence length {token_ids.shape[1]} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )
        x = self.embed_dropout(self.tok_embed(token_ids))
        for block in self.blocks:
            x = block(x)
        return self.final_norm(x)

    def make_cache(self) -> KVCache:
        """A fresh KV cache sized for this model's layers and window."""
        return KVCache(self.config.n_layers, window=self.config.sliding_window)

    def loss(self, token_ids: np.ndarray, labels: np.ndarray | None = None) -> Tensor:
        """Next-token cross entropy.

        ``labels`` defaults to ``token_ids``; positions whose *label* is
        ``-100`` are ignored.  Internally logits at position ``t`` predict
        the label at position ``t + 1``.
        """
        token_ids = np.atleast_2d(np.asarray(token_ids))
        if labels is None:
            labels = token_ids
        labels = np.atleast_2d(np.asarray(labels))
        if labels.shape != token_ids.shape:
            raise ShapeError(
                f"labels shape {labels.shape} must match token_ids shape {token_ids.shape}"
            )
        logits = self.forward(token_ids)
        shifted_logits = logits[:, :-1, :]
        shifted_labels = labels[:, 1:]
        return cross_entropy(shifted_logits, shifted_labels)
