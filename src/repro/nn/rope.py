"""Rotary positional embeddings (RoPE), split-half convention.

Mistral applies RoPE to queries and keys.  The table of cosines/sines is
precomputed up to ``max_seq_len`` and treated as a constant in the graph.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor import Tensor, concat


class RotaryEmbedding:
    """Precomputed RoPE tables.

    Parameters
    ----------
    head_dim:
        Per-head dimension (must be even).
    max_seq_len:
        Longest sequence the table covers.
    theta:
        Base frequency (Mistral uses 10000.0).
    """

    def __init__(self, head_dim: int, max_seq_len: int, theta: float = 10000.0):
        if head_dim % 2 != 0:
            raise ShapeError(f"RoPE head_dim must be even, got {head_dim}")
        self.head_dim = head_dim
        self.max_seq_len = max_seq_len
        half = head_dim // 2
        freqs = 1.0 / (theta ** (np.arange(half, dtype=np.float64) / half))
        angles = np.outer(np.arange(max_seq_len, dtype=np.float64), freqs)
        self._cos = np.cos(angles).astype(np.float32)  # (max_seq_len, half)
        self._sin = np.sin(angles).astype(np.float32)

    def cos_sin(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cos/sin tables gathered at ``positions``, broadcast-ready.

        Returns arrays shaped ``(T, half)`` for ``(T,)`` positions or
        ``(B, 1, T, half)`` for ``(B, T)`` per-row positions, so either
        broadcasts over a ``(B, H, T, half)`` activation.  Shared by the
        autograd :meth:`apply` and the fused raw-numpy inference kernel
        in :mod:`repro.nn.quant`.
        """
        positions = np.asarray(positions)
        if positions.ndim > 2:
            raise ShapeError(f"positions must be (T,) or (B, T), got shape {positions.shape}")
        if positions.max(initial=0) >= self.max_seq_len:
            raise ShapeError(
                f"position {positions.max()} exceeds RoPE table length {self.max_seq_len}"
            )
        cos_table = self._cos[positions]  # (T, half) or (B, T, half)
        sin_table = self._sin[positions]
        if positions.ndim == 2:  # broadcast per-row tables over the head axis
            cos_table = cos_table[:, None, :, :]
            sin_table = sin_table[:, None, :, :]
        return cos_table, sin_table

    def apply(self, x: Tensor, positions: np.ndarray | None = None) -> Tensor:
        """Rotate ``x`` of shape ``(B, H, T, head_dim)`` by position.

        ``positions`` defaults to ``0..T-1``; pass explicit positions when
        decoding incrementally with a KV cache.  A ``(T,)`` array is
        shared across the batch; a ``(B, T)`` array gives every row its
        own positions (ragged batched decoding).
        """
        seq_len = x.shape[-2]
        if positions is None:
            positions = np.arange(seq_len)
        cos_table, sin_table = self.cos_sin(positions)
        half = self.head_dim // 2
        cos = Tensor(cos_table)  # broadcasts over (B, H, T, half)
        sin = Tensor(sin_table)
        x1 = x[..., :half]
        x2 = x[..., half:]
        rotated_first = x1 * cos - x2 * sin
        rotated_second = x1 * sin + x2 * cos
        return concat([rotated_first, rotated_second], axis=-1)

    def apply_np(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Raw-numpy :meth:`apply` for the fused inference path (no graph)."""
        cos, sin = self.cos_sin(positions)
        half = self.head_dim // 2
        x1 = x[..., :half]
        x2 = x[..., half:]
        return np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)
