"""Continuous batching: admit new prefills into a running decode batch.

:func:`~repro.nn.generation.generate_batch` amortizes decode across a
*fixed* set of prompts: everything prefills together, and a request that
arrives one step after the batch launched waits for the whole batch to
finish (head-of-line blocking).  Production inference schedulers (vLLM,
Orca-style iteration-level scheduling) instead run **one** decode loop
forever and splice freshly prefilled rows into the live batch between
steps, so the batch stays full under staggered arrivals.

:class:`ContinuousScheduler` is that loop.  Each :meth:`~ContinuousScheduler.step`:

1. **Admits** up to ``max_prefills_per_step`` waiting prompts (while the
   batch has fewer than ``max_live_rows`` live rows): one padded prefill
   forward for the cohort, first token sampled from the prefill logits,
   then the new rows are merged into the live
   :class:`~repro.nn.generation.DecodeState` via the ragged
   ``LayerKVCache.admit_rows`` path.
2. **Decodes** one token for every live row — the same masked batched
   step as ``generate_batch`` — and **retires** rows at stop tokens or
   ``max_new_tokens`` via ``DecodeState.select_rows``.

Outputs are bit-identical to per-prompt :func:`~repro.nn.generation.generate`
and to :func:`~repro.nn.generation.generate_batch` for *any* arrival
interleaving: every row draws from its own ``default_rng(config.seed)``
stream, padding slots are additively masked (``-1e9`` lanes underflow to
exactly 0 in softmax), and per-row RoPE positions continue from each
row's own prompt length — so batch composition never changes a row's
logits.  The parity suite in ``tests/test_continuous.py`` pins this.

Tokens stream out through :class:`GenerationStream` (per-token callback
plus an exactly-once finalization guard); counters and gauges land in
the ``generation.continuous.*`` series (see ``docs/generation.md``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, ServingError
from repro.tensor import no_grad
from repro.tensor.random import default_rng
from repro.nn.cache import PrefixCache
from repro.nn.generation import (
    GenerationConfig,
    _check_budget,
    _prefill_batch,
    _sample_token,
)
from repro.nn.transformer import MistralTiny


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs governing how prefills interleave with the decode loop.

    max_live_rows:
        Ceiling on concurrently decoding rows.  Bounds the stacked KV
        cache's batch dimension (memory) and the per-step forward cost.
    max_prefills_per_step:
        How many waiting prompts may be prefilled and admitted per
        decode step — the prefill/decode interleave ratio.  Small values
        keep per-step latency flat for rows already decoding; large
        values fill an empty batch faster after a burst of arrivals.
    """

    max_live_rows: int = 8
    max_prefills_per_step: int = 4

    def __post_init__(self):
        if self.max_live_rows <= 0:
            raise ConfigError(f"max_live_rows must be positive, got {self.max_live_rows}")
        if self.max_prefills_per_step <= 0:
            raise ConfigError(
                f"max_prefills_per_step must be positive, got {self.max_prefills_per_step}"
            )


class GenerationStream:
    """Handle for one submitted prompt: tokens stream in as they decode.

    ``on_token(stream, token_id)`` fires synchronously per generated
    token (including the stop token, which — like ``generate`` — is part
    of the output).  Finalization is **exactly-once**: a second
    ``_finalize`` raises :class:`~repro.errors.ServingError` instead of
    silently overwriting the first outcome, mirroring the serving tier's
    ``PendingResult`` guard.
    """

    __slots__ = ("request_id", "_tokens", "_done", "_error", "_on_token")

    def __init__(
        self,
        request_id: str,
        on_token: Callable[["GenerationStream", int], None] | None = None,
    ):
        self.request_id = request_id
        self._tokens: list[int] = []
        self._done = False
        self._error: BaseException | None = None
        self._on_token = on_token

    @property
    def tokens(self) -> tuple[int, ...]:
        """Tokens generated so far (a prefix of the final output)."""
        return tuple(self._tokens)

    @property
    def done(self) -> bool:
        return self._done

    @property
    def error(self) -> BaseException | None:
        return self._error

    def result(self) -> list[int]:
        """The final token list; raises if failed or still decoding."""
        if not self._done:
            raise ServingError(f"stream {self.request_id!r} is still decoding")
        if self._error is not None:
            raise self._error
        return list(self._tokens)

    def _emit(self, token_id: int) -> None:
        if self._done:
            raise ServingError(f"stream {self.request_id!r} emitted a token after finalization")
        self._tokens.append(token_id)
        if self._on_token is not None:
            self._on_token(self, token_id)

    def _finalize(self, error: BaseException | None = None) -> None:
        if self._done:
            raise ServingError(f"stream {self.request_id!r} finalized twice")
        self._done = True
        self._error = error


class ContinuousScheduler:
    """One decode loop over an ever-changing set of live rows.

    Drive it by calling :meth:`step` repeatedly (or :meth:`drain` to run
    until idle).  ``submit`` never blocks and never runs the model —
    prompts wait in FIFO order until the admission policy lets them into
    the batch.  The scheduler is single-threaded by design; the serving
    tier's ``ContinuousEngine`` adds the queue/locking layer.
    """

    def __init__(
        self,
        model: MistralTiny,
        config: GenerationConfig | None = None,
        policy: AdmissionPolicy | None = None,
        prefix_cache: PrefixCache | None = None,
        obs=None,
    ):
        self.model = model
        self.config = config or GenerationConfig()
        self.policy = policy or AdmissionPolicy()
        self.prefix_cache = prefix_cache
        self._budget = _check_budget(model, self.config)
        if obs is None:
            from repro.obs import get_observability

            obs = get_observability()
        self.obs = obs
        registry = obs.metrics
        self._metrics = {
            "prefill_tokens": registry.counter("generation.prefill_tokens"),
            "tokens": registry.counter("generation.tokens_generated"),
        }
        self._m_admitted = registry.counter("generation.continuous.admitted")
        self._m_retired = registry.counter("generation.continuous.retired")
        self._m_stream = registry.counter("generation.continuous.stream_tokens")
        self._m_steps = registry.counter("generation.continuous.steps")
        self._g_live = registry.gauge("generation.continuous.live_rows")
        self._g_waiting = registry.gauge("generation.continuous.waiting")
        self._h_step = registry.histogram("generation.decode_step_s")

        self._waiting: deque[tuple[GenerationStream, np.ndarray]] = deque()
        self._state = None  # DecodeState | None
        self._live: list[GenerationStream] = []
        self._rngs: list = []  # per live row, parallel to _live
        self._tokens: list[int] = []  # next input token per live row
        self._counter = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @property
    def live_rows(self) -> int:
        return len(self._live)

    @property
    def waiting(self) -> int:
        return len(self._waiting)

    @property
    def has_work(self) -> bool:
        return bool(self._waiting) or self._state is not None

    def submit(
        self,
        prompt_ids,
        on_token: Callable[[GenerationStream, int], None] | None = None,
        request_id: str | None = None,
    ) -> GenerationStream:
        """Queue one prompt for admission; returns its stream handle.

        The prompt is left-truncated to the model's context budget, the
        same as ``generate``/``generate_batch``, so continuous outputs
        stay comparable token-for-token.
        """
        ids = np.asarray(prompt_ids, dtype=np.int64).reshape(-1)[-self._budget :]
        if len(ids) == 0:
            raise ConfigError("ContinuousScheduler.submit() received an empty prompt")
        if request_id is None:
            request_id = f"seq-{self._counter}"
        self._counter += 1
        stream = GenerationStream(request_id, on_token=on_token)
        self._waiting.append((stream, ids))
        self._g_waiting.set(len(self._waiting))
        return stream

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Admit what the policy allows, then decode one token per live row.

        Returns the number of tokens emitted this step (first tokens
        from freshly admitted rows included).  A step with nothing
        waiting and nothing live is a no-op returning 0.
        """
        if not self.has_work:
            return 0
        was_training = self.model.training
        if was_training:  # avoid a full module-tree walk on every step
            self.model.eval()
        try:
            with no_grad():
                emitted = self._admit()
                emitted += self._decode_step()
        finally:
            if was_training:
                self.model.train()
        self._m_steps.inc()
        self._g_live.set(len(self._live))
        self._g_waiting.set(len(self._waiting))
        return emitted

    def drain(self) -> None:
        """Step until every submitted prompt has finished."""
        while self.has_work:
            self.step()

    def _admit(self) -> int:
        take = min(
            len(self._waiting),
            self.policy.max_prefills_per_step,
            self.policy.max_live_rows - len(self._live),
        )
        if take <= 0:
            return 0
        if self.prefix_cache is not None:
            self.prefix_cache.sync(self.model.weight_version)
        cohort = [self._waiting.popleft() for _ in range(take)]
        rows = [ids for _, ids in cohort]
        state, last_logits = _prefill_batch(self.model, rows, self.prefix_cache, self._metrics)
        self._m_admitted.inc(take)
        self._metrics["tokens"].inc(take)

        keep: list[int] = []
        rngs = [default_rng(self.config.seed) for _ in cohort]
        for r, (stream, _ids) in enumerate(cohort):
            next_id = _sample_token(last_logits[r], self.config, rngs[r])
            stream._emit(next_id)
            self._m_stream.inc()
            if (
                next_id in self.config.stop_tokens
                or len(stream.tokens) == self.config.max_new_tokens
            ):
                stream._finalize()
                self._m_retired.inc()
                continue
            keep.append(r)
        if not keep:
            return take
        if len(keep) < take:
            state.select_rows(keep)
        if self._state is None:
            self._state = state
        else:
            self._state.admit(state)
        for r in keep:
            stream, _ids = cohort[r]
            self._live.append(stream)
            self._rngs.append(rngs[r])
            self._tokens.append(stream.tokens[-1])
        return take

    def _decode_step(self) -> int:
        if self._state is None:
            return 0
        started = time.perf_counter()
        mask = self._state.step_mask()
        step_ids = np.asarray(self._tokens, dtype=np.int64)[:, None]
        logits = self.model.forward(
            step_ids,
            cache=self._state.cache,
            positions=self._state.row_pos[:, None],
            attn_mask=mask,
        ).data[:, -1, :]
        self._state.advance()
        self._h_step.observe(time.perf_counter() - started)
        emitted = len(self._live)
        self._metrics["tokens"].inc(emitted)
        self._m_stream.inc(emitted)

        keep: list[int] = []
        next_tokens: list[int] = []
        for row, stream in enumerate(self._live):
            next_id = _sample_token(logits[row], self.config, self._rngs[row])
            stream._emit(next_id)
            if (
                next_id in self.config.stop_tokens
                or len(stream.tokens) == self.config.max_new_tokens
            ):
                stream._finalize()
                self._m_retired.inc()
                continue
            keep.append(row)
            next_tokens.append(next_id)
        if len(keep) < len(self._live):
            self._live = [self._live[row] for row in keep]
            self._rngs = [self._rngs[row] for row in keep]
            if self._live:
                self._state.select_rows(keep)
            else:
                self._state = None
        self._tokens = next_tokens
        return emitted

    # ------------------------------------------------------------------
    # Failure containment (serving tier hook)
    # ------------------------------------------------------------------

    def abort_all(self, error: BaseException) -> list[GenerationStream]:
        """Finalize every live and waiting stream with ``error``.

        The serving tier calls this when the model path fails mid-loop
        (chaos injection, replica crash): partial streams stay readable
        on the handles, the terminal result is the error, and the
        scheduler resets to empty so a fresh loop can start.
        """
        aborted = list(self._live) + [stream for stream, _ in self._waiting]
        for stream in aborted:
            stream._finalize(error)
            self._m_retired.inc()
        self._live = []
        self._rngs = []
        self._tokens = []
        self._waiting.clear()
        self._state = None
        self._g_live.set(0)
        self._g_waiting.set(0)
        return aborted


def generate_continuous(
    model: MistralTiny,
    prompts,
    config: GenerationConfig | None = None,
    arrivals: Sequence[int] | None = None,
    policy: AdmissionPolicy | None = None,
    prefix_cache: PrefixCache | None = None,
    obs=None,
) -> list[list[int]]:
    """Drive a :class:`ContinuousScheduler` over a fixed arrival schedule.

    ``arrivals[i]`` is the decode-step index at which prompt ``i``
    becomes available (default: all at step 0).  Returns one token list
    per prompt in input order — bit-identical to ``generate_batch`` on
    the same prompts/config regardless of the schedule.  This is the
    deterministic harness the parity tests and the saturation benchmark
    share.
    """
    prompts = list(prompts)
    if not prompts:
        return []
    if arrivals is None:
        arrivals = [0] * len(prompts)
    if len(arrivals) != len(prompts):
        raise ConfigError(
            f"arrivals has {len(arrivals)} entries for {len(prompts)} prompts"
        )
    scheduler = ContinuousScheduler(
        model, config=config, policy=policy, prefix_cache=prefix_cache, obs=obs
    )
    order = sorted(range(len(prompts)), key=lambda i: (arrivals[i], i))
    streams: list[GenerationStream | None] = [None] * len(prompts)
    cursor = 0
    step_no = 0
    while cursor < len(order) or scheduler.has_work:
        while cursor < len(order) and arrivals[order[cursor]] <= step_no:
            i = order[cursor]
            streams[i] = scheduler.submit(prompts[i], request_id=f"prompt-{i}")
            cursor += 1
        scheduler.step()
        step_no += 1
    return [list(stream.tokens) for stream in streams]
