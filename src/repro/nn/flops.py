"""Analytic parameter and FLOP counts for MistralTiny configurations.

Used by the throughput benchmark to report model-independent numbers
(tokens/second at a given compute budget) and by users sizing configs.
Counts follow the usual transformer accounting: a matmul of shapes
``(m, k) @ (k, n)`` costs ``2·m·k·n`` FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.transformer import ModelConfig


@dataclass(frozen=True)
class FlopsEstimate:
    """Parameter and per-forward FLOP estimates."""

    parameters: int
    flops_per_token: int
    attention_flops: int
    ffn_flops: int
    head_flops: int

    def tokens_per_second(self, flops_per_second: float) -> float:
        """Throughput implied by a sustained compute rate."""
        return flops_per_second / self.flops_per_token


def count_parameters(config: ModelConfig) -> int:
    """Exact parameter count for a :class:`MistralTiny` of this config."""
    d, v = config.d_model, config.vocab_size
    head_dim = d // config.n_heads
    kv_dim = config.n_kv_heads * head_dim
    per_block = (
        d * d          # wq
        + d * kv_dim   # wk
        + d * kv_dim   # wv
        + d * d        # wo
        + 3 * d * config.d_ff  # SwiGLU w1, w2, w3
        + 2 * d        # two RMSNorm scales
    )
    total = v * d + config.n_layers * per_block + d  # embeddings + blocks + final norm
    if not config.tie_embeddings:
        total += v * d
    return total


def estimate_flops(config: ModelConfig, seq_len: int | None = None) -> FlopsEstimate:
    """Per-token forward FLOPs at sequence length ``seq_len``.

    Attention score/value matmuls scale with the *attended* length,
    which the sliding window caps at ``min(seq_len, window)``.
    """
    seq_len = seq_len or config.max_seq_len
    d, v = config.d_model, config.vocab_size
    head_dim = d // config.n_heads
    kv_dim = config.n_kv_heads * head_dim
    attended = min(seq_len, config.sliding_window or seq_len)

    proj = 2 * d * (d + 2 * kv_dim + d)          # q, k, v, o projections
    scores = 2 * 2 * d * attended                # QK^T and AV per token
    attention = config.n_layers * (proj + scores)
    ffn = config.n_layers * 2 * 3 * d * config.d_ff
    head = 2 * d * v

    return FlopsEstimate(
        parameters=count_parameters(config),
        flops_per_token=attention + ffn + head,
        attention_flops=attention,
        ffn_flops=ffn,
        head_flops=head,
    )
