"""Analytic parameter and FLOP counts for MistralTiny configurations.

Used by the throughput benchmark to report model-independent numbers
(tokens/second at a given compute budget) and by users sizing configs.
Counts follow the usual transformer accounting: a matmul of shapes
``(m, k) @ (k, n)`` costs ``2·m·k·n`` FLOPs (``m·k·n`` MACs).

Two refinements matter for the serving stack:

* **Decode fast path** — :func:`estimate_decode_flops` prices one
  ``q_len == 1`` step against a KV cache of a given length: the
  attention score/value matmuls touch only the *retained* keys
  (``min(kv_len, window)``), which is what the continuous scheduler's
  steady-state cost actually is.
* **Quantized matmuls** — with ``quantized=True`` the weight matmuls
  (q/k/v/o projections, SwiGLU, LM head) run against int8 weights; the
  same multiply-accumulates happen, but they are reported separately in
  ``int8_macs`` so memory-bandwidth-bound decode can be reasoned about
  (int8 weights move 4x fewer bytes per MAC).  Activation-by-activation
  matmuls (QK^T, AV) stay float either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.transformer import ModelConfig


@dataclass(frozen=True)
class FlopsEstimate:
    """Parameter and per-forward FLOP estimates.

    ``int8_macs`` is the subset of the work (in multiply-accumulates,
    i.e. ``flops / 2``) executed against int8 weights; zero for a float
    model.  ``flops_per_token`` always counts total arithmetic.
    """

    parameters: int
    flops_per_token: int
    attention_flops: int
    ffn_flops: int
    head_flops: int
    int8_macs: int = 0

    def tokens_per_second(self, flops_per_second: float) -> float:
        """Throughput implied by a sustained compute rate."""
        return flops_per_second / self.flops_per_token

    @property
    def float_macs(self) -> int:
        """Multiply-accumulates executed against float weights/activations."""
        return self.flops_per_token // 2 - self.int8_macs


def count_parameters(config: ModelConfig) -> int:
    """Exact parameter count for a :class:`MistralTiny` of this config."""
    d, v = config.d_model, config.vocab_size
    head_dim = d // config.n_heads
    kv_dim = config.n_kv_heads * head_dim
    per_block = (
        d * d          # wq
        + d * kv_dim   # wk
        + d * kv_dim   # wv
        + d * d        # wo
        + 3 * d * config.d_ff  # SwiGLU w1, w2, w3
        + 2 * d        # two RMSNorm scales
    )
    total = v * d + config.n_layers * per_block + d  # embeddings + blocks + final norm
    if not config.tie_embeddings:
        total += v * d
    return total


def _weight_matmul_flops(config: ModelConfig) -> tuple[int, int, int]:
    """Per-token FLOPs of the weight matmuls: (projections, ffn, head)."""
    d, v = config.d_model, config.vocab_size
    head_dim = d // config.n_heads
    kv_dim = config.n_kv_heads * head_dim
    proj = 2 * d * (d + 2 * kv_dim + d)          # q, k, v, o projections
    ffn = 2 * 3 * d * config.d_ff
    head = 2 * d * v
    return proj, ffn, head


def estimate_flops(
    config: ModelConfig, seq_len: int | None = None, quantized: bool = False
) -> FlopsEstimate:
    """Per-token forward FLOPs at sequence length ``seq_len``.

    Attention score/value matmuls scale with the *attended* length,
    which the sliding window caps at ``min(seq_len, window)``.  With
    ``quantized=True`` the weight matmuls are additionally reported in
    ``int8_macs`` (total FLOPs are unchanged — quantization changes
    bytes moved, not arithmetic done).
    """
    seq_len = seq_len or config.max_seq_len
    d = config.d_model
    attended = min(seq_len, config.sliding_window or seq_len)

    proj, per_layer_ffn, head = _weight_matmul_flops(config)
    scores = 2 * 2 * d * attended                # QK^T and AV per token
    attention = config.n_layers * (proj + scores)
    ffn = config.n_layers * per_layer_ffn
    int8_macs = (config.n_layers * (proj + per_layer_ffn) + head) // 2 if quantized else 0

    return FlopsEstimate(
        parameters=count_parameters(config),
        flops_per_token=attention + ffn + head,
        attention_flops=attention,
        ffn_flops=ffn,
        head_flops=head,
        int8_macs=int8_macs,
    )


def estimate_decode_flops(
    config: ModelConfig, kv_len: int, quantized: bool = False
) -> FlopsEstimate:
    """FLOPs for one decode fast-path step (``q_len == 1``) at ``kv_len``.

    The single query attends over the retained cache only — the rolling
    window bounds it at ``min(kv_len, window)`` keys — and no mask is
    built, so the cost is exactly the weight matmuls plus one QK^T/AV
    pair over the retained span.  This is the steady-state per-token
    cost of ``generate``/``generate_batch``/``ContinuousScheduler``.
    """
    if kv_len < 0:
        raise ValueError(f"kv_len must be non-negative, got {kv_len}")
    d = config.d_model
    attended = min(kv_len + 1, config.sliding_window or (kv_len + 1))

    proj, per_layer_ffn, head = _weight_matmul_flops(config)
    scores = 2 * 2 * d * attended
    attention = config.n_layers * (proj + scores)
    ffn = config.n_layers * per_layer_ffn
    int8_macs = (config.n_layers * (proj + per_layer_ffn) + head) // 2 if quantized else 0

    return FlopsEstimate(
        parameters=count_parameters(config),
        flops_per_token=attention + ffn + head,
        attention_flops=attention,
        ffn_flops=ffn,
        head_flops=head,
        int8_macs=int8_macs,
    )
