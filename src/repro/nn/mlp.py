"""Feed-forward blocks: SwiGLU (Mistral's) and a plain SiLU MLP."""

from __future__ import annotations

from repro.tensor import Tensor
from repro.tensor.random import default_rng
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module


class SwiGLU(Module):
    """Gated feed-forward: ``W2( SiLU(W1 x) * W3 x )``.

    This is the FFN used by Mistral/Llama; the gate uses the SiLU
    activation named in Table 3 of the paper.
    """

    def __init__(self, d_model: int, d_ff: int, dropout: float = 0.0, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.w1 = Linear(d_model, d_ff, bias=False, rng=rng)  # gate projection
        self.w3 = Linear(d_model, d_ff, bias=False, rng=rng)  # up projection
        self.w2 = Linear(d_ff, d_model, bias=False, rng=rng)  # down projection
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.w2(self.w1(x).silu() * self.w3(x)))


class MLP(Module):
    """Plain two-layer MLP with a SiLU nonlinearity."""

    def __init__(self, d_model: int, d_ff: int, dropout: float = 0.0, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.fc1 = Linear(d_model, d_ff, rng=rng)
        self.fc2 = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc2(self.fc1(x).silu()))
