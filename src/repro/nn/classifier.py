"""Sequence classification head on the MistralTiny backbone.

Table 3 lists ZiGong's task type as "Text Generation & Classification";
this is the classification half: mean-pool the backbone's hidden states
over non-padding positions and project to a single logit, trained with
binary cross entropy.  The discriminative counterpart to generate-and-
parse classification (compared head-to-head in
``benchmarks/bench_ablation_head.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.tensor import Tensor, no_grad
from repro.tensor.random import default_rng
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.transformer import MistralTiny, ModelConfig
from repro.optim.adamw import AdamW


def pad_sequences(sequences: Sequence[Sequence[int]], pad_id: int = 0) -> np.ndarray:
    """Right-pad ragged token sequences into one ``(batch, width)`` array.

    The companion of every batched scoring path: padding positions carry
    ``pad_id`` and are masked out downstream (mean-pooling here, causal
    attention plus last-real-position indexing in the LM path), so a
    padded batch scores identically to one-at-a-time calls.
    """
    if not sequences:
        raise ShapeError("pad_sequences() received no sequences")
    if any(len(seq) == 0 for seq in sequences):
        raise ShapeError("pad_sequences() received an empty sequence")
    width = max(len(seq) for seq in sequences)
    batch = np.full((len(sequences), width), pad_id, dtype=np.int64)
    for row, seq in enumerate(sequences):
        batch[row, : len(seq)] = seq
    return batch


class SequenceClassifier(Module):
    """Backbone + mean-pool + linear head -> P(positive)."""

    def __init__(self, config: ModelConfig, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.config = config
        self.backbone = MistralTiny(config, rng=rng)
        self.head = Linear(config.d_model, 1, rng=rng)
        self.pad_id = 0

    def _pooled(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.atleast_2d(np.asarray(token_ids))
        hidden = self.backbone.hidden_states(token_ids)  # (B, T, D)
        mask = (token_ids != self.pad_id).astype(np.float32)[:, :, None]
        counts = np.maximum(mask.sum(axis=1), 1.0)  # (B, 1)
        summed = (hidden * Tensor(mask)).sum(axis=1)  # (B, D)
        return summed * Tensor(1.0 / counts)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Raw classification logits, shape ``(batch,)``."""
        return self.head(self._pooled(token_ids)).reshape(-1)

    def loss(self, token_ids: np.ndarray, labels: np.ndarray) -> Tensor:
        """Numerically stable binary cross entropy on the logits."""
        labels = np.asarray(labels, dtype=np.float32).reshape(-1)
        token_ids = np.atleast_2d(np.asarray(token_ids))
        if labels.shape[0] != token_ids.shape[0]:
            raise ShapeError(
                f"{labels.shape[0]} labels for batch of {token_ids.shape[0]}"
            )
        z = self.forward(token_ids)
        y = Tensor(labels)
        # max(z, 0) - z*y + log(1 + exp(-|z|))
        return (z.relu() - z * y + ((-(z.abs())).exp() + 1.0).log()).mean()

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        """P(positive) per sequence (no gradients)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                z = self.forward(token_ids)
        finally:
            if was_training:
                self.train()
        return 1.0 / (1.0 + np.exp(-z.data))

    def predict_proba_sequences(
        self, token_sequences: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """P(positive) for ragged token sequences in one padded forward pass.

        Sequences of unequal length are right-padded with ``self.pad_id``
        and masked together; equivalent to calling :meth:`predict_proba`
        per sequence at a fraction of the cost.
        """
        return self.predict_proba(pad_sequences(token_sequences, pad_id=self.pad_id))

    def fit(
        self,
        token_sequences: Sequence[list[int]],
        labels: Sequence[int],
        epochs: int = 5,
        batch_size: int = 8,
        lr: float = 1e-3,
        seed: int = 0,
        pad_id: int = 0,
    ) -> list[float]:
        """Train the head (and backbone) with AdamW; returns epoch losses."""
        if len(token_sequences) != len(labels):
            raise ConfigError(
                f"{len(token_sequences)} sequences but {len(labels)} labels"
            )
        if not token_sequences:
            raise ConfigError("fit() received no sequences")
        self.pad_id = pad_id
        labels = np.asarray(labels, dtype=np.float32)
        optimizer = AdamW(self.parameters(), lr=lr)
        rng = np.random.default_rng(seed)
        history = []
        for _ in range(epochs):
            order = rng.permutation(len(token_sequences))
            epoch_losses = []
            for start in range(0, len(order), batch_size):
                idx = order[start : start + batch_size]
                batch = pad_sequences([token_sequences[i] for i in idx], pad_id=pad_id)
                optimizer.zero_grad()
                loss = self.loss(batch, labels[idx])
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            history.append(float(np.mean(epoch_losses)))
        return history
