"""Sequence classification head on the MistralTiny backbone.

Table 3 lists ZiGong's task type as "Text Generation & Classification";
this is the classification half: mean-pool the backbone's hidden states
over non-padding positions and project to a single logit, trained with
binary cross entropy.  The discriminative counterpart to generate-and-
parse classification (compared head-to-head in
``benchmarks/bench_ablation_head.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.tensor import Tensor, no_grad
from repro.tensor.random import default_rng
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.transformer import MistralTiny, ModelConfig
from repro.optim.adamw import AdamW


class SequenceClassifier(Module):
    """Backbone + mean-pool + linear head -> P(positive)."""

    def __init__(self, config: ModelConfig, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.config = config
        self.backbone = MistralTiny(config, rng=rng)
        self.head = Linear(config.d_model, 1, rng=rng)
        self.pad_id = 0

    def _pooled(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.atleast_2d(np.asarray(token_ids))
        hidden = self.backbone.hidden_states(token_ids)  # (B, T, D)
        mask = (token_ids != self.pad_id).astype(np.float32)[:, :, None]
        counts = np.maximum(mask.sum(axis=1), 1.0)  # (B, 1)
        summed = (hidden * Tensor(mask)).sum(axis=1)  # (B, D)
        return summed * Tensor(1.0 / counts)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Raw classification logits, shape ``(batch,)``."""
        return self.head(self._pooled(token_ids)).reshape(-1)

    def loss(self, token_ids: np.ndarray, labels: np.ndarray) -> Tensor:
        """Numerically stable binary cross entropy on the logits."""
        labels = np.asarray(labels, dtype=np.float32).reshape(-1)
        token_ids = np.atleast_2d(np.asarray(token_ids))
        if labels.shape[0] != token_ids.shape[0]:
            raise ShapeError(
                f"{labels.shape[0]} labels for batch of {token_ids.shape[0]}"
            )
        z = self.forward(token_ids)
        y = Tensor(labels)
        # max(z, 0) - z*y + log(1 + exp(-|z|))
        return (z.relu() - z * y + ((-(z.abs())).exp() + 1.0).log()).mean()

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        """P(positive) per sequence (no gradients)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                z = self.forward(token_ids)
        finally:
            if was_training:
                self.train()
        return 1.0 / (1.0 + np.exp(-z.data))

    def fit(
        self,
        token_sequences: Sequence[list[int]],
        labels: Sequence[int],
        epochs: int = 5,
        batch_size: int = 8,
        lr: float = 1e-3,
        seed: int = 0,
        pad_id: int = 0,
    ) -> list[float]:
        """Train the head (and backbone) with AdamW; returns epoch losses."""
        if len(token_sequences) != len(labels):
            raise ConfigError(
                f"{len(token_sequences)} sequences but {len(labels)} labels"
            )
        if not token_sequences:
            raise ConfigError("fit() received no sequences")
        self.pad_id = pad_id
        labels = np.asarray(labels, dtype=np.float32)
        optimizer = AdamW(self.parameters(), lr=lr)
        rng = np.random.default_rng(seed)
        history = []
        for _ in range(epochs):
            order = rng.permutation(len(token_sequences))
            epoch_losses = []
            for start in range(0, len(order), batch_size):
                idx = order[start : start + batch_size]
                batch_seqs = [token_sequences[i] for i in idx]
                width = max(len(s) for s in batch_seqs)
                batch = np.full((len(idx), width), pad_id, dtype=np.int64)
                for row, seq in enumerate(batch_seqs):
                    batch[row, : len(seq)] = seq
                optimizer.zero_grad()
                loss = self.loss(batch, labels[idx])
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            history.append(float(np.mean(epoch_losses)))
        return history
