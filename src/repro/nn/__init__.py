"""Neural network library: modules, layers and the MistralTiny causal LM."""

from repro.nn.module import Buffer, Module, ModuleList, Parameter
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, RMSNorm
from repro.nn.rope import RotaryEmbedding
from repro.nn.attention import (
    MultiHeadAttention,
    fused_attention,
    rect_attention_mask,
    sliding_window_mask,
)
from repro.nn.cache import KVCache, KVCacheSnapshot, LayerKVCache, PrefixCache, PrefixEntry
from repro.nn.mlp import MLP, SwiGLU
from repro.nn.transformer import MistralTiny, ModelConfig, TransformerBlock
from repro.nn.classifier import SequenceClassifier, pad_sequences
from repro.nn.flops import FlopsEstimate, count_parameters, estimate_decode_flops, estimate_flops
from repro.nn.quant import (
    QuantizedEmbedding,
    QuantizedLinear,
    is_quantized,
    quantize_model,
    quantize_weight,
    weight_bytes,
)
from repro.nn.generation import (
    DecodeState,
    GenerationConfig,
    generate,
    generate_batch,
    next_token_logits,
)
from repro.nn.continuous import (
    AdmissionPolicy,
    ContinuousScheduler,
    GenerationStream,
    generate_continuous,
)

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Buffer",
    "Linear",
    "Embedding",
    "RMSNorm",
    "LayerNorm",
    "Dropout",
    "RotaryEmbedding",
    "MultiHeadAttention",
    "fused_attention",
    "sliding_window_mask",
    "rect_attention_mask",
    "KVCache",
    "KVCacheSnapshot",
    "LayerKVCache",
    "PrefixCache",
    "PrefixEntry",
    "SwiGLU",
    "MLP",
    "ModelConfig",
    "TransformerBlock",
    "MistralTiny",
    "SequenceClassifier",
    "pad_sequences",
    "GenerationConfig",
    "DecodeState",
    "generate",
    "generate_batch",
    "next_token_logits",
    "AdmissionPolicy",
    "ContinuousScheduler",
    "GenerationStream",
    "generate_continuous",
    "FlopsEstimate",
    "count_parameters",
    "estimate_flops",
    "estimate_decode_flops",
    "QuantizedLinear",
    "QuantizedEmbedding",
    "quantize_model",
    "quantize_weight",
    "is_quantized",
    "weight_bytes",
]
