"""Baseline models for the Table 2 comparison."""

from repro.baselines.expert import ExpertSystemModel
from repro.baselines.head import HeadClassifierModel
from repro.baselines.lm import LMClassifier
from repro.baselines.simple import MajorityClassModel, RandomGuessModel

__all__ = [
    "LMClassifier",
    "MajorityClassModel",
    "RandomGuessModel",
    "ExpertSystemModel",
    "HeadClassifierModel",
]
