"""Expert-system baselines: classic ML on the numeric features.

These play the role of the "SOTA expert system models" column in
Table 2 — production credit scorecards are logistic regressions or
boosted trees over engineered features.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.datasets.base import TabularDataset
from repro.ml.logistic import LogisticRegression
from repro.ml.stumps import GradientBoostedStumps
from repro.eval.harness import CreditModel, EvalSample, Prediction


class ExpertSystemModel(CreditModel):
    """A fitted classic-ML model evaluated through the benchmark harness."""

    def __init__(self, estimator, threshold: float = 0.5, name: str = "expert"):
        self.estimator = estimator
        self.threshold = threshold
        self.name = name

    @classmethod
    def logistic(cls, train: TabularDataset, **kwargs) -> "ExpertSystemModel":
        """Fit a from-scratch logistic regression on the train split."""
        estimator = LogisticRegression(**kwargs).fit(train.X, train.y)
        return cls(estimator, name="logistic")

    @classmethod
    def boosted_stumps(cls, train: TabularDataset, **kwargs) -> "ExpertSystemModel":
        """Fit gradient-boosted stumps on the train split."""
        estimator = GradientBoostedStumps(**kwargs).fit(train.X, train.y)
        return cls(estimator, name="boosted_stumps")

    def predict(self, sample: EvalSample) -> Prediction:
        if sample.features is None:
            raise EvaluationError("ExpertSystemModel needs samples with numeric features")
        proba = float(self.estimator.predict_proba(np.asarray(sample.features)[None, :])[0])
        return Prediction(label=int(proba >= self.threshold), score=proba)
