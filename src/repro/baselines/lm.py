"""LM-backed classifier: wraps any MistralTiny + tokenizer as a CreditModel.

Used both for ZiGong itself (fine-tuned model) and for un-tuned zero-shot
baselines (the Llama/Bloomz analogue in Table 2).  Predictions come from
free generation followed by answer parsing — this is what makes the Miss
metric meaningful — while the continuous score comes from the next-token
logits of the two answer words.

The generative read-out is the deployed hot path (Behavior Card, CALM
eval), so ``predict_many`` overrides the sequential default with one
batched decode (:func:`~repro.nn.generation.generate_batch`) plus one
padded scoring pass, and every classifier carries a
:class:`~repro.nn.cache.PrefixCache` so repeated prompts and shared
preambles skip prefill entirely.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.nn.cache import PrefixCache
from repro.nn.generation import GenerationConfig, generate, generate_batch, next_token_logits
from repro.nn.transformer import MistralTiny
from repro.tokenizer.base import BaseTokenizer
from repro.eval.harness import CreditModel, EvalSample, Prediction
from repro.eval.parsing import parse_answer


class LMClassifier(CreditModel):
    """Generate-and-parse classification with logit-based scoring."""

    def __init__(
        self,
        model: MistralTiny,
        tokenizer: BaseTokenizer,
        max_new_tokens: int = 4,
        name: str = "lm",
        prefix_cache_size: int = 64,
        prefix_cache_bytes: int | None = 64 * 1024 * 1024,
        obs=None,
    ):
        self.model = model
        self.tokenizer = tokenizer
        self.max_new_tokens = max_new_tokens
        self.name = name
        self.obs = obs
        # The prefix cache is weight-version-synced inside generate():
        # a finetune/LoRA-merge/checkpoint-load between calls flushes it,
        # so holding one classifier across training phases stays correct.
        self.prefix_cache = (
            PrefixCache(prefix_cache_size, max_bytes=prefix_cache_bytes, obs=obs)
            if prefix_cache_size > 0
            else None
        )

    def _prompt_ids(self, prompt: str) -> np.ndarray:
        ids = [self.tokenizer.bos_id] + self.tokenizer.encode(prompt) + [self.tokenizer.sep_id]
        limit = self.model.config.max_seq_len - self.max_new_tokens
        return np.asarray(ids[-limit:], dtype=np.int64)

    def _answer_first_token(self, text: str) -> int:
        ids = self.tokenizer.encode(text)
        if not ids:
            raise EvaluationError(f"answer text {text!r} encodes to nothing")
        return ids[0]

    def _generation_config(self) -> GenerationConfig:
        return GenerationConfig(
            max_new_tokens=self.max_new_tokens,
            stop_tokens=(self.tokenizer.eos_id,),
        )

    def generate_answer(self, prompt: str) -> str:
        """Free-running generation for the prompt (decoded, special-free)."""
        new_ids = generate(
            self.model,
            self._prompt_ids(prompt),
            self._generation_config(),
            prefix_cache=self.prefix_cache,
        )
        return self.tokenizer.decode(new_ids)

    def generate_answer_batch(self, prompts: Sequence[str]) -> list[str]:
        """Batched :meth:`generate_answer`: one decode loop for all prompts.

        Produces exactly the same strings as calling :meth:`generate_answer`
        per prompt (greedy decoding is deterministic and the batched path
        is parity-tested), but amortizes every forward pass across rows.
        """
        if not prompts:
            return []
        rows = [self._prompt_ids(p) for p in prompts]
        outputs = generate_batch(
            self.model,
            rows,
            self._generation_config(),
            prefix_cache=self.prefix_cache,
            obs=self.obs,
        )
        return [self.tokenizer.decode(ids) for ids in outputs]

    def score(self, prompt: str, positive_text: str, negative_text: str) -> float:
        """P(positive) from the two answer-token logits (softmax over both)."""
        logits = next_token_logits(self.model, self._prompt_ids(prompt))
        pos_id = self._answer_first_token(positive_text)
        neg_id = self._answer_first_token(negative_text)
        pair = np.array([logits[pos_id], logits[neg_id]], dtype=np.float64)
        pair -= pair.max()
        exp = np.exp(pair)
        return float(exp[0] / exp.sum())

    def score_batch(
        self,
        prompts: list[str],
        positive_text: str,
        negative_text: str,
    ) -> np.ndarray:
        """P(positive) for many prompts in one padded forward pass.

        Equivalent to calling :meth:`score` per prompt (verified in the
        tests) at a fraction of the cost — right-padding plus indexing
        each row's last real position works because causal attention
        ignores everything to the right.
        """
        if not prompts:
            raise EvaluationError("score_batch() received no prompts")
        from repro.tensor import no_grad

        from repro.nn.classifier import pad_sequences

        rows = [self._prompt_ids(p) for p in prompts]
        lengths = np.array([len(r) for r in rows])
        batch = pad_sequences(rows, pad_id=self.tokenizer.pad_id)
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                logits = self.model.forward(batch).data
        finally:
            if was_training:
                self.model.train()
        last = logits[np.arange(len(rows)), lengths - 1]  # (B, V)
        pos_id = self._answer_first_token(positive_text)
        neg_id = self._answer_first_token(negative_text)
        pair = np.stack([last[:, pos_id], last[:, neg_id]], axis=1).astype(np.float64)
        pair -= pair.max(axis=1, keepdims=True)
        exp = np.exp(pair)
        return exp[:, 0] / exp.sum(axis=1)

    def predict(self, sample: EvalSample) -> Prediction:
        text = self.generate_answer(sample.prompt)
        label = parse_answer(text, sample.positive_text, sample.negative_text)
        return Prediction(
            label=label,
            score=self.score(sample.prompt, sample.positive_text, sample.negative_text),
        )

    def predict_many(self, samples: Sequence[EvalSample]) -> list[Prediction]:
        """Batched prediction: one decode loop plus one scoring pass.

        Matches the sequential default (``[predict(s) for s in samples]``)
        label-for-label under greedy decoding; scoring batches are grouped
        by ``(positive_text, negative_text)`` so mixed-task sample lists
        still score correctly.
        """
        if not samples:
            return []
        texts = self.generate_answer_batch([s.prompt for s in samples])
        labels = [
            parse_answer(text, s.positive_text, s.negative_text)
            for text, s in zip(texts, samples)
        ]
        scores: list[float | None] = [None] * len(samples)
        groups: dict[tuple[str, str], list[int]] = {}
        for i, s in enumerate(samples):
            groups.setdefault((s.positive_text, s.negative_text), []).append(i)
        for (pos, neg), idx in groups.items():
            batch_scores = self.score_batch([samples[i].prompt for i in idx], pos, neg)
            for i, value in zip(idx, batch_scores):
                scores[i] = float(value)
        return [Prediction(label=l, score=s) for l, s in zip(labels, scores)]
