"""Trivial baselines: majority class and seeded random guessing."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.harness import CreditModel, EvalSample, Prediction


class MajorityClassModel(CreditModel):
    """Always answers the training majority class.

    This is the floor any model must beat on imbalanced fraud data —
    and the trap Table 2 shows several generic LLMs falling into.
    """

    name = "majority"

    def __init__(self, train_labels: Sequence[int]):
        labels = np.asarray(train_labels)
        if labels.size == 0:
            raise EvaluationError("MajorityClassModel needs training labels")
        self.majority = int(labels.mean() >= 0.5)
        self.base_rate = float(labels.mean())

    def predict(self, sample: EvalSample) -> Prediction:
        return Prediction(label=self.majority, score=self.base_rate)


class RandomGuessModel(CreditModel):
    """Uniform random answers, with an optional format-failure rate.

    ``miss_prob`` simulates a model that sometimes produces unparseable
    output (the FinMA failure mode in Table 2).
    """

    name = "random"

    def __init__(self, seed: int = 0, positive_prob: float = 0.5, miss_prob: float = 0.0):
        if not 0.0 <= positive_prob <= 1.0 or not 0.0 <= miss_prob <= 1.0:
            raise EvaluationError("probabilities must be in [0, 1]")
        self._rng = np.random.default_rng(seed)
        self.positive_prob = positive_prob
        self.miss_prob = miss_prob

    def predict(self, sample: EvalSample) -> Prediction:
        if self._rng.random() < self.miss_prob:
            return Prediction(label=None, score=float(self._rng.random()))
        label = int(self._rng.random() < self.positive_prob)
        return Prediction(label=label, score=float(self._rng.random()))
