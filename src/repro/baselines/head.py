"""Classification-head model as a benchmark participant."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.instruct import InstructExample
from repro.nn.classifier import SequenceClassifier
from repro.nn.transformer import ModelConfig
from repro.tokenizer.base import BaseTokenizer
from repro.eval.harness import CreditModel, EvalSample, Prediction


class HeadClassifierModel(CreditModel):
    """A :class:`SequenceClassifier` behind the CreditModel protocol.

    Unlike the generate-and-parse models it can never *miss* — the
    trade-off the head-vs-generative ablation quantifies.
    """

    def __init__(
        self,
        classifier: SequenceClassifier,
        tokenizer: BaseTokenizer,
        threshold: float = 0.5,
        name: str = "head",
    ):
        self.classifier = classifier
        self.tokenizer = tokenizer
        self.threshold = threshold
        self.name = name

    @classmethod
    def fit(
        cls,
        examples: Sequence[InstructExample],
        tokenizer: BaseTokenizer,
        config: ModelConfig,
        epochs: int = 5,
        lr: float = 1e-3,
        seed: int = 0,
        name: str = "head",
    ) -> "HeadClassifierModel":
        """Tokenize prompts and train a fresh classifier on their labels."""
        classifier = SequenceClassifier(config, rng=seed)
        sequences = [cls._encode(tokenizer, e.prompt, config.max_seq_len) for e in examples]
        labels = [e.label for e in examples]
        classifier.fit(sequences, labels, epochs=epochs, lr=lr, seed=seed,
                       pad_id=tokenizer.pad_id)
        return cls(classifier, tokenizer, name=name)

    @staticmethod
    def _encode(tokenizer: BaseTokenizer, prompt: str, max_len: int) -> list[int]:
        ids = [tokenizer.bos_id] + tokenizer.encode(prompt)
        return ids[-max_len:]

    def predict(self, sample: EvalSample) -> Prediction:
        ids = self._encode(self.tokenizer, sample.prompt, self.classifier.config.max_seq_len)
        proba = float(self.classifier.predict_proba(np.asarray(ids)[None, :])[0])
        return Prediction(label=int(proba >= self.threshold), score=proba)
