"""Registry mapping dataset names to generator factories."""

from __future__ import annotations

from typing import Callable

from repro.errors import DataError
from repro.datasets.australia import make_australia
from repro.datasets.base import TabularDataset
from repro.datasets.ccfraud import make_ccfraud
from repro.datasets.creditcard import make_creditcard
from repro.datasets.audit import make_audit
from repro.datasets.german import make_german
from repro.datasets.travel import make_travel

# The five CALM benchmark datasets reproduced in Table 2, in paper order.
CALM_DATASETS = ("german", "australia", "creditcard_fraud", "ccfraud", "travel_insurance")

_FACTORIES: dict[str, Callable[..., TabularDataset]] = {
    "german": make_german,
    "australia": make_australia,
    "creditcard_fraud": make_creditcard,
    "ccfraud": make_ccfraud,
    "travel_insurance": make_travel,
    "financial_audit": make_audit,
}


def available_datasets() -> list[str]:
    """Names of the registered tabular datasets."""
    return sorted(_FACTORIES)


def load_dataset(name: str, **kwargs) -> TabularDataset:
    """Instantiate a registered dataset by name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise DataError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return factory(**kwargs)
