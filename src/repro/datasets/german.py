"""Synthetic German Credit dataset.

Mirrors the schema of the UCI Statlog German Credit data used by CALM:
checking-account status, loan duration, credit history, purpose, amount,
savings, employment, age, housing, etc., with ~70% "good" outcomes.  The
label-generating process weights the canonical risk drivers (checking
status, duration, savings, credit history) so both expert systems and
verbalized-prompt LLMs can learn it.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FeatureSpec, TabularDataset, threshold_for_rate

_FEATURES = [
    FeatureSpec("checking_status", "categorical", ("none", "negative", "low", "high")),
    FeatureSpec("duration_months", "numeric"),
    FeatureSpec("credit_history", "categorical", ("critical", "delayed", "existing_paid", "all_paid", "no_credits")),
    FeatureSpec("purpose", "categorical", ("car", "furniture", "radio_tv", "education", "business", "repairs")),
    FeatureSpec("credit_amount", "numeric"),
    FeatureSpec("savings", "categorical", ("none", "little", "moderate", "rich", "quite_rich")),
    FeatureSpec("employment_since", "categorical", ("unemployed", "under1y", "1to4y", "4to7y", "over7y")),
    FeatureSpec("installment_rate", "numeric"),
    FeatureSpec("age", "numeric"),
    FeatureSpec("housing", "categorical", ("rent", "own", "free")),
    FeatureSpec("existing_credits", "numeric"),
    FeatureSpec("job", "categorical", ("unskilled", "skilled", "management", "self_employed")),
]


def make_german(n: int = 1000, seed: int = 0, positive_rate: float = 0.7) -> TabularDataset:
    """Generate the synthetic German Credit dataset.

    ``y == 1`` means a *good* credit risk (the majority class, as in the
    real data); the prompt answer texts are ``good`` / ``bad``.
    """
    rng = np.random.default_rng(seed)
    checking = rng.integers(0, 4, n)
    duration = np.clip(rng.gamma(2.0, 10.0, n), 4, 72)
    history = rng.integers(0, 5, n)
    purpose = rng.integers(0, 6, n)
    amount = np.clip(rng.lognormal(7.8, 0.9, n), 250, 20000)
    savings = rng.integers(0, 5, n)
    employment = rng.integers(0, 5, n)
    installment = rng.integers(1, 5, n).astype(np.float64)
    age = np.clip(rng.normal(36, 11, n), 19, 75)
    housing = rng.integers(0, 3, n)
    credits = rng.integers(1, 5, n).astype(np.float64)
    job = rng.integers(0, 4, n)

    X = np.column_stack(
        [checking, duration, history, purpose, amount, savings, employment,
         installment, age, housing, credits, job]
    ).astype(np.float64)

    score = (
        0.9 * checking
        - 0.06 * duration
        + 0.45 * history
        - 0.00012 * amount
        + 0.55 * savings
        + 0.35 * employment
        - 0.25 * installment
        + 0.02 * age
        + 0.3 * (housing == 1)
        + rng.normal(0.0, 0.8, n)
    )
    y = (score > threshold_for_rate(score, positive_rate)).astype(np.int64)

    return TabularDataset(
        name="german",
        task="credit_scoring",
        features=_FEATURES,
        X=X,
        y=y,
        question="is the credit risk of this applicant good",
        positive_text="good",
        negative_text="bad",
    )
