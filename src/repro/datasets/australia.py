"""Synthetic Australian Credit Approval dataset.

The real Statlog (Australian) data ships with anonymized feature names
(A1..A14, a mix of categorical and continuous) and a ~44.5% approval
rate; we reproduce that shape.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FeatureSpec, TabularDataset, threshold_for_rate

_FEATURES = [
    FeatureSpec("a1", "categorical", ("c0", "c1")),
    FeatureSpec("a2", "numeric"),
    FeatureSpec("a3", "numeric"),
    FeatureSpec("a4", "categorical", ("c0", "c1", "c2")),
    FeatureSpec("a5", "categorical", tuple(f"c{i}" for i in range(6))),
    FeatureSpec("a6", "categorical", tuple(f"c{i}" for i in range(5))),
    FeatureSpec("a7", "numeric"),
    FeatureSpec("a8", "categorical", ("c0", "c1")),
    FeatureSpec("a9", "categorical", ("c0", "c1")),
    FeatureSpec("a10", "numeric"),
    FeatureSpec("a11", "categorical", ("c0", "c1")),
    FeatureSpec("a12", "categorical", ("c0", "c1", "c2")),
    FeatureSpec("a13", "numeric"),
    FeatureSpec("a14", "numeric"),
]


def make_australia(n: int = 690, seed: int = 1, positive_rate: float = 0.445) -> TabularDataset:
    """Generate the synthetic Australian dataset (``y == 1`` = approve)."""
    rng = np.random.default_rng(seed)
    a1 = rng.integers(0, 2, n)
    a2 = np.clip(rng.normal(31, 12, n), 14, 80)  # age-like
    a3 = np.clip(rng.gamma(2.0, 2.5, n), 0, 28)  # debt-like
    a4 = rng.integers(0, 3, n)
    a5 = rng.integers(0, 6, n)
    a6 = rng.integers(0, 5, n)
    a7 = np.clip(rng.gamma(1.5, 2.0, n), 0, 28)  # years employed-like
    a8 = rng.integers(0, 2, n)  # prior default flag-like
    a9 = rng.integers(0, 2, n)  # employed flag-like
    a10 = rng.poisson(2.4, n).astype(np.float64)  # credit count-like
    a11 = rng.integers(0, 2, n)
    a12 = rng.integers(0, 3, n)
    a13 = np.clip(rng.normal(184, 170, n), 0, 2000)  # income proxy
    a14 = np.clip(rng.lognormal(5.0, 2.2, n), 1, 100000)  # balance proxy

    X = np.column_stack([a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14]).astype(
        np.float64
    )

    score = (
        1.6 * a8  # prior-default-free flag dominates, as in the real data
        + 0.9 * a9
        + 0.25 * a7
        + 0.12 * a10
        + 0.002 * a13
        - 0.08 * a3
        + 0.01 * a2
        + rng.normal(0.0, 0.9, n)
    )
    y = (score > threshold_for_rate(score, positive_rate)).astype(np.int64)

    return TabularDataset(
        name="australia",
        task="credit_scoring",
        features=_FEATURES,
        X=X,
        y=y,
        question="should this credit application be approved",
        positive_text="yes",
        negative_text="no",
    )
