"""Synthetic ccFraud dataset.

The real ccFraud data (used by CALM) is customer-level: gender, state,
number of cards, balance, transaction counts, international transaction
counts and credit line, with ~6% fraud.  Fraud here concentrates in the
high-balance / high-international-activity region, which is the signal
the real models key on.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FeatureSpec, TabularDataset, threshold_for_rate

_STATES = ("ca", "ny", "tx", "fl", "il", "wa", "ga", "nj")

_FEATURES = [
    FeatureSpec("gender", "categorical", ("male", "female")),
    FeatureSpec("state", "categorical", _STATES),
    FeatureSpec("cards", "numeric"),
    FeatureSpec("balance", "numeric"),
    FeatureSpec("num_trans", "numeric"),
    FeatureSpec("num_intl_trans", "numeric"),
    FeatureSpec("credit_line", "numeric"),
]


def make_ccfraud(n: int = 2000, seed: int = 3, fraud_rate: float = 0.06) -> TabularDataset:
    """Generate the synthetic ccFraud dataset (``y == 1`` = fraud)."""
    rng = np.random.default_rng(seed)
    gender = rng.integers(0, 2, n)
    state = rng.integers(0, len(_STATES), n)
    cards = rng.integers(1, 5, n).astype(np.float64)
    balance = np.clip(rng.lognormal(7.5, 1.3, n), 0, 40000)
    num_trans = rng.poisson(29, n).astype(np.float64)
    num_intl = rng.poisson(4, n).astype(np.float64)
    credit_line = rng.integers(1, 75, n).astype(np.float64)

    X = np.column_stack([gender, state, cards, balance, num_trans, num_intl, credit_line]).astype(
        np.float64
    )

    score = (
        0.00012 * balance
        + 0.35 * num_intl
        - 0.02 * num_trans
        - 0.015 * credit_line
        + 0.3 * cards
        + rng.normal(0.0, 0.7, n)
    )
    y = (score > threshold_for_rate(score, fraud_rate)).astype(np.int64)

    return TabularDataset(
        name="ccfraud",
        task="fraud_detection",
        features=_FEATURES,
        X=X,
        y=y,
        question="is this account showing fraudulent activity",
        positive_text="yes",
        negative_text="no",
    )
