"""Synthetic financial-auditing data (Figure 1's Financial Auditing task).

Transaction records where a subset is *irregular* and should be
escalated to audit.  Irregularity drivers follow the classic audit
red flags: inflated amounts versus the vendor's history, round-number
bias, weekend posting, missing approval, and duplicate invoices.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FeatureSpec, TabularDataset, threshold_for_rate

_CATEGORIES = ("supplies", "travel", "consulting", "it_services", "marketing", "maintenance")

_FEATURES = [
    FeatureSpec("category", "categorical", _CATEGORIES),
    FeatureSpec("amount", "numeric"),
    FeatureSpec("amount_vs_vendor_avg", "numeric"),
    FeatureSpec("round_amount", "categorical", ("no", "yes")),
    FeatureSpec("weekend_posting", "categorical", ("no", "yes")),
    FeatureSpec("has_approval", "categorical", ("no", "yes")),
    FeatureSpec("duplicate_invoice", "categorical", ("no", "yes")),
    FeatureSpec("days_to_payment", "numeric"),
]


def make_audit(n: int = 1200, seed: int = 8, irregular_rate: float = 0.12) -> TabularDataset:
    """Generate the synthetic auditing dataset (``y == 1`` = escalate)."""
    rng = np.random.default_rng(seed)
    category = rng.integers(0, len(_CATEGORIES), n)
    amount = np.clip(rng.lognormal(6.5, 1.1, n), 10, 200000)
    ratio = np.clip(rng.lognormal(0.0, 0.6, n), 0.1, 20.0)  # vs vendor average
    round_amount = (rng.random(n) < 0.18).astype(np.int64)
    weekend = (rng.random(n) < 0.12).astype(np.int64)
    approval = (rng.random(n) < 0.9).astype(np.int64)
    duplicate = (rng.random(n) < 0.05).astype(np.int64)
    days = np.clip(rng.normal(30, 12, n), 0, 120)

    X = np.column_stack(
        [category, amount, ratio, round_amount, weekend, approval, duplicate, days]
    ).astype(np.float64)

    score = (
        1.1 * np.log(ratio)
        + 0.9 * round_amount
        + 0.8 * weekend
        - 1.4 * approval
        + 2.2 * duplicate
        + 0.00001 * amount
        + rng.normal(0.0, 0.6, n)
    )
    y = (score > threshold_for_rate(score, irregular_rate)).astype(np.int64)

    return TabularDataset(
        name="financial_audit",
        task="financial_auditing",
        features=_FEATURES,
        X=X,
        y=y,
        question="does this transaction require audit escalation",
        positive_text="yes",
        negative_text="no",
    )
