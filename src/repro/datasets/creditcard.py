"""Synthetic Credit Card Fraud dataset.

The real dataset (ULB/Kaggle, used by CALM) has PCA-anonymized
components V1..V28 plus Amount, with 0.17% fraud.  We keep the
PCA-component structure (independent Gaussians whose means shift under
fraud) with a configurable fraud rate — the default 5% keeps evaluation
splits at laptop scale while preserving the "rare positive" regime.
Pass ``fraud_rate=0.0017`` and a large ``n`` for the realistic extreme.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FeatureSpec, TabularDataset

_N_COMPONENTS = 8

_FEATURES = [FeatureSpec(f"v{i + 1}", "numeric") for i in range(_N_COMPONENTS)] + [
    FeatureSpec("amount", "numeric")
]

# Mean shift of each PCA component under fraud (fixed, dataset-defining).
_FRAUD_SHIFT = np.array([-2.2, 1.8, -2.6, 1.4, -0.9, -1.2, -1.8, 0.6])


def make_creditcard(n: int = 2000, seed: int = 2, fraud_rate: float = 0.05) -> TabularDataset:
    """Generate the synthetic Credit Card Fraud dataset (``y == 1`` = fraud)."""
    rng = np.random.default_rng(seed)
    y = (rng.random(n) < fraud_rate).astype(np.int64)
    V = rng.normal(0.0, 1.0, size=(n, _N_COMPONENTS))
    V += y[:, None] * _FRAUD_SHIFT[None, :]
    # Fraudulent transactions skew to larger amounts.
    amount = np.where(
        y == 1,
        np.clip(rng.lognormal(4.6, 1.1, n), 1, 5000),
        np.clip(rng.lognormal(3.4, 1.2, n), 1, 5000),
    )
    X = np.column_stack([V, amount]).astype(np.float64)
    return TabularDataset(
        name="creditcard_fraud",
        task="fraud_detection",
        features=_FEATURES,
        X=X,
        y=y,
        question="is this credit card transaction fraudulent",
        positive_text="yes",
        negative_text="no",
    )
