"""Synthetic financial-news sentiment data (Table 1's sentiment task).

Generates headline-like sentences from sentiment-conditioned word
distributions: a company token, a market verb drawn from the sentiment's
lexicon, and an event clause.  A configurable fraction of headlines use
a verb from the *wrong* lexicon, providing label noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError

SENTIMENT_CLASSES = ("bad", "neutral", "good")

_COMPANIES = tuple(f"company{i}" for i in range(12))

_VERBS = {
    "bad": ("plunge", "slump", "tumble", "sink", "drop"),
    "neutral": ("hold", "drift", "stay", "hover", "trade"),
    "good": ("surge", "rally", "jump", "climb", "soar"),
}

_EVENTS = {
    "bad": ("missed earnings", "credit downgrade", "loan defaults", "fraud probe", "weak guidance"),
    "neutral": ("quarterly report", "board meeting", "sector review", "routine filing", "analyst day"),
    "good": ("record profit", "credit upgrade", "strong demand", "beat estimates", "dividend increase"),
}


@dataclass
class SentimentDataset:
    """Headline texts with 0/1/2 labels for bad/neutral/good."""

    texts: list[str]
    labels: np.ndarray

    def __post_init__(self):
        if len(self.texts) != self.labels.shape[0]:
            raise DataError("texts and labels length mismatch")
        if self.labels.size and (self.labels.min() < 0 or self.labels.max() > 2):
            raise DataError("sentiment labels must be in {0, 1, 2}")

    def __len__(self) -> int:
        return len(self.texts)

    def label_text(self, index: int) -> str:
        return SENTIMENT_CLASSES[int(self.labels[index])]


def make_sentiment(n: int = 900, seed: int = 7, noise: float = 0.1) -> SentimentDataset:
    """Generate ``n`` headlines; ``noise`` is the cross-lexicon word rate."""
    if not 0.0 <= noise < 1.0:
        raise DataError(f"noise must be in [0, 1), got {noise}")
    rng = np.random.default_rng(seed)
    texts = []
    labels = rng.integers(0, 3, n)
    for label in labels:
        sentiment = SENTIMENT_CLASSES[label]
        verb_pool = sentiment
        event_pool = sentiment
        if rng.random() < noise:
            verb_pool = SENTIMENT_CLASSES[rng.integers(0, 3)]
        company = _COMPANIES[rng.integers(0, len(_COMPANIES))]
        verb = _VERBS[verb_pool][rng.integers(0, len(_VERBS[verb_pool]))]
        event = _EVENTS[event_pool][rng.integers(0, len(_EVENTS[event_pool]))]
        texts.append(f"{company} shares {verb} after {event}")
    return SentimentDataset(texts=texts, labels=labels.astype(np.int64))
