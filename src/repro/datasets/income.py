"""Synthetic phone-attribute income data (the paper's generative task).

Section 3.2: "details like mobile phone brand, model, price, and
purchase year are utilized to predict the user's income through
regression-based models."  We produce a three-bracket income target
(low / medium / high) suited to generative QA evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError

_BRANDS = ("apex", "nova", "orbit", "pulse", "zenith", "mono")
_TIERS = ("entry", "mid", "flagship")
_EDUCATION = ("primary", "secondary", "college", "postgraduate")
INCOME_BRACKETS = ("low", "medium", "high")


@dataclass
class IncomeDataset:
    """Phone/customer attributes with an income-bracket target."""

    brand: np.ndarray
    tier: np.ndarray
    price: np.ndarray
    purchase_year: np.ndarray
    age: np.ndarray
    education: np.ndarray
    income: np.ndarray  # continuous, for regression baselines
    bracket: np.ndarray  # 0/1/2 for low/medium/high

    def __post_init__(self):
        n = self.brand.shape[0]
        for field in ("tier", "price", "purchase_year", "age", "education", "income", "bracket"):
            if getattr(self, field).shape[0] != n:
                raise DataError(f"field {field} length mismatch")

    def __len__(self) -> int:
        return self.brand.shape[0]

    def row_text(self, index: int) -> str:
        price_bin = "budget" if self.price[index] < 250 else ("mid" if self.price[index] < 700 else "premium")
        return (
            f"brand={_BRANDS[int(self.brand[index])]} "
            f"tier={_TIERS[int(self.tier[index])]} "
            f"price={price_bin} "
            f"purchase_year={int(self.purchase_year[index])} "
            f"age_group={'young' if self.age[index] < 30 else ('middle' if self.age[index] < 50 else 'senior')} "
            f"education={_EDUCATION[int(self.education[index])]}"
        )

    def bracket_text(self, index: int) -> str:
        return INCOME_BRACKETS[int(self.bracket[index])]

    def numeric_matrix(self) -> np.ndarray:
        return np.column_stack(
            [self.brand, self.tier, self.price, self.purchase_year, self.age, self.education]
        ).astype(np.float64)


def make_income(n: int = 900, seed: int = 6) -> IncomeDataset:
    """Generate the synthetic income-prediction dataset."""
    rng = np.random.default_rng(seed)
    brand = rng.integers(0, len(_BRANDS), n)
    tier = rng.integers(0, len(_TIERS), n)
    price = np.clip(
        120 + 320 * tier + rng.normal(0, 120, n) + 40 * (brand == 4), 60, 1800
    )
    purchase_year = rng.integers(2019, 2026, n)
    age = np.clip(rng.normal(37, 12, n), 18, 70)
    education = rng.integers(0, len(_EDUCATION), n)

    log_income = (
        9.6
        + 0.0009 * price
        + 0.22 * education
        + 0.012 * (age - 18)
        + 0.05 * (purchase_year - 2019)
        + rng.normal(0.0, 0.25, n)
    )
    income = np.exp(log_income)
    cuts = np.quantile(income, [1 / 3, 2 / 3])
    bracket = np.digitize(income, cuts)

    return IncomeDataset(
        brand=brand.astype(np.float64),
        tier=tier.astype(np.float64),
        price=price,
        purchase_year=purchase_year.astype(np.float64),
        age=age,
        education=education.astype(np.float64),
        income=income,
        bracket=bracket.astype(np.int64),
    )
