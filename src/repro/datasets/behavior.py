"""Sequential user-behavior data — the substrate TracSeq was designed for.

The paper's proprietary data is per-user monthly behavior (spending,
repayments, events) whose *recent* windows carry most of the signal
about loan default.  This generator reproduces that structure:

* each user has a latent risk trajectory following an AR(1) process;
* per-period observable features (spend volatility, repayment ratio,
  late payments, cash advances, login frequency) are noisy readouts of
  the latent risk at that period;
* the default label at the horizon depends on the risk trajectory with
  geometrically decaying weights into the past (``signal_decay``).

Consequently, training samples built from *recent* periods are cleanly
labeled and samples from *old* periods are effectively label-noisy —
exactly the regime where TracSeq's time-decayed influence beats plain
TracInCP, and where Figure 2's high-vs-low-influence gap emerges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError

_BIN_LABELS = ("verylow", "low", "medium", "high", "veryhigh")

FEATURE_NAMES = ("spend_volatility", "repay_ratio", "late_payments", "cash_advance", "login_freq")


@dataclass
class BehaviorDataset:
    """Per-user, per-period behavior features with a default label.

    Attributes
    ----------
    features:
        Array of shape ``(n_users, n_periods, n_features)``.
    risk:
        Latent risk trajectory ``(n_users, n_periods)`` (for diagnostics).
    y:
        Default label at the horizon, per user.
    """

    features: np.ndarray
    risk: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self):
        if self.features.ndim != 3:
            raise DataError(f"features must be 3-D, got {self.features.shape}")
        if self.features.shape[2] != len(self.feature_names):
            raise DataError("feature name count does not match feature dimension")
        if self.features.shape[:2] != self.risk.shape:
            raise DataError("risk shape must match (n_users, n_periods)")
        if self.features.shape[0] != self.y.shape[0]:
            raise DataError("y length must match n_users")
        self._fit_bins()

    def _fit_bins(self) -> None:
        flat = self.features.reshape(-1, self.features.shape[2])
        qs = np.linspace(0, 1, 6)[1:-1]
        self._edges = np.quantile(flat, qs, axis=0)  # (4, n_features)

    @property
    def n_users(self) -> int:
        return self.features.shape[0]

    @property
    def n_periods(self) -> int:
        return self.features.shape[1]

    def row_text(self, user: int, period: int) -> str:
        """Verbalize one user-period as ``name=bin`` tokens plus the period."""
        parts = [f"period={period}"]
        for j, name in enumerate(self.feature_names):
            value = self.features[user, period, j]
            bin_index = int(np.searchsorted(self._edges[:, j], value, side="right"))
            parts.append(f"{name}={_BIN_LABELS[bin_index]}")
        return " ".join(parts)

    def label_text(self, user: int) -> str:
        return "yes" if self.y[user] == 1 else "no"

    def supervised_rows(self) -> list[tuple[str, int, int, int]]:
        """Flatten to ``(text, label, timestamp, user)`` rows.

        One training sample per user-period; the timestamp is the period
        index, which TracSeq's sample-time decay consumes directly.
        """
        rows = []
        for user in range(self.n_users):
            for period in range(self.n_periods):
                rows.append(
                    (self.row_text(user, period), int(self.y[user]), period, user)
                )
        return rows

    def numeric_at(self, period: int) -> np.ndarray:
        """Numeric feature matrix for one period (for classic-ML models)."""
        if not 0 <= period < self.n_periods:
            raise DataError(f"period {period} out of range [0, {self.n_periods})")
        return self.features[:, period, :].copy()


def make_behavior(
    n_users: int = 300,
    n_periods: int = 8,
    seed: int = 5,
    default_rate: float = 0.25,
    signal_decay: float = 0.55,
    ar_coefficient: float = 0.75,
) -> BehaviorDataset:
    """Generate sequential behavior data.

    ``signal_decay`` is the geometric weight of past periods in the
    label: the smaller it is, the more the label depends on recent
    behavior only (and the bigger TracSeq's advantage).
    """
    if not 0.0 < signal_decay < 1.0:
        raise DataError(f"signal_decay must be in (0, 1), got {signal_decay}")
    if not 0.0 <= ar_coefficient < 1.0:
        raise DataError(f"ar_coefficient must be in [0, 1), got {ar_coefficient}")
    rng = np.random.default_rng(seed)

    risk = np.zeros((n_users, n_periods))
    risk[:, 0] = rng.normal(0.0, 1.0, n_users)
    for t in range(1, n_periods):
        drift = rng.normal(0.0, 0.35, n_users)
        risk[:, t] = ar_coefficient * risk[:, t - 1] + drift

    # Observable features: noisy readouts of per-period risk.
    noise = rng.normal(0.0, 0.5, size=(n_users, n_periods, len(FEATURE_NAMES)))
    loadings = np.array([0.9, -0.8, 1.0, 0.7, -0.5])  # repay/logins fall with risk
    base = np.array([1.0, 3.0, 0.5, 0.8, 2.5])
    features = base[None, None, :] + risk[:, :, None] * loadings[None, None, :] + noise

    # Label: geometrically recency-weighted risk exposure.
    weights = signal_decay ** np.arange(n_periods - 1, -1, -1)
    weights = weights / weights.sum()
    exposure = (risk * weights[None, :]).sum(axis=1) + rng.normal(0.0, 0.25, n_users)
    threshold = np.quantile(exposure, 1.0 - default_rate)
    y = (exposure > threshold).astype(np.int64)

    return BehaviorDataset(features=features, risk=risk, y=y)
