"""Tabular dataset container and verbalization shared by all generators.

Each synthetic dataset carries both a numeric design matrix (consumed by
the expert-system baselines) and a deterministic *verbalization* into
``name=value`` tokens (consumed by the language models), mirroring how
the paper serializes credit applications into prompts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError

_BIN_LABELS = ("verylow", "low", "medium", "high", "veryhigh")


@dataclass(frozen=True)
class FeatureSpec:
    """Schema for one column.

    ``kind`` is ``"numeric"`` (binned into quantiles when verbalized) or
    ``"categorical"`` (values index into ``categories``).
    """

    name: str
    kind: str = "numeric"
    categories: tuple[str, ...] = ()
    n_bins: int = 5

    def __post_init__(self):
        if self.kind not in ("numeric", "categorical"):
            raise DataError(f"unknown feature kind {self.kind!r}")
        if self.kind == "categorical" and not self.categories:
            raise DataError(f"categorical feature {self.name!r} needs categories")
        if self.kind == "numeric" and not 2 <= self.n_bins <= len(_BIN_LABELS):
            raise DataError(f"n_bins must be in [2, {len(_BIN_LABELS)}]")


@dataclass
class TabularDataset:
    """A generated dataset: numeric matrix + labels + verbalization rules.

    ``task`` describes the downstream framing (credit_scoring,
    fraud_detection, claim_analysis); ``question``, ``positive_text`` and
    ``negative_text`` drive the Table-1 prompt template.
    """

    name: str
    task: str
    features: list[FeatureSpec]
    X: np.ndarray
    y: np.ndarray
    question: str
    positive_text: str = "yes"
    negative_text: str = "no"
    timestamps: np.ndarray | None = None
    _bin_edges: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.X.ndim != 2:
            raise DataError(f"X must be 2-D, got {self.X.shape}")
        if self.X.shape[0] != self.y.shape[0]:
            raise DataError(f"X rows {self.X.shape[0]} != y rows {self.y.shape[0]}")
        if self.X.shape[1] != len(self.features):
            raise DataError(
                f"X has {self.X.shape[1]} columns but {len(self.features)} feature specs"
            )
        if not np.isin(self.y, (0, 1)).all():
            raise DataError("labels must be binary 0/1")
        if self.timestamps is not None and len(self.timestamps) != len(self.y):
            raise DataError("timestamps length must match number of rows")
        self._fit_bins()

    def _fit_bins(self) -> None:
        for j, spec in enumerate(self.features):
            if spec.kind != "numeric":
                continue
            qs = np.linspace(0, 1, spec.n_bins + 1)[1:-1]
            self._bin_edges[spec.name] = np.quantile(self.X[:, j], qs)

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def positive_rate(self) -> float:
        return float(self.y.mean())

    # ------------------------------------------------------------------
    # Verbalization
    # ------------------------------------------------------------------

    def verbalize_value(self, column: int, value: float) -> str:
        spec = self.features[column]
        if spec.kind == "categorical":
            index = int(value)
            if not 0 <= index < len(spec.categories):
                raise DataError(
                    f"category index {index} out of range for {spec.name!r}"
                )
            return spec.categories[index]
        edges = self._bin_edges[spec.name]
        bin_index = int(np.searchsorted(edges, value, side="right"))
        return _BIN_LABELS[bin_index] if spec.n_bins == 5 else f"q{bin_index}"

    def row_text(self, index: int) -> str:
        """Serialize row ``index`` as space-separated ``name=value`` tokens."""
        parts = [
            f"{spec.name}={self.verbalize_value(j, self.X[index, j])}"
            for j, spec in enumerate(self.features)
        ]
        return " ".join(parts)

    def label_text(self, index: int) -> str:
        return self.positive_text if self.y[index] == 1 else self.negative_text

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------

    def split(self, test_fraction: float = 0.2, seed: int = 0) -> tuple["TabularDataset", "TabularDataset"]:
        """Stratified train/test split preserving bin edges.

        Both halves keep the *full-data* bin edges so train and test
        verbalize identically.
        """
        if not 0.0 < test_fraction < 1.0:
            raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
        rng = np.random.default_rng(seed)
        test_mask = np.zeros(len(self), dtype=bool)
        for label in (0, 1):
            idx = np.flatnonzero(self.y == label)
            rng.shuffle(idx)
            n_test = max(1, int(round(test_fraction * idx.size))) if idx.size else 0
            test_mask[idx[:n_test]] = True
        train = self._subset(~test_mask)
        test = self._subset(test_mask)
        return train, test

    def _subset(self, mask: np.ndarray) -> "TabularDataset":
        sub = TabularDataset(
            name=self.name,
            task=self.task,
            features=self.features,
            X=self.X[mask],
            y=self.y[mask],
            question=self.question,
            positive_text=self.positive_text,
            negative_text=self.negative_text,
            timestamps=None if self.timestamps is None else self.timestamps[mask],
        )
        # Share the parent's bin edges for consistent verbalization.
        sub._bin_edges = dict(self._bin_edges)
        return sub


def threshold_for_rate(scores: np.ndarray, positive_rate: float) -> float:
    """Threshold such that ``mean(scores > threshold) ~= positive_rate``."""
    if not 0.0 < positive_rate < 1.0:
        raise DataError(f"positive_rate must be in (0, 1), got {positive_rate}")
    return float(np.quantile(scores, 1.0 - positive_rate))
