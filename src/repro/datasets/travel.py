"""Synthetic Travel Insurance claim-analysis dataset.

The real travel-insurance data (used by CALM for Claim Analysis) records
agency, distribution channel, product, trip duration, destination, sales
and commission amounts and customer age, with a rare "claim" outcome.
The default claim rate is raised to 15% to keep test splits informative
at laptop scale (pass ``claim_rate=0.015`` for the realistic extreme).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FeatureSpec, TabularDataset, threshold_for_rate

_AGENCIES = ("cbh", "cwt", "jzi", "kml", "epx")
_PRODUCTS = ("basic", "bronze", "silver", "gold", "annual", "cancellation")
_DESTINATIONS = ("singapore", "malaysia", "thailand", "china", "australia", "japan", "usa", "uk")

_FEATURES = [
    FeatureSpec("agency", "categorical", _AGENCIES),
    FeatureSpec("agency_type", "categorical", ("airlines", "travel_agency")),
    FeatureSpec("channel", "categorical", ("online", "offline")),
    FeatureSpec("product", "categorical", _PRODUCTS),
    FeatureSpec("duration_days", "numeric"),
    FeatureSpec("destination", "categorical", _DESTINATIONS),
    FeatureSpec("net_sales", "numeric"),
    FeatureSpec("commission", "numeric"),
    FeatureSpec("age", "numeric"),
]


def make_travel(n: int = 1500, seed: int = 4, claim_rate: float = 0.15) -> TabularDataset:
    """Generate the synthetic Travel Insurance dataset (``y == 1`` = claim)."""
    rng = np.random.default_rng(seed)
    agency = rng.integers(0, len(_AGENCIES), n)
    agency_type = rng.integers(0, 2, n)
    channel = (rng.random(n) < 0.15).astype(np.int64)  # mostly online
    product = rng.integers(0, len(_PRODUCTS), n)
    duration = np.clip(rng.gamma(1.6, 30.0, n), 1, 540)
    destination = rng.integers(0, len(_DESTINATIONS), n)
    net_sales = np.clip(rng.lognormal(3.4, 0.9, n), 1, 800)
    commission = net_sales * np.clip(rng.normal(0.25, 0.08, n), 0.0, 0.6)
    age = np.clip(rng.normal(39, 13, n), 18, 85)

    X = np.column_stack(
        [agency, agency_type, channel, product, duration, destination, net_sales, commission, age]
    ).astype(np.float64)

    score = (
        0.02 * duration
        + 0.008 * net_sales
        + 0.9 * (product >= 3)  # richer products claim more
        + 0.5 * agency_type
        + 0.02 * age
        + rng.normal(0.0, 0.7, n)
    )
    y = (score > threshold_for_rate(score, claim_rate)).astype(np.int64)

    return TabularDataset(
        name="travel_insurance",
        task="claim_analysis",
        features=_FEATURES,
        X=X,
        y=y,
        question="will this travel insurance policy result in a claim",
        positive_text="yes",
        negative_text="no",
    )
