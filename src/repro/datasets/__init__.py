"""Synthetic financial-credit datasets (CALM benchmark shapes + behavior data)."""

from repro.datasets.audit import make_audit
from repro.datasets.australia import make_australia
from repro.datasets.base import FeatureSpec, TabularDataset
from repro.datasets.behavior import BehaviorDataset, make_behavior
from repro.datasets.ccfraud import make_ccfraud
from repro.datasets.creditcard import make_creditcard
from repro.datasets.german import make_german
from repro.datasets.income import INCOME_BRACKETS, IncomeDataset, make_income
from repro.datasets.registry import CALM_DATASETS, available_datasets, load_dataset
from repro.datasets.sentiment import SENTIMENT_CLASSES, SentimentDataset, make_sentiment
from repro.datasets.travel import make_travel

__all__ = [
    "FeatureSpec",
    "TabularDataset",
    "make_german",
    "make_australia",
    "make_creditcard",
    "make_ccfraud",
    "make_travel",
    "make_audit",
    "make_sentiment",
    "SentimentDataset",
    "SENTIMENT_CLASSES",
    "BehaviorDataset",
    "make_behavior",
    "IncomeDataset",
    "make_income",
    "INCOME_BRACKETS",
    "CALM_DATASETS",
    "available_datasets",
    "load_dataset",
]
