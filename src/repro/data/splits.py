"""Split helpers for instruction datasets.

Temporal data must be split by *time* (train on the past, test on the
future) and user-level data by *group* (no user in both splits) —
random row splits leak.  These helpers centralize the patterns the
benchmarks use.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.errors import DataError
from repro.data.instruct import InstructExample

T = TypeVar("T", bound=InstructExample)


def split_by_time(
    examples: Sequence[T],
    cutoff: float,
) -> tuple[list[T], list[T]]:
    """(past, future): examples with ``timestamp < cutoff`` vs the rest."""
    if not examples:
        raise DataError("split_by_time() received no examples")
    past = [e for e in examples if e.timestamp < cutoff]
    future = [e for e in examples if e.timestamp >= cutoff]
    if not past or not future:
        raise DataError(
            f"cutoff {cutoff} puts all examples on one side "
            f"(past={len(past)}, future={len(future)})"
        )
    return past, future


def split_by_group(
    examples: Sequence[T],
    group_of: Callable[[T], object],
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[list[T], list[T]]:
    """Split so that no group appears in both halves.

    ``group_of`` extracts the grouping key (e.g.
    ``lambda e: e.meta["user"]``).  Whole groups are assigned to the test
    side until it holds at least ``test_fraction`` of the examples.
    """
    if not examples:
        raise DataError("split_by_group() received no examples")
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    groups = list(dict.fromkeys(group_of(e) for e in examples))
    if len(groups) < 2:
        raise DataError("need at least two groups to split")
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(len(groups)))
    target = test_fraction * len(examples)
    test_groups: set = set()
    count = 0
    for index in order:
        if count >= target:
            break
        group = groups[index]
        test_groups.add(group)
        count += sum(1 for e in examples if group_of(e) == group)
    if len(test_groups) == len(groups):
        test_groups.discard(groups[order[0]])
    train = [e for e in examples if group_of(e) not in test_groups]
    test = [e for e in examples if group_of(e) in test_groups]
    return train, test


def stratified_split(
    examples: Sequence[T],
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[list[T], list[T]]:
    """Label-stratified random split (both halves keep the class mix)."""
    if not examples:
        raise DataError("stratified_split() received no examples")
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    test_idx: set[int] = set()
    labels = {e.label for e in examples}
    for label in labels:
        members = [i for i, e in enumerate(examples) if e.label == label]
        rng.shuffle(members)
        n_test = max(1, int(round(test_fraction * len(members))))
        test_idx.update(members[:n_test])
    train = [e for i, e in enumerate(examples) if i not in test_idx]
    test = [e for i, e in enumerate(examples) if i in test_idx]
    return train, test
