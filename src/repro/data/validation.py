"""Instruction-data quality validation.

"Constructing high-quality data is crucial for LLMs" (Section 3.1) —
before any influence scoring, production data pipelines run structural
hygiene checks.  This module flags:

* duplicate prompts (wasted budget, leakage across splits);
* label conflicts — the same prompt appearing with different answers
  (direct label noise, a primary hallucination source);
* empty prompts or answers;
* answer-vocabulary inconsistency (more answer words than expected);
* extreme prompt lengths (truncation risk against the context window).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import DataError
from repro.data.instruct import InstructExample


@dataclass
class ValidationReport:
    """Findings over one instruction dataset."""

    n_examples: int
    duplicate_prompts: int
    conflicting_prompts: int
    empty_prompts: int
    empty_answers: int
    answer_vocabulary: dict[str, int] = field(default_factory=dict)
    max_prompt_words: int = 0
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def validate_examples(
    examples: Sequence[InstructExample],
    max_answers: int = 3,
    max_prompt_words: int | None = None,
) -> ValidationReport:
    """Run every check; returns a report (never raises on dirty data)."""
    if not examples:
        raise DataError("validate_examples() received no examples")

    prompt_counts: Counter[str] = Counter(e.prompt for e in examples)
    prompt_answers: dict[str, set[str]] = defaultdict(set)
    for e in examples:
        prompt_answers[e.prompt].add(e.answer)

    duplicates = sum(count - 1 for count in prompt_counts.values() if count > 1)
    conflicts = sum(1 for answers in prompt_answers.values() if len(answers) > 1)
    empty_prompts = sum(1 for e in examples if not e.prompt.strip())
    empty_answers = sum(1 for e in examples if not e.answer.strip())
    vocabulary = dict(Counter(e.answer for e in examples))
    longest = max(len(e.prompt.split()) for e in examples)

    issues = []
    if duplicates:
        issues.append(f"{duplicates} duplicate prompts")
    if conflicts:
        issues.append(f"{conflicts} prompts with conflicting answers")
    if empty_prompts:
        issues.append(f"{empty_prompts} empty prompts")
    if empty_answers:
        issues.append(f"{empty_answers} empty answers")
    if len(vocabulary) > max_answers:
        issues.append(
            f"answer vocabulary has {len(vocabulary)} entries (expected <= {max_answers})"
        )
    if max_prompt_words is not None and longest > max_prompt_words:
        issues.append(f"longest prompt has {longest} words (limit {max_prompt_words})")

    return ValidationReport(
        n_examples=len(examples),
        duplicate_prompts=duplicates,
        conflicting_prompts=conflicts,
        empty_prompts=empty_prompts,
        empty_answers=empty_answers,
        answer_vocabulary=vocabulary,
        max_prompt_words=longest,
        issues=issues,
    )


def deduplicate_examples(examples: Sequence[InstructExample]) -> list[InstructExample]:
    """Drop repeated (prompt, answer) pairs, keeping first occurrences."""
    seen: set[tuple[str, str]] = set()
    kept = []
    for example in examples:
        key = (example.prompt, example.answer)
        if key in seen:
            continue
        seen.add(key)
        kept.append(example)
    return kept


def drop_conflicting_examples(examples: Sequence[InstructExample]) -> list[InstructExample]:
    """Remove every example whose prompt appears with multiple answers.

    Conservative: on conflict, *all* occurrences go (there is no way to
    know which label is right without the upstream source).
    """
    prompt_answers: dict[str, set[str]] = defaultdict(set)
    for e in examples:
        prompt_answers[e.prompt].add(e.answer)
    return [e for e in examples if len(prompt_answers[e.prompt]) == 1]
