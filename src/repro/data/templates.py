"""Prompt templates for each task family (the paper's Table 1).

Discriminative
    Sentiment Analysis:  "{sentence} question: what is the sentiment
                          answer:" -> good / neutral / bad
    Classification:      "{sentence} question: {question} answer:"
                          -> yes / no (or good / bad)
Generative
    QA:                  "{context} question: {question} answer:"
                          -> free-form (here: an income bracket etc.)

Prompts are lower-cased, whitespace-tokenizable strings so the word
tokenizer covers them losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataError


@dataclass(frozen=True)
class PromptTemplate:
    """A named template with ``{field}`` placeholders."""

    name: str
    template: str
    answer_choices: tuple[str, ...] = ()

    def format(self, **fields: str) -> str:
        try:
            return self.template.format(**fields)
        except KeyError as exc:
            raise DataError(f"template {self.name!r} missing field {exc}") from exc


CLASSIFICATION_TEMPLATE = PromptTemplate(
    name="classification",
    template="{sentence} question: {question} ? answer:",
)

SENTIMENT_TEMPLATE = PromptTemplate(
    name="sentiment",
    template="{sentence} question: what is the sentiment ? answer:",
    answer_choices=("good", "neutral", "bad"),
)

QA_TEMPLATE = PromptTemplate(
    name="qa",
    template="{context} question: {question} ? answer:",
)

TEMPLATES = {
    t.name: t
    for t in (CLASSIFICATION_TEMPLATE, SENTIMENT_TEMPLATE, QA_TEMPLATE)
}


def get_template(name: str) -> PromptTemplate:
    template = TEMPLATES.get(name)
    if template is None:
        raise DataError(f"unknown template {name!r}; available: {sorted(TEMPLATES)}")
    return template
