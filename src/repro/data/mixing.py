"""Hybrid training-set construction (Section 3.2 of the paper).

"70% of the samples are randomly selected from the entire dataset, while
the remaining 30% are high-influence samples filtered through data
pruning."
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.errors import DataError
from repro.influence.selection import stratified_top_k, top_k_indices

T = TypeVar("T")


def hybrid_mix(
    examples: Sequence[T],
    scores: np.ndarray,
    total: int | None = None,
    pruned_fraction: float = 0.3,
    seed: int = 0,
    allow_overlap: bool = False,
    labels: Sequence[int] | None = None,
) -> list[T]:
    """Build the paper's 70/30 random + high-influence training mix.

    Parameters
    ----------
    examples:
        Candidate pool.
    scores:
        Influence scores aligned with ``examples`` (TracSeq output).
    total:
        Target training-set size (defaults to ``len(examples)``).
    pruned_fraction:
        Share of the mix taken from the Top-K by score (paper: 0.3).
    allow_overlap:
        If False (default), the random portion is drawn from outside the
        Top-K so the mix has no duplicates.
    labels:
        Optional class labels aligned with ``examples``.  When given, the
        Top-K selection is stratified per class, preventing the pruned
        slice from collapsing onto the majority class (see
        :func:`repro.influence.selection.stratified_top_k`).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if len(examples) != scores.shape[0]:
        raise DataError(f"{len(examples)} examples but {scores.shape[0]} scores")
    if not 0.0 <= pruned_fraction <= 1.0:
        raise DataError(f"pruned_fraction must be in [0, 1], got {pruned_fraction}")
    total = total if total is not None else len(examples)
    if total <= 0 or total > len(examples):
        raise DataError(f"total={total} out of range for {len(examples)} examples")

    n_pruned = int(round(pruned_fraction * total))
    n_random = total - n_pruned
    rng = np.random.default_rng(seed)

    if n_pruned == 0:
        pruned_idx = np.array([], dtype=np.int64)
    elif labels is not None:
        pruned_idx = stratified_top_k(scores, np.asarray(labels), n_pruned)
    else:
        pruned_idx = top_k_indices(scores, n_pruned)
    if allow_overlap:
        pool = np.arange(len(examples))
    else:
        pool = np.setdiff1d(np.arange(len(examples)), pruned_idx)
    if n_random > pool.size:
        raise DataError(
            f"cannot draw {n_random} non-overlapping random samples from a pool of {pool.size}"
        )
    random_idx = rng.choice(pool, size=n_random, replace=False) if n_random else np.array([], dtype=np.int64)

    chosen = np.concatenate([pruned_idx, random_idx]).astype(np.int64)
    rng.shuffle(chosen)
    return [examples[i] for i in chosen]
