"""JSONL persistence for instruction data."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import DataError
from repro.data.instruct import InstructExample


def save_jsonl(examples: Iterable[InstructExample], path: str | Path) -> int:
    """Write examples to ``path`` as one JSON object per line; returns count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for example in examples:
            record = {
                "prompt": example.prompt,
                "answer": example.answer,
                "label": example.label,
                "timestamp": example.timestamp,
                "meta": example.meta,
            }
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            count += 1
    return count


def load_jsonl(path: str | Path) -> list[InstructExample]:
    """Read instruction examples written by :func:`save_jsonl`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    examples = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
            try:
                examples.append(
                    InstructExample(
                        prompt=record["prompt"],
                        answer=record["answer"],
                        label=int(record["label"]),
                        timestamp=float(record.get("timestamp", 0.0)),
                        meta=record.get("meta", {}),
                    )
                )
            except KeyError as exc:
                raise DataError(f"{path}:{line_no}: missing field {exc}") from exc
    return examples
