"""Instruction-data construction: templates, examples, mixing, persistence."""

from repro.data.instruct import (
    InstructExample,
    build_behavior_examples,
    build_classification_examples,
    build_income_examples,
    build_sentiment_examples,
    corpus_texts,
    labels_of,
    timestamps_of,
    tokenize_examples,
)
from repro.data.mixing import hybrid_mix
from repro.data.serialization import load_jsonl, save_jsonl
from repro.data.splits import split_by_group, split_by_time, stratified_split
from repro.data.validation import (
    ValidationReport,
    deduplicate_examples,
    drop_conflicting_examples,
    validate_examples,
)
from repro.data.templates import (
    CLASSIFICATION_TEMPLATE,
    QA_TEMPLATE,
    SENTIMENT_TEMPLATE,
    PromptTemplate,
    get_template,
)

__all__ = [
    "InstructExample",
    "build_classification_examples",
    "build_behavior_examples",
    "build_income_examples",
    "build_sentiment_examples",
    "corpus_texts",
    "tokenize_examples",
    "timestamps_of",
    "labels_of",
    "hybrid_mix",
    "save_jsonl",
    "load_jsonl",
    "ValidationReport",
    "validate_examples",
    "deduplicate_examples",
    "drop_conflicting_examples",
    "split_by_time",
    "split_by_group",
    "stratified_split",
    "PromptTemplate",
    "CLASSIFICATION_TEMPLATE",
    "SENTIMENT_TEMPLATE",
    "QA_TEMPLATE",
    "get_template",
]
