"""Instruction examples: construction from datasets and tokenization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import DataError
from repro.datasets.base import TabularDataset
from repro.datasets.behavior import BehaviorDataset
from repro.data.templates import CLASSIFICATION_TEMPLATE, QA_TEMPLATE
from repro.tokenizer.base import BaseTokenizer


@dataclass(frozen=True)
class InstructExample:
    """One supervised instruction pair.

    ``label`` is the underlying binary/ordinal class (used by metrics and
    the agent scorer); ``timestamp`` carries temporal position for
    TracSeq; ``meta`` holds provenance (dataset name, row index, ...).
    """

    prompt: str
    answer: str
    label: int
    timestamp: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def text(self) -> str:
        return f"{self.prompt} {self.answer}"


def build_classification_examples(dataset: TabularDataset) -> list[InstructExample]:
    """Verbalize every row of a tabular dataset with the Table-1 template."""
    examples = []
    for i in range(len(dataset)):
        prompt = CLASSIFICATION_TEMPLATE.format(
            sentence=dataset.row_text(i), question=dataset.question
        )
        examples.append(
            InstructExample(
                prompt=prompt,
                answer=dataset.label_text(i),
                label=int(dataset.y[i]),
                timestamp=float(dataset.timestamps[i]) if dataset.timestamps is not None else 0.0,
                meta={"dataset": dataset.name, "row": i},
            )
        )
    return examples


def build_behavior_examples(dataset: BehaviorDataset) -> list[InstructExample]:
    """One example per user-period from sequential behavior data.

    The timestamp is the period index — the input TracSeq's decay runs
    on.  The supervision target for every period is the user's final
    default outcome, so early-period samples are intrinsically noisier.
    """
    question = "will this user default on their loan"
    examples = []
    for text, label, period, user in dataset.supervised_rows():
        prompt = CLASSIFICATION_TEMPLATE.format(sentence=text, question=question)
        examples.append(
            InstructExample(
                prompt=prompt,
                answer="yes" if label == 1 else "no",
                label=label,
                timestamp=float(period),
                meta={"dataset": "behavior", "user": user, "period": period},
            )
        )
    return examples


def build_sentiment_examples(dataset) -> list[InstructExample]:
    """Three-class sentiment examples with the Table-1 sentiment template."""
    from repro.data.templates import SENTIMENT_TEMPLATE

    examples = []
    for i in range(len(dataset)):
        prompt = SENTIMENT_TEMPLATE.format(sentence=dataset.texts[i])
        examples.append(
            InstructExample(
                prompt=prompt,
                answer=dataset.label_text(i),
                label=int(dataset.labels[i]),
                meta={"dataset": "sentiment", "row": i},
            )
        )
    return examples


def build_income_examples(dataset) -> list[InstructExample]:
    """Generative QA examples from the phone-attribute income data."""
    question = "what is the expected income bracket of this user"
    examples = []
    for i in range(len(dataset)):
        prompt = QA_TEMPLATE.format(context=dataset.row_text(i), question=question)
        examples.append(
            InstructExample(
                prompt=prompt,
                answer=dataset.bracket_text(i),
                label=int(dataset.bracket[i]),
                meta={"dataset": "income", "row": i},
            )
        )
    return examples


def corpus_texts(examples: Sequence[InstructExample]) -> list[str]:
    """Full texts (prompt + answer) for tokenizer training."""
    return [example.text for example in examples]


def tokenize_examples(
    examples: Sequence[InstructExample],
    tokenizer: BaseTokenizer,
    max_len: int | None = None,
) -> list[tuple[list[int], list[int]]]:
    """Encode examples as ``(input_ids, labels)`` with answer-only supervision.

    Raises if an example would leave no supervised answer tokens after
    truncation — silently dropping supervision is how fine-tunes go wrong.
    """
    encoded = []
    for i, example in enumerate(examples):
        input_ids, labels = tokenizer.encode_pair(example.prompt, example.answer)
        if max_len is not None and len(input_ids) > max_len:
            if all(l == -100 for l in labels[:max_len]):
                raise DataError(
                    f"example {i}: truncation to {max_len} removes the whole answer span"
                )
            input_ids, labels = input_ids[:max_len], labels[:max_len]
        encoded.append((input_ids, labels))
    return encoded


def timestamps_of(examples: Sequence[InstructExample]) -> np.ndarray:
    return np.asarray([e.timestamp for e in examples], dtype=np.float64)


def labels_of(examples: Sequence[InstructExample]) -> np.ndarray:
    return np.asarray([e.label for e in examples], dtype=np.int64)
