"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class GradientError(ReproError):
    """Autograd failure: backward on a non-scalar, missing graph, etc."""


class TokenizerError(ReproError):
    """Tokenizer training or encoding failure."""


class CheckpointError(ReproError):
    """A checkpoint could not be saved, loaded, or validated."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class QuantizationError(ConfigError):
    """Misuse of the int8 quantized inference path.

    Raised when :func:`repro.nn.quantize_model` is asked to quantize an
    unmergeable model (unmerged LoRA adapters, no eligible layers, an
    unsupported dtype) and when a quantized layer is driven from a
    gradient-recording graph — quantization is inference-only.
    """


class DataError(ReproError):
    """Dataset generation or instruction-data construction failure."""


class InfluenceError(ReproError):
    """Influence estimation (TracInCP / TracSeq) failure."""


class EvaluationError(ReproError):
    """Benchmark or metric computation failure."""


class ObservabilityError(ReproError):
    """Metrics / tracing / event-sink misuse (never raised on hot paths)."""


class ResilienceError(ReproError):
    """Retry policy, circuit breaker, or fault-injection misuse."""


class CircuitOpenError(ResilienceError):
    """A call was rejected because its circuit breaker is open.

    Raised by :meth:`repro.resilience.CircuitBreaker.call` (and checked
    by the serving engine) so callers can route straight to a degraded
    path instead of hammering a failing dependency.
    """


class PipelineError(ReproError):
    """Online-learning pipeline failure (state corruption, failed promote
    verification, unusable work directory)."""


class InjectedFault(ReproError):
    """The default exception raised at an armed fault point.

    Only ever raised when a :class:`repro.resilience.FaultInjector` is
    installed — production code paths never see it.
    """


class ServingError(ReproError):
    """Behavior Card serving failure."""


class QueueFullError(ServingError):
    """The serving engine's bounded request queue rejected an admission.

    Raised synchronously by :meth:`repro.serving.MicroBatchEngine.submit`
    so callers can shed load (backpressure) instead of queueing unboundedly.
    """


class DeadlineExceededError(ServingError):
    """A queued request's deadline passed before it could be scored."""


class ClusterError(ServingError):
    """Multi-replica serving cluster failure (supervisor / router / deploy)."""


class ReplicaCrashedError(ClusterError):
    """A replica died (process exit, RPC loss, or injected crash) mid-flight.

    The supervisor treats this error as *re-dispatchable*: requests that
    were queued or in flight on the dead replica are resubmitted to a
    healthy one (up to ``ClusterConfig.max_redispatch`` attempts) before
    the error is surfaced to the caller, so a replica crash never
    silently drops traffic.
    """


class ServingTimeout(ServingError):
    """``PendingResult.result(timeout=...)`` gave up waiting.

    Distinct from a scoring failure: the request is **still queued / in
    flight** and may complete later; callers that stop waiting should
    either retry :meth:`result` or treat the answer as abandoned.
    """
