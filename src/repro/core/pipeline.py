"""End-to-end ZiGong training pipeline (Figure 1 of the paper).

Stages::

    instruct data -> warmup fine-tune (checkpoints) -> agent + TracSeq
    scoring -> Top-K pruning -> 70/30 hybrid mix -> fresh LoRA fine-tune

The warmup model exists only to produce checkpoints for influence
replay; the deployed model is trained from scratch on the mixed data.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.config import ZiGongConfig, test_config
from repro.core.pruning import DataPruner, PrunerConfig
from repro.core.zigong import ZiGong
from repro.data.instruct import InstructExample
from repro.data.mixing import hybrid_mix
from repro.training.callbacks import History


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration for the full prune-mix-finetune pipeline."""

    zigong: ZiGongConfig = field(default_factory=test_config)
    pruner: PrunerConfig = field(default_factory=PrunerConfig)
    pruned_fraction: float = 0.3
    mix_total: int | None = None
    warmup_epochs: int = 2
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.pruned_fraction <= 1.0:
            raise ConfigError("pruned_fraction must be in [0, 1]")
        if self.warmup_epochs <= 0:
            raise ConfigError("warmup_epochs must be positive")


@dataclass
class PipelineResult:
    """Everything the pipeline produced."""

    zigong: ZiGong
    scores: np.ndarray
    mixed_examples: list[InstructExample]
    warmup_history: History
    finetune_history: History


class ZiGongPipeline:
    """Runs the paper's full training recipe."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    def run(
        self,
        train_examples: Sequence[InstructExample],
        val_examples: Sequence[InstructExample],
        checkpoint_dir: str | Path | None = None,
    ) -> PipelineResult:
        """Execute all stages and return the trained model + artifacts."""
        if not train_examples:
            raise ConfigError("pipeline needs training examples")
        cfg = self.config

        if checkpoint_dir is None:
            checkpoint_dir = Path(tempfile.mkdtemp(prefix="zigong-ckpt-"))

        # Stage 1: warmup fine-tune to produce checkpoints for replay.
        warmup_cfg = replace(
            cfg.zigong,
            training=replace(cfg.zigong.training, epochs=cfg.warmup_epochs),
            seed=cfg.seed,
        )
        warmup = ZiGong.from_examples(list(train_examples) + list(val_examples), config=warmup_cfg)
        warmup_history = warmup.finetune(train_examples, checkpoint_dir=checkpoint_dir)

        # Stage 2: agent / TracSeq scoring over the warmup checkpoints.
        from repro.training.checkpoint import CheckpointManager

        checkpoints = CheckpointManager(checkpoint_dir).checkpoints()
        pruner = DataPruner(cfg.pruner)
        scores = pruner.score(warmup, train_examples, val_examples, checkpoints)

        # Stage 3: 70/30 hybrid mix (Section 3.2), label-stratified so the
        # Top-K slice keeps the pool's class balance.
        from repro.data.instruct import labels_of

        mixed = hybrid_mix(
            list(train_examples),
            scores,
            total=cfg.mix_total,
            pruned_fraction=cfg.pruned_fraction,
            seed=cfg.seed,
            labels=labels_of(train_examples),
        )

        # Stage 4: train the deployable model from scratch on the mix.
        final = ZiGong.from_examples(list(train_examples) + list(val_examples),
                                     config=replace(cfg.zigong, seed=cfg.seed + 1))
        finetune_history = final.finetune(mixed)

        return PipelineResult(
            zigong=final,
            scores=scores,
            mixed_examples=mixed,
            warmup_history=warmup_history,
            finetune_history=finetune_history,
        )
