"""The ZiGong model: tokenizer + MistralTiny + LoRA fine-tuning.

Public entry point of the library.  Typical use::

    examples = build_classification_examples(make_german())
    zigong = ZiGong.from_examples(examples, config=test_config())
    zigong.finetune(examples, checkpoint_dir="ckpts")
    zigong.classifier().predict(sample)
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import CheckpointError, ConfigError
from repro.config import ZiGongConfig, test_config
from repro.data.instruct import InstructExample, corpus_texts, tokenize_examples
from repro.baselines.lm import LMClassifier
from repro.lora.inject import apply_lora, iter_lora_modules, merge_lora
from repro.nn.transformer import MistralTiny
from repro.optim.adamw import AdamW
from repro.optim.schedule import CosineDecayLR
from repro.tokenizer.vocab import Vocab
from repro.tokenizer.whitespace import WordTokenizer
from repro.training.callbacks import Callback, History
from repro.training.checkpoint import CheckpointManager
from repro.training.trainer import Trainer


class ZiGong:
    """A financial-credit instruction-following model."""

    def __init__(self, config: ZiGongConfig, tokenizer: WordTokenizer):
        if config.model.vocab_size < tokenizer.vocab_size:
            raise ConfigError(
                f"model vocab {config.model.vocab_size} smaller than tokenizer "
                f"vocab {tokenizer.vocab_size}"
            )
        self.config = config
        self.tokenizer = tokenizer
        self.model = MistralTiny(config.model, rng=config.seed)
        self._lora_applied = False
        self._classifiers: dict[str, LMClassifier] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_examples(
        cls,
        examples: Sequence[InstructExample],
        config: ZiGongConfig | None = None,
        max_vocab: int | None = None,
    ) -> "ZiGong":
        """Train a word tokenizer on the example corpus and size the model to it."""
        if not examples:
            raise ConfigError("from_examples() needs at least one example")
        config = config or test_config()
        tokenizer = WordTokenizer.train(corpus_texts(examples), max_vocab=max_vocab)
        return cls(config.with_vocab(tokenizer.vocab_size), tokenizer)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def tokenize(self, examples: Sequence[InstructExample]) -> list[tuple[list[int], list[int]]]:
        """Encode instruction examples for this model's context length."""
        return tokenize_examples(examples, self.tokenizer, max_len=self.config.model.max_seq_len)

    def apply_lora(self) -> None:
        """Inject LoRA adapters (idempotent)."""
        if self._lora_applied:
            return
        apply_lora(self.model, self.config.lora, rng=self.config.seed)
        self._lora_applied = True

    def finetune(
        self,
        examples: Sequence[InstructExample],
        checkpoint_dir: str | Path | None = None,
        use_lora: bool = True,
        callbacks: Sequence[Callback] = (),
        resume: bool = False,
    ) -> History:
        """Supervised fine-tuning with the configured Table-3 recipe.

        With ``checkpoint_dir`` set, checkpoints (and the learning rate in
        effect) are stored for later TracInCP / TracSeq replay.  With
        ``resume=True`` the latest checkpoint in ``checkpoint_dir`` is
        restored first — parameters, optimizer moments, schedule
        position and data order — so a crashed run continues
        bit-identically to an uninterrupted one (``docs/resilience.md``).
        """
        if use_lora:
            self.apply_lora()
        encoded = self.tokenize(examples)
        training = self.config.training
        steps_per_epoch = max(1, len(encoded) // training.batch_size)
        total_steps = max(training.epochs * steps_per_epoch, self.config.warmup_steps + 1)
        schedule = CosineDecayLR(
            self.config.base_lr,
            total_steps=total_steps,
            warmup_steps=min(self.config.warmup_steps, total_steps - 1),
            min_lr=self.config.min_lr,
        )
        manager = None
        if checkpoint_dir is not None:
            manager = CheckpointManager(checkpoint_dir)
            if training.checkpoint_every is None:
                training = replace(training, checkpoint_every=max(1, total_steps // 4))
        if resume and manager is None:
            raise ConfigError("finetune(resume=True) requires checkpoint_dir")
        optimizer = AdamW(self.model.parameters(), lr=self.config.base_lr)
        trainer = Trainer(
            self.model,
            optimizer,
            config=replace(training, pad_id=self.tokenizer.pad_id),
            schedule=schedule,
            checkpoint_manager=manager,
            callbacks=callbacks,
        )
        if resume:
            trainer.resume()
        return trainer.train(encoded)

    def merge_adapters(self) -> int:
        """Fold LoRA adapters into the base weights (fast inference)."""
        return merge_lora(self.model)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def classifier(self, name: str = "ZiGong") -> LMClassifier:
        """A benchmark-harness view of this model.

        Memoized per name so the classifier's prompt
        :class:`~repro.nn.cache.PrefixCache` keeps accumulating across
        calls — repeat prompts skip prefill entirely.  Memoization is
        safe across weight changes: the cache is keyed to the model's
        ``weight_version``, so a :meth:`finetune`, :meth:`apply_lora`,
        :meth:`merge_adapters` or checkpoint load in between flushes any
        stale KV/logit entries on the next generate call.
        """
        if name not in self._classifiers:
            self._classifiers[name] = LMClassifier(self.model, self.tokenizer, name=name)
        return self._classifiers[name]

    def generate_answer(self, prompt: str) -> str:
        """Generate an answer for a raw prompt string."""
        return self.classifier().generate_answer(prompt)

    def generate_answer_batch(self, prompts: Sequence[str]) -> list[str]:
        """Batched :meth:`generate_answer`: one decode loop for all prompts."""
        return self.classifier().generate_answer_batch(list(prompts))

    def score_batch(
        self,
        prompts: Sequence[str],
        positive_text: str = "yes",
        negative_text: str = "no",
    ) -> np.ndarray:
        """P(positive) for many prompts in one padded, masked forward pass.

        The batched scoring path behind the serving engine's micro-batches:
        prompts of unequal length are right-padded together and each row's
        score reads from its own last real position, so results match
        per-prompt ``classifier().score`` calls.
        """
        return self.classifier().score_batch(list(prompts), positive_text, negative_text)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist weights, tokenizer vocabulary and config."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.savez(directory / "weights.npz", **self.model.state_dict())
        meta = {
            "model_config": self.config.model.to_dict(),
            "tokens": self.tokenizer.vocab.tokens(),
            "lora_applied": self._lora_applied,
            "lora": {
                "rank": self.config.lora.rank,
                "alpha": self.config.lora.alpha,
                "target_modules": list(self.config.lora.target_modules),
            },
        }
        (directory / "zigong.json").write_text(json.dumps(meta))

    @classmethod
    def load(cls, directory: str | Path, config: ZiGongConfig | None = None) -> "ZiGong":
        """Load a model saved by :meth:`save`."""
        from repro.nn.transformer import ModelConfig

        directory = Path(directory)
        meta_path = directory / "zigong.json"
        if not meta_path.exists():
            raise CheckpointError(f"no zigong.json in {directory}")
        meta = json.loads(meta_path.read_text())
        vocab = Vocab()
        for token in meta["tokens"]:
            vocab.add(token)
        tokenizer = WordTokenizer(vocab)
        base = config or test_config()
        base = replace(base, model=ModelConfig.from_dict(meta["model_config"]))
        zigong = cls(base, tokenizer)
        if meta.get("lora_applied"):
            zigong.apply_lora()
        with np.load(directory / "weights.npz") as data:
            zigong.model.load_state_dict({k: data[k] for k in data.files})
        return zigong

    @property
    def lora_modules(self):
        return iter_lora_modules(self.model)
