"""ZiGong core: the model API, data pruning and the full pipeline."""

from repro.core.pipeline import PipelineConfig, PipelineResult, ZiGongPipeline
from repro.core.pruning import STRATEGIES, DataPruner, PrunerConfig
from repro.core.zigong import ZiGong

__all__ = [
    "ZiGong",
    "DataPruner",
    "PrunerConfig",
    "STRATEGIES",
    "ZiGongPipeline",
    "PipelineConfig",
    "PipelineResult",
]
