"""Data-pruning orchestration: agent scoring + TracSeq + Top-K selection.

Implements Section 3.1 of the paper end to end: a lightweight agent
model scores samples, TracSeq estimates time-decayed gradient influence
against a validation set, and the Top-K by the combined score form the
pruned dataset D (Eq. 2) that :func:`~repro.data.mixing.hybrid_mix`
blends back with the original data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.data.instruct import InstructExample, labels_of, timestamps_of
from repro.influence.agent import AgentScorer
from repro.influence.datainf import DataInf
from repro.influence.gradients import GradientProjector, trainable_parameters
from repro.influence.selection import normalize_scores, select_top_k, top_k_indices
from repro.influence.tracin import TracInCP
from repro.influence.tracseq import TracSeq
from repro.training.checkpoint import CheckpointRecord

STRATEGIES = ("tracseq", "tracin", "datainf", "agent", "combined", "ppl", "random")


@dataclass(frozen=True)
class PrunerConfig:
    """How training samples are scored.

    ``strategy``:
        * ``tracseq``  — time-decayed checkpoint influence (the paper);
        * ``tracin``   — plain TracInCP (gamma = 1 ablation);
        * ``datainf``  — closed-form Hessian-adjusted influence at the
          final checkpoint (Kwon et al., 2023) — no replay, the cheap
          option at scale;
        * ``agent``    — lightweight agent-model confidence only;
        * ``combined`` — mean of normalized agent + TracSeq scores;
        * ``ppl``      — negative perplexity under the last checkpoint
          (the PPL metric of Li et al., 2023);
        * ``random``   — uniform noise (control).

    ``normalize_gradients`` switches the gradient dot products to cosine
    similarity (LESS-style), removing the magnitude bias of raw
    influence sums.

    ``workers`` fans checkpoint replays out across a process pool, and
    ``cache_dir`` adds a disk tier to the gradient store so repeated
    scoring runs (or gamma sweeps) reuse previously computed rows — see
    ``docs/influence.md``.
    """

    strategy: str = "tracseq"
    gamma: float = 0.9
    use_sample_time: bool = True
    projection_dim: int | None = 128
    agent_features: int = 256
    normalize_gradients: bool = False
    workers: int = 0
    cache_dir: str | None = None
    seed: int = 0

    def __post_init__(self):
        if self.strategy not in STRATEGIES:
            raise InfluenceError(f"unknown strategy {self.strategy!r}; choose from {STRATEGIES}")
        if not 0.0 < self.gamma <= 1.0:
            raise InfluenceError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.workers < 0:
            raise InfluenceError(f"workers must be non-negative, got {self.workers}")


class DataPruner:
    """Scores instruction examples and selects the Top-K (Eq. 2)."""

    def __init__(self, config: PrunerConfig | None = None):
        self.config = config or PrunerConfig()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _tracer(self, zigong, checkpoints: Sequence[CheckpointRecord]):
        """The :class:`~repro.influence.api.DataInfluence` backend in use."""
        cfg = self.config
        projector = None
        if cfg.projection_dim is not None:
            dim = sum(p.size for p in trainable_parameters(zigong.model))
            projector = GradientProjector(dim, k=cfg.projection_dim, seed=cfg.seed)
        shared = dict(
            projector=projector,
            normalize=cfg.normalize_gradients,
            workers=cfg.workers,
            cache_dir=cfg.cache_dir,
        )
        if cfg.strategy == "tracin":
            return TracInCP(zigong.model, checkpoints, **shared)
        if cfg.strategy == "datainf":
            return DataInf(zigong.model, checkpoints, **shared)
        return TracSeq(zigong.model, checkpoints, gamma=cfg.gamma, **shared)

    def score(
        self,
        zigong,
        train_examples: Sequence[InstructExample],
        val_examples: Sequence[InstructExample],
        checkpoints: Sequence[CheckpointRecord] = (),
    ) -> np.ndarray:
        """Score every training example (higher = keep)."""
        if not train_examples:
            raise InfluenceError("score() received no training examples")
        cfg = self.config
        if cfg.strategy == "random":
            return np.random.default_rng(cfg.seed).random(len(train_examples))
        if cfg.strategy == "agent":
            return self._agent_scores(train_examples)
        if cfg.strategy == "ppl":
            return self._ppl_scores(zigong, train_examples, checkpoints)
        if not checkpoints:
            raise InfluenceError(f"strategy {cfg.strategy!r} requires training checkpoints")
        if not val_examples:
            raise InfluenceError(f"strategy {cfg.strategy!r} requires validation examples")

        tracer = self._tracer(zigong, checkpoints)
        train_tokens = zigong.tokenize(train_examples)
        val_tokens = zigong.tokenize(val_examples)
        influence = tracer.influence(train_tokens, val_tokens).sum(axis=1)
        if cfg.strategy in ("tracseq", "combined") and cfg.use_sample_time:
            influence = influence * tracer.sample_decay(timestamps_of(train_examples))
        if cfg.strategy == "combined":
            agent = self._agent_scores(train_examples)
            return 0.5 * normalize_scores(influence) + 0.5 * normalize_scores(agent)
        return influence

    def _ppl_scores(self, zigong, examples, checkpoints) -> np.ndarray:
        from repro.influence.ppl import ppl_quality_scores
        from repro.training.checkpoint import CheckpointManager

        if not checkpoints:
            raise InfluenceError("strategy 'ppl' requires training checkpoints")
        saved = zigong.model.state_dict()
        try:
            last = sorted(checkpoints, key=lambda r: r.step)[-1]
            CheckpointManager.restore(zigong.model, last)
            return ppl_quality_scores(zigong.model, zigong.tokenize(examples))
        finally:
            zigong.model.load_state_dict(saved)

    def _agent_scores(self, examples: Sequence[InstructExample]) -> np.ndarray:
        texts = [e.prompt for e in examples]
        labels = labels_of(examples)
        if labels.min() < 0 or labels.max() > 1:
            raise InfluenceError("agent strategy needs binary example labels")
        scorer = AgentScorer(n_features=self.config.agent_features)
        scorer.fit(texts, labels)
        return scorer.score(texts, labels)

    # ------------------------------------------------------------------
    # Selection (Eq. 2)
    # ------------------------------------------------------------------

    def select(
        self,
        examples: Sequence[InstructExample],
        scores: np.ndarray,
        k: int,
    ) -> list[InstructExample]:
        """The pruned dataset D: Top-K examples by score."""
        return select_top_k(examples, scores, k)

    def select_indices(self, scores: np.ndarray, k: int) -> np.ndarray:
        return top_k_indices(scores, k)
