"""Promotion gate: may the shadow candidate replace the live model?

The gate is the contract between "the candidate looks fine in shadow"
and "the cluster serves it to real applicants".  It judges three kinds
of evidence, each optional except the shadow window:

* **shadow agreement** — windowed decision-agreement rate between the
  candidate and the live model, plus (optionally) Pearson correlation of
  their scores.  A ``nan`` correlation (zero-variance score stream —
  see :meth:`repro.serving.ShadowDeployment.score_correlation`) is an
  explicit *failure* when correlation is gated: an undefined signal must
  never pass a promotion check by accident.
* **Behavior-Card metric deltas** — accuracy drop and Miss-rate increase
  of the candidate vs. the deployed baseline on a fixed eval set.
* **fairness gaps** — demographic-parity and equalized-odds bounds on
  the candidate's decisions; a ``nan`` odds gap (a protected group with
  no support, see :func:`repro.eval.fairness.fairness_report`) likewise
  fails the gate explicitly rather than comparing as "not greater".

A failed gate never raises — it returns a :class:`GateDecision` whose
``reasons`` say exactly which checks failed, so the pipeline can log the
decision, discard the candidate, and keep serving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.eval.fairness import FairnessReport
    from repro.eval.harness import EvalResult
    from repro.serving.monitoring import ShadowDeployment


@dataclass(frozen=True)
class PromotionGate:
    """Thresholds a shadow candidate must clear before promotion.

    ``None`` disables an optional check; the shadow-window checks
    (``min_shadow_requests``, ``min_agreement``) are always on.
    """

    min_shadow_requests: int = 16
    min_agreement: float = 0.8
    min_correlation: float | None = None
    max_accuracy_drop: float | None = 0.05
    max_miss_increase: float | None = 0.05
    max_parity_gap: float | None = None
    max_odds_gap: float | None = None

    def __post_init__(self) -> None:
        if self.min_shadow_requests < 1:
            raise ConfigError("min_shadow_requests must be at least 1")
        if not 0.0 <= self.min_agreement <= 1.0:
            raise ConfigError(f"min_agreement must be in [0, 1], got {self.min_agreement}")


@dataclass(frozen=True)
class GateDecision:
    """Outcome of one gate evaluation: verdict, reasons, and evidence."""

    passed: bool
    reasons: tuple[str, ...] = ()
    metrics: Mapping[str, float] = field(default_factory=dict)


def evaluate_gate(
    gate: PromotionGate,
    shadow: "ShadowDeployment",
    baseline_eval: "EvalResult | None" = None,
    candidate_eval: "EvalResult | None" = None,
    candidate_fairness: "FairnessReport | None" = None,
) -> GateDecision:
    """Judge a shadow candidate against the gate's thresholds.

    Evidence that was not collected (no eval set, no fairness groups) is
    simply not judged; evidence that was collected but is *undefined*
    (nan correlation, nan odds gap) fails its check explicitly.
    """
    reasons: list[str] = []
    metrics: dict[str, float] = {}

    n = shadow.n_window
    metrics["shadow_requests"] = float(n)
    metrics["shadow_errors"] = float(shadow.n_shadow_errors)
    if n < gate.min_shadow_requests:
        reasons.append(
            f"only {n} paired shadow requests in window "
            f"(need >= {gate.min_shadow_requests})"
        )
    else:
        agreement = shadow.agreement_rate()
        metrics["agreement_rate"] = agreement
        if agreement < gate.min_agreement:
            reasons.append(
                f"shadow agreement {agreement:.3f} below {gate.min_agreement:.3f}"
            )
        if gate.min_correlation is not None:
            correlation = shadow.score_correlation()
            metrics["score_correlation"] = correlation
            if math.isnan(correlation):
                reasons.append(
                    "score correlation is undefined (zero-variance score stream); "
                    "refusing to promote on an undefined signal"
                )
            elif correlation < gate.min_correlation:
                reasons.append(
                    f"score correlation {correlation:.3f} below {gate.min_correlation:.3f}"
                )

    if baseline_eval is not None and candidate_eval is not None:
        accuracy_drop = baseline_eval.accuracy - candidate_eval.accuracy
        miss_increase = candidate_eval.miss - baseline_eval.miss
        metrics["accuracy_drop"] = accuracy_drop
        metrics["miss_increase"] = miss_increase
        if gate.max_accuracy_drop is not None and accuracy_drop > gate.max_accuracy_drop:
            reasons.append(
                f"accuracy drop {accuracy_drop:.3f} exceeds {gate.max_accuracy_drop:.3f}"
            )
        if gate.max_miss_increase is not None and miss_increase > gate.max_miss_increase:
            reasons.append(
                f"miss-rate increase {miss_increase:.3f} exceeds {gate.max_miss_increase:.3f}"
            )

    if candidate_fairness is not None:
        parity_gap = candidate_fairness.demographic_parity_difference
        odds_gap = candidate_fairness.equalized_odds_difference
        metrics["parity_gap"] = parity_gap
        metrics["odds_gap"] = odds_gap
        if gate.max_parity_gap is not None and parity_gap > gate.max_parity_gap:
            reasons.append(
                f"demographic-parity gap {parity_gap:.3f} exceeds {gate.max_parity_gap:.3f}"
            )
        if gate.max_odds_gap is not None:
            if math.isnan(odds_gap):
                reasons.append(
                    "equalized-odds gap is undefined (a protected group has no "
                    "positive or negative support); refusing to promote blind"
                )
            elif odds_gap > gate.max_odds_gap:
                reasons.append(
                    f"equalized-odds gap {odds_gap:.3f} exceeds {gate.max_odds_gap:.3f}"
                )

    return GateDecision(passed=not reasons, reasons=tuple(reasons), metrics=metrics)
