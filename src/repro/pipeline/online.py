"""The continuous-learning daemon: drift → retrain → shadow → promote.

ZiGong is deployed as a *continually updated* loan-scoring model: the
live score distribution is watched for drift, a drift trip retrains a
candidate on influence-filtered recent behavior data, the candidate
shadows the production model until a promotion gate passes, and the new
weights roll through the serving cluster's stage→drain→swap deploy with
automatic rollback.  This module wires those existing pieces —
:class:`~repro.serving.DriftMonitor`, :class:`~repro.serving.ShadowDeployment`,
the crash-resumable :class:`~repro.training.Trainer`,
:class:`~repro.core.DataPruner`, and
:class:`~repro.serving.ClusterSupervisor` — into one restartable loop.

Crash safety
------------
Every phase is restartable from the work directory alone:

* the current phase/round live in ``state.json``
  (:class:`~repro.pipeline.PipelineState`, atomic writes);
* the deployed weights live in ``deployed.npz`` (and the pre-promotion
  snapshot in ``prior.npz``) so a restarted daemon rebuilds the exact
  serving model;
* the influence-selected retrain set is persisted to
  ``round-NNN/selected.jsonl`` *before* training starts, and training
  checkpoints land in ``round-NNN/ckpts`` — a daemon killed mid-retrain
  resumes via ``Trainer.resume`` and finishes **bit-identically** to an
  uninterrupted run;
* the finished candidate is persisted to ``round-NNN/candidate.npz``, so
  a crash during shadow or promotion restores it without retraining.
  Shadow comparison records are deliberately *not* persisted: a restart
  recollects the window from live traffic (conservative — the gate only
  ever judges fresh evidence).

Every transition emits a ``pipeline.transition`` obs event and moves the
``pipeline.state`` gauge, so ``repro obs report`` shows the loop's whole
history.  See ``docs/online_learning.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.pruning import DataPruner, PrunerConfig
from repro.core.zigong import ZiGong
from repro.data.instruct import InstructExample
from repro.data.serialization import load_jsonl, save_jsonl
from repro.data.templates import CLASSIFICATION_TEMPLATE
from repro.errors import ConfigError, PipelineError
from repro.eval.fairness import FairnessReport, fairness_report
from repro.eval.harness import EvalResult, EvalSample, evaluate
from repro.obs import Observability, get_observability
from repro.pipeline.gate import GateDecision, PromotionGate, evaluate_gate
from repro.pipeline.state import (
    MONITOR,
    PROMOTE,
    RETRAIN,
    SHADOW,
    PipelineState,
)
from repro.resilience.faults import fault_point
from repro.serving.cluster import ClusterConfig, ClusterSupervisor, zigong_replica_factory
from repro.serving.engine import ScoreRequest
from repro.serving.monitoring import DriftMonitor, ShadowDeployment
from repro.training.checkpoint import CheckpointManager

_CHECKPOINT_STRATEGIES = ("tracseq", "tracin", "datainf", "combined", "ppl")


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs for the online-learning loop.

    ``influence_strategy`` accepts any :data:`repro.core.pruning.STRATEGIES`
    entry; checkpoint-based estimators (tracseq / tracin / datainf /
    combined / ppl) run a short warmup fine-tune per round to produce the
    gradient-replay checkpoints, while ``agent`` (the default) and
    ``random`` score without one.
    """

    drift_window: int = 200
    min_observations: int = 40
    n_bins: int = 10
    retrain_window: int = 256
    min_retrain_examples: int = 8
    keep_fraction: float = 0.7
    influence_strategy: str = "agent"
    influence_val_fraction: float = 0.15
    retrain_epochs: int = 2
    warmup_epochs: int = 1
    shadow_requests: int = 24
    shadow_window: int = 256
    gate: PromotionGate = field(default_factory=PromotionGate)
    question: str | None = None
    threshold: float = 0.5
    verify_probes: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.drift_window < self.n_bins:
            raise ConfigError("drift_window must be at least n_bins")
        if self.min_observations < self.n_bins:
            raise ConfigError("min_observations must be at least n_bins")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ConfigError(f"keep_fraction must be in (0, 1], got {self.keep_fraction}")
        if not 0.0 < self.influence_val_fraction < 1.0:
            raise ConfigError("influence_val_fraction must be in (0, 1)")
        if self.retrain_epochs < 1 or self.warmup_epochs < 1:
            raise ConfigError("retrain_epochs and warmup_epochs must be at least 1")
        if self.shadow_requests < 1:
            raise ConfigError("shadow_requests must be at least 1")
        if self.shadow_window < self.shadow_requests:
            raise ConfigError("shadow_window must hold at least shadow_requests records")
        if self.min_retrain_examples < 1:
            raise ConfigError("min_retrain_examples must be at least 1")


class _ClusterScorer:
    """Behavior-Card scoring through the live cluster (the primary path)."""

    def __init__(self, cluster: ClusterSupervisor):
        self.cluster = cluster
        self._n = 0

    def score(self, behavior_text: str, positive_text: str = "yes",
              negative_text: str = "no") -> float:
        self._n += 1
        [result] = self.cluster.serve(
            [ScoreRequest(user_id=f"pipeline-shadow-{self._n}", behavior_text=behavior_text)]
        )
        return float(result.score)


class _CandidateScorer:
    """The shadow candidate scoring the same raw behavior text.

    Formats prompts exactly like :func:`zigong_replica_factory` replicas
    (same template, same question) so shadow scores are comparable to —
    and, post-promotion, bit-identical with — cluster scores.
    """

    def __init__(self, candidate: ZiGong, question: str):
        self.candidate = candidate
        self.question = question

    def score(self, behavior_text: str, positive_text: str = "yes",
              negative_text: str = "no") -> float:
        fault_point("pipeline.shadow.score")
        prompt = CLASSIFICATION_TEMPLATE.format(sentence=behavior_text, question=self.question)
        classifier = self.candidate.classifier("pipeline-candidate")
        return float(classifier.score(prompt, positive_text, negative_text))


class OnlinePipeline:
    """Drift-triggered retrain → shadow → promote over a serving cluster.

    Parameters
    ----------
    zigong:
        The deployed source model.  LoRA adapters are applied up front
        (idempotent) so candidate state dicts always match the replica
        architecture.  On successful promotion this object is updated to
        the candidate's weights — it *is* the deployed model.
    cluster:
        A :class:`ClusterSupervisor` whose replicas were built from
        ``zigong`` **after** LoRA injection (use :meth:`for_zigong` to
        get the ordering right).
    reference_scores:
        Score distribution the deployed model was approved on — the
        drift reference.  Ignored when the work directory already holds
        a persisted state (the persisted reference wins).
    work_dir:
        Directory owning all pipeline persistence.  Reusing a prior
        run's directory resumes that run.
    eval_samples / eval_groups:
        Optional fixed eval set for the gate's Behavior-Card metric
        deltas; ``eval_groups`` (binary protected attribute, aligned
        with ``eval_samples``) additionally enables the fairness gaps.
    """

    def __init__(
        self,
        zigong: ZiGong,
        cluster: ClusterSupervisor,
        reference_scores,
        work_dir: str | Path,
        config: OnlineConfig | None = None,
        eval_samples: Sequence[EvalSample] = (),
        eval_groups=None,
        obs: Observability | None = None,
    ):
        self.config = config or OnlineConfig()
        self.zigong = zigong
        self.zigong.apply_lora()
        self.cluster = cluster
        self.work_dir = Path(work_dir)
        self.work_dir.mkdir(parents=True, exist_ok=True)
        self.obs = obs or get_observability()
        self.eval_samples = list(eval_samples)
        self.eval_groups = None if eval_groups is None else np.asarray(eval_groups, dtype=np.int64)
        if self.eval_groups is not None and len(self.eval_groups) != len(self.eval_samples):
            raise ConfigError("eval_groups must align one-to-one with eval_samples")

        metrics = self.obs.metrics
        self._g_state = metrics.gauge("pipeline.state")
        self._m_drift_trips = metrics.counter("pipeline.drift_trips")
        self._m_retrains = metrics.counter("pipeline.retrains")
        self._m_gate_failures = metrics.counter("pipeline.gate_failures")
        self._m_promotions = metrics.counter("pipeline.promotions")
        self._m_rollbacks = metrics.counter("pipeline.rollbacks")
        self._m_resumes = metrics.counter("pipeline.resumes")

        self._buffer: list[InstructExample] = []
        self._candidate: ZiGong | None = None
        self._shadow: ShadowDeployment | None = None
        self.last_gate: GateDecision | None = None
        self._state_path = self.work_dir / "state.json"

        if self._state_path.exists():
            self.state = PipelineState.load(self._state_path)
            self.state.resumes += 1
            self._m_resumes.inc()
            deployed = self.work_dir / "deployed.npz"
            if deployed.exists():
                state = _load_npz(deployed)
                self.zigong.model.load_state_dict(state)
                # The cluster is rebuilt from the caller's model object,
                # which may predate promotions recorded on disk: push the
                # persisted weights through a rolling deploy so serving
                # matches state.json from the first request.
                self.cluster.deploy({k: v.copy() for k, v in state.items()})
            if self.state.phase in (SHADOW, PROMOTE):
                self._candidate = self._restore_candidate()
                if self._candidate is None:
                    # candidate.npz missing means the crash predated the
                    # candidate snapshot: fall back to finishing the
                    # retrain (selected.jsonl + checkpoints are there).
                    self.state.phase = RETRAIN
                elif self.state.phase == SHADOW:
                    # Shadow records are not persisted: recollect the
                    # window from live traffic before judging the gate.
                    self._arm_shadow()
            self.state.save(self._state_path)
            self.obs.event("pipeline.resumed", phase=self.state.phase,
                           round=self.state.round, resumes=self.state.resumes)
            reference = np.asarray(self.state.reference_scores, dtype=np.float64)
        else:
            reference = np.asarray(reference_scores, dtype=np.float64)
            self.state = PipelineState(
                reference_scores=[float(s) for s in reference],
            )
            self._save_deployed()
            self.state.save(self._state_path)
        self.monitor = self._build_monitor(reference)
        self._g_state.set(self.state.code)

    @classmethod
    def for_zigong(
        cls,
        zigong: ZiGong,
        reference_scores,
        work_dir: str | Path,
        config: OnlineConfig | None = None,
        cluster_config: ClusterConfig | None = None,
        obs: Observability | None = None,
        **kwargs,
    ) -> "OnlinePipeline":
        """Build pipeline + cluster together, in the right order.

        LoRA is applied to ``zigong`` *before* the replica factory
        snapshots its weights, so candidate state dicts (which name LoRA
        params) load one-to-one into every replica.
        """
        config = config or OnlineConfig()
        zigong.apply_lora()
        factory = zigong_replica_factory(
            zigong, threshold=config.threshold, question=config.question
        )
        cluster = ClusterSupervisor(factory, cluster_config or ClusterConfig(), obs=obs)
        return cls(zigong, cluster, reference_scores, work_dir,
                   config=config, obs=obs, **kwargs)

    # -- ingestion and the main loop -----------------------------------

    def ingest(self, examples: Sequence[InstructExample]) -> None:
        """Feed labeled recent behavior examples into the replay buffer.

        The buffer keeps the most recent ``retrain_window`` examples;
        retrains select from it.
        """
        self._buffer.extend(examples)
        overflow = len(self._buffer) - self.config.retrain_window
        if overflow > 0:
            del self._buffer[:overflow]

    def tick(self, requests: Sequence[ScoreRequest] = ()) -> list[float]:
        """Advance the daemon one step over a micro-batch of live traffic.

        Scores the requests on the live path (shadow-compared while a
        candidate is in shadow), feeds the drift monitor, then runs
        whatever phase work is due.  Returns the live scores, in order.
        """
        scores = self._score(list(requests))
        if self.state.phase == MONITOR:
            self._check_drift()
        if self.state.phase == RETRAIN:
            self._retrain()
        if (
            self.state.phase == SHADOW
            and self._shadow is not None
            and self._shadow.n_window >= self.config.shadow_requests
        ):
            self._judge()
        if self.state.phase == PROMOTE:
            self._promote()
        return scores

    @property
    def phase(self) -> str:
        return self.state.phase

    # -- scoring -------------------------------------------------------

    def _score(self, requests: list[ScoreRequest]) -> list[float]:
        if not requests:
            return []
        if self.state.phase == SHADOW and self._shadow is not None:
            scores = [self._shadow.score(r.behavior_text) for r in requests]
            self.state.shadow_scored = self._shadow.n_window
            self.state.save(self._state_path)
        else:
            results = self.cluster.serve(requests)
            scores = [float(r.score) for r in results]
        self.monitor.observe_many(scores)
        return scores

    # -- phase: monitor ------------------------------------------------

    def _check_drift(self) -> None:
        if self.monitor.n_observed < self.config.min_observations:
            return
        status = self.monitor.status()
        if status != "drift":
            return
        psi = float(self.monitor.psi())
        self._m_drift_trips.inc()
        self.state.round += 1
        self.state.drift_psi = psi
        self._transition(RETRAIN, psi=psi)

    # -- phase: retrain ------------------------------------------------

    def _round_dir(self) -> Path:
        directory = self.work_dir / f"round-{self.state.round:03d}"
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def _retrain(self) -> None:
        round_dir = self._round_dir()
        selected_path = round_dir / "selected.jsonl"
        if selected_path.exists():
            selected = load_jsonl(selected_path)
        else:
            if len(self._buffer) < self.config.min_retrain_examples:
                # Drift tripped but labels have not arrived yet; stay in
                # RETRAIN and try again next tick.
                return
            selected = self._select(list(self._buffer), round_dir)
            # Persisted before training starts: a daemon killed
            # mid-retrain resumes over the *identical* data order, which
            # is what makes kill-and-resume bit-identical.
            save_jsonl(selected, selected_path)
        self._m_retrains.inc()
        candidate = self._clone_deployed()
        with self.obs.span("pipeline.retrain", round=self.state.round,
                           examples=len(selected)):
            candidate.finetune(
                selected,
                checkpoint_dir=round_dir / "ckpts",
                resume=True,
            )
        _save_npz(round_dir / "candidate.npz", candidate.model.state_dict())
        self._candidate = candidate
        self._arm_shadow()
        self._transition(SHADOW, examples=len(selected))

    def _select(self, recent: list[InstructExample], round_dir: Path) -> list[InstructExample]:
        """Influence-filter the replay buffer down to the keep fraction."""
        cfg = self.config
        keep = max(1, int(round(cfg.keep_fraction * len(recent))))
        if keep >= len(recent):
            return recent
        n_val = max(1, int(round(cfg.influence_val_fraction * len(recent))))
        train, val = recent[:-n_val], recent[-n_val:]
        keep = min(keep, len(train))
        pruner = DataPruner(PrunerConfig(strategy=cfg.influence_strategy, seed=cfg.seed))
        checkpoints = ()
        scorer = self.zigong
        if cfg.influence_strategy in _CHECKPOINT_STRATEGIES:
            # Gradient-replay estimators need checkpoints: run a short
            # warmup fine-tune of a deployed-weights clone to produce
            # them (the ZiGongPipeline warmup pattern, per round).
            scorer = self._clone_deployed(epochs=cfg.warmup_epochs)
            warmup_dir = round_dir / "warmup"
            scorer.finetune(train, checkpoint_dir=warmup_dir)
            checkpoints = CheckpointManager(warmup_dir).checkpoints()
        scores = pruner.score(scorer, train, val, checkpoints)
        return pruner.select(train, scores, keep)

    def _clone_deployed(self, epochs: int | None = None) -> ZiGong:
        """A fresh ZiGong carrying the deployed weights (LoRA applied)."""
        cfg = self.zigong.config
        training = replace(cfg.training, epochs=epochs or self.config.retrain_epochs)
        clone = ZiGong(replace(cfg, training=training), self.zigong.tokenizer)
        clone.apply_lora()
        clone.model.load_state_dict(
            {k: v.copy() for k, v in self.zigong.model.state_dict().items()}
        )
        return clone

    # -- phase: shadow -------------------------------------------------

    def _arm_shadow(self) -> None:
        from repro.serving.behavior_card import DEFAULT_QUESTION

        if self._candidate is None:
            raise PipelineError("cannot arm shadow scoring without a candidate")
        question = self.config.question or DEFAULT_QUESTION
        self._shadow = ShadowDeployment(
            _ClusterScorer(self.cluster),
            _CandidateScorer(self._candidate, question),
            window=self.config.shadow_window,
            obs=self.obs,
        )
        self.state.shadow_scored = 0

    def _judge(self) -> None:
        baseline_eval: EvalResult | None = None
        candidate_eval: EvalResult | None = None
        candidate_fairness: FairnessReport | None = None
        if self.eval_samples:
            baseline_eval = evaluate(
                self.zigong.classifier("pipeline-baseline"), self.eval_samples, "gate"
            )
            candidate_eval = evaluate(
                self._candidate.classifier("pipeline-candidate"), self.eval_samples, "gate"
            )
            if self.eval_groups is not None:
                predictions = self._candidate.classifier("pipeline-candidate").predict_many(
                    self.eval_samples
                )
                candidate_fairness = fairness_report(
                    [s.label for s in self.eval_samples],
                    [0 if p.label is None else int(p.label) for p in predictions],
                    self.eval_groups,
                )
        decision = evaluate_gate(
            self.config.gate, self._shadow, baseline_eval, candidate_eval, candidate_fairness
        )
        self.last_gate = decision
        self.obs.event(
            "pipeline.gate",
            round=self.state.round,
            passed=decision.passed,
            reasons=list(decision.reasons),
            metrics=dict(decision.metrics),
        )
        if decision.passed:
            self._transition(PROMOTE, agreement=decision.metrics.get("agreement_rate"))
        else:
            self._m_gate_failures.inc()
            self.state.gate_failures += 1
            self._candidate = None
            self._shadow = None
            self.monitor = self._build_monitor(self._reference())
            self._transition(MONITOR, gate="failed", reasons=list(decision.reasons))

    # -- phase: promote ------------------------------------------------

    def _promote(self) -> None:
        if self._candidate is None:
            raise PipelineError("promotion reached without a candidate")
        round_ = self.state.round
        candidate_state = {
            k: v.copy() for k, v in self._candidate.model.state_dict().items()
        }
        # Snapshot the serving weights first: rollback (and a restarted
        # daemon) must be able to restore the exact prior version.
        _save_npz(self.work_dir / "prior.npz", self.zigong.model.state_dict())
        try:
            fault_point("pipeline.promote", round=round_)
            with self.obs.span("pipeline.promote", round=round_):
                self.cluster.deploy(candidate_state)
            fault_point("pipeline.promote.verify", round=round_)
            self._verify_deploy()
        except Exception as error:  # noqa: BLE001 — any failure rolls back
            self._rollback(error)
            return
        self.zigong.model.load_state_dict(candidate_state)
        self._save_deployed()
        self._rebaseline()
        self._m_promotions.inc()
        self.state.promotions += 1
        self.state.shadow_scored = 0
        self._candidate = None
        self._shadow = None
        self._transition(MONITOR, promoted=True)

    def _verify_deploy(self) -> None:
        """Probe the cluster: served scores must match the candidate's.

        Replays the freshest shadow prompts — the candidate's scores on
        them are known — through the deployed cluster.  A mismatch means
        a replica is serving something other than the promoted weights.
        """
        if self._shadow is None:
            return
        records = self._shadow.records()[-self.config.verify_probes:]
        if not records:
            return
        results = self.cluster.serve(
            [
                ScoreRequest(user_id=f"pipeline-verify-{i}", behavior_text=r.prompt)
                for i, r in enumerate(records)
            ]
        )
        for result, record in zip(results, records):
            if not np.isclose(result.score, record.shadow_score, atol=1e-9):
                raise PipelineError(
                    f"post-promotion verification failed: replica served "
                    f"{result.score:.6f}, candidate scored {record.shadow_score:.6f}"
                )

    def _rollback(self, error: Exception) -> None:
        prior = _load_npz(self.work_dir / "prior.npz")
        self.cluster.deploy(prior)
        self.zigong.model.load_state_dict(prior)
        self._save_deployed()
        self._m_rollbacks.inc()
        self.state.rollbacks += 1
        self.state.shadow_scored = 0
        self._candidate = None
        self._shadow = None
        self.monitor = self._build_monitor(self._reference())
        self._transition(MONITOR, rolled_back=True, error=repr(error))

    def _rebaseline(self) -> None:
        """Re-anchor the drift reference on the gate-approved candidate scores.

        The promoted model scores differently by construction; without
        re-anchoring, PSI would re-trip on the promotion itself.
        """
        shadow_scores = (
            [r.shadow_score for r in self._shadow.records()] if self._shadow else []
        )
        if len(shadow_scores) >= self.config.n_bins:
            reference = np.asarray(shadow_scores, dtype=np.float64)
            self.state.reference_scores = [float(s) for s in shadow_scores]
        else:
            reference = self._reference()
        self.monitor = self._build_monitor(reference)

    # -- plumbing ------------------------------------------------------

    def _reference(self) -> np.ndarray:
        return np.asarray(self.state.reference_scores, dtype=np.float64)

    def _build_monitor(self, reference: np.ndarray) -> DriftMonitor:
        return DriftMonitor(
            reference,
            window=self.config.drift_window,
            n_bins=self.config.n_bins,
            obs=self.obs,
        )

    def _transition(self, phase: str, **fields) -> None:
        self.state.phase = phase
        self.state.save(self._state_path)
        self._g_state.set(self.state.code)
        self.obs.event("pipeline.transition", phase=phase, round=self.state.round,
                       **{k: v for k, v in fields.items() if v is not None})

    def _save_deployed(self) -> None:
        _save_npz(self.work_dir / "deployed.npz", self.zigong.model.state_dict())

    def _restore_candidate(self) -> ZiGong | None:
        path = self.work_dir / f"round-{self.state.round:03d}" / "candidate.npz"
        if not path.exists():
            return None
        candidate = self._clone_deployed()
        candidate.model.load_state_dict(_load_npz(path))
        return candidate


def _save_npz(path: Path, state: Mapping[str, np.ndarray]) -> None:
    """Atomic state-dict snapshot (tmp file + rename, like checkpoints)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **{k: np.asarray(v) for k, v in state.items()})
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _load_npz(path: Path) -> dict[str, np.ndarray]:
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}
