"""Online learning: the drift → retrain → shadow → promote daemon.

Wires the repo's existing pieces — :class:`~repro.serving.DriftMonitor`,
influence-filtered selection (:class:`~repro.core.DataPruner`), the
crash-resumable :class:`~repro.training.Trainer`,
:class:`~repro.serving.ShadowDeployment`, and the cluster's rolling
deploy — into one restartable continuous-learning loop.  See
``docs/online_learning.md`` for the state machine, gate contract, and
chaos guarantees.
"""

from repro.pipeline.gate import GateDecision, PromotionGate, evaluate_gate
from repro.pipeline.online import OnlineConfig, OnlinePipeline
from repro.pipeline.state import (
    MONITOR,
    PHASE_CODES,
    PHASES,
    PROMOTE,
    RETRAIN,
    SHADOW,
    PipelineState,
)

__all__ = [
    "GateDecision",
    "MONITOR",
    "OnlineConfig",
    "OnlinePipeline",
    "PHASES",
    "PHASE_CODES",
    "PipelineState",
    "PROMOTE",
    "PromotionGate",
    "RETRAIN",
    "SHADOW",
    "evaluate_gate",
]
