"""Persisted state machine for the online-learning pipeline.

The pipeline cycles through four phases::

    MONITOR -> RETRAIN -> SHADOW -> PROMOTE -> MONITOR
        ^                    |                    |
        +---- gate failed ---+---- rolled back ---+

Every transition is persisted to ``state.json`` in the pipeline's work
directory *before* the next phase starts, using the same atomic
write-then-rename discipline as :class:`repro.training.CheckpointManager`
— a crash at any point leaves either the old or the new state on disk,
never a torn file.  A fresh :class:`~repro.pipeline.OnlinePipeline` over
the same work directory resumes from the persisted phase.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import PipelineError

MONITOR = "monitor"
RETRAIN = "retrain"
SHADOW = "shadow"
PROMOTE = "promote"

PHASES = (MONITOR, RETRAIN, SHADOW, PROMOTE)

# Numeric encoding for the ``pipeline.state`` gauge (dashboards plot
# numbers, not strings).
PHASE_CODES = {phase: code for code, phase in enumerate(PHASES)}

_STATE_VERSION = 1


@dataclass
class PipelineState:
    """Everything a restarted daemon needs to pick up where it crashed.

    ``round`` counts drift trips (retrain attempts), not promotions:
    a gate failure burns a round.  ``reference_scores`` carries the
    drift reference across restarts so the monitor re-anchors on the
    distribution the *deployed* model was approved on, not whatever the
    constructor was handed.
    """

    phase: str = MONITOR
    round: int = 0
    drift_psi: float | None = None
    reference_scores: list[float] = field(default_factory=list)
    shadow_scored: int = 0
    promotions: int = 0
    rollbacks: int = 0
    gate_failures: int = 0
    resumes: int = 0

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise PipelineError(f"unknown pipeline phase {self.phase!r}; expected one of {PHASES}")

    @property
    def code(self) -> int:
        """Numeric phase code for the ``pipeline.state`` gauge."""
        return PHASE_CODES[self.phase]

    def save(self, path: str | Path) -> None:
        """Atomically persist to ``path`` (write temp, fsync, rename)."""
        path = Path(path)
        payload = {"version": _STATE_VERSION, **asdict(self)}
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | Path) -> "PipelineState":
        path = Path(path)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            raise PipelineError(f"cannot load pipeline state from {path}: {error}") from error
        version = payload.pop("version", None)
        if version != _STATE_VERSION:
            raise PipelineError(f"unsupported pipeline state version {version!r} in {path}")
        try:
            return cls(**payload)
        except TypeError as error:
            raise PipelineError(f"malformed pipeline state in {path}: {error}") from error
