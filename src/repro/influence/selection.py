"""Top-K selection of influential samples (the paper's Eq. 2).

``D = { z_t | z_t in Top-k TracSeq(z_t) }``
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.errors import InfluenceError

T = TypeVar("T")


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` highest scores, in descending score order."""
    scores = np.asarray(scores, dtype=np.float64)
    if k <= 0 or k > scores.shape[0]:
        raise InfluenceError(f"k={k} out of range for {scores.shape[0]} scores")
    order = np.argsort(-scores, kind="stable")
    return order[:k]


def bottom_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` lowest scores, in ascending score order."""
    scores = np.asarray(scores, dtype=np.float64)
    if k <= 0 or k > scores.shape[0]:
        raise InfluenceError(f"k={k} out of range for {scores.shape[0]} scores")
    order = np.argsort(scores, kind="stable")
    return order[:k]


def select_top_k(items: Sequence[T], scores: np.ndarray, k: int) -> list[T]:
    """Return the ``k`` items with the highest scores (Eq. 2's dataset D)."""
    if len(items) != np.asarray(scores).shape[0]:
        raise InfluenceError(f"{len(items)} items but {len(scores)} scores")
    return [items[i] for i in top_k_indices(scores, k)]


def split_high_low(scores: np.ndarray, fraction: float) -> tuple[np.ndarray, np.ndarray]:
    """Split indices into (high-influence, low-influence) halves.

    ``fraction`` is the share of samples in each returned group; the
    Figure 2 study compares training on the two groups at equal size.
    The groups must be disjoint, so ``fraction`` is capped at 0.5 —
    anything larger would silently place samples in *both* groups and
    corrupt the comparison.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if not 0.0 < fraction <= 0.5:
        raise InfluenceError(
            f"fraction must be in (0, 0.5] so the groups stay disjoint, got {fraction}"
        )
    if scores.shape[0] < 2:
        raise InfluenceError("split_high_low() needs at least 2 scores")
    k = max(1, int(round(fraction * scores.shape[0])))
    k = min(k, scores.shape[0] // 2)  # rounding must not make the groups overlap
    return top_k_indices(scores, k), bottom_k_indices(scores, k)


def stratified_top_k(scores: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
    """Top-K by score *within each label class*, proportionally allocated.

    Influence sums against a validation set are systematically biased
    toward the majority class (majority-aligned gradients dominate the
    validation gradient sum), so an unstratified Top-K can be single-label
    and destroy the training distribution.  Stratification preserves the
    pool's label mix while still preferring high-influence samples inside
    each class.  Returned indices are ordered by descending score.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if labels.shape[0] != scores.shape[0]:
        raise InfluenceError(f"{labels.shape[0]} labels for {scores.shape[0]} scores")
    if k <= 0 or k > scores.shape[0]:
        raise InfluenceError(f"k={k} out of range for {scores.shape[0]} scores")
    classes, counts = np.unique(labels, return_counts=True)
    # Largest-remainder proportional allocation of k over classes.
    exact = counts / counts.sum() * k
    alloc = np.floor(exact).astype(int)
    remainder = k - alloc.sum()
    if remainder > 0:
        order = np.argsort(-(exact - alloc))
        alloc[order[:remainder]] += 1
    alloc = np.minimum(alloc, counts)
    shortfall = k - alloc.sum()
    if shortfall > 0:  # redistribute to classes with spare members
        for i in np.argsort(-(counts - alloc)):
            take = min(shortfall, counts[i] - alloc[i])
            alloc[i] += take
            shortfall -= take
            if shortfall == 0:
                break
    chosen: list[np.ndarray] = []
    for cls, quota in zip(classes, alloc):
        if quota == 0:
            continue
        members = np.flatnonzero(labels == cls)
        order = members[np.argsort(-scores[members], kind="stable")]
        chosen.append(order[:quota])
    combined = np.concatenate(chosen)
    return combined[np.argsort(-scores[combined], kind="stable")]


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Min-max normalize scores to [0, 1] (constant arrays map to 0.5)."""
    scores = np.asarray(scores, dtype=np.float64)
    low, high = scores.min(), scores.max()
    if high - low < 1e-12:
        return np.full_like(scores, 0.5)
    return (scores - low) / (high - low)
