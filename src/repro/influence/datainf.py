"""DataInf: closed-form Hessian-adjusted influence at the final checkpoint.

Kwon et al. (2023): for LoRA-tuned models the influence-function
Hessian can be approximated *per layer* and inverted in closed form.
Swapping the order of the average and the inverse,

    H_l^{-1}  ~=  (1/n) sum_i (lam_l I + g_il g_il^T)^{-1}

and each rank-one term inverts exactly via Sherman-Morrison:

    (lam I + g g^T)^{-1} v = (1/lam) (v - (g.v) / (lam + |g|^2) g)

so the adjusted test gradient never materializes a ``d x d`` matrix —
only dot products against the ``n`` training gradients.  The influence
of training sample ``z_j`` on test sample ``z'`` is then

    DataInf(z_j, z') = sum_l  g_jl . H_l^{-1} v_l

with ``v`` the test gradient.  Signs follow the repo's TracIn
convention: positive scores are proponents.  Unlike TracInCP's
checkpoint replay (``n x n_ckpt`` backward passes), DataInf needs one
backward pass per example at the *final* checkpoint only — the source
of its speedup — at the cost of a curvature approximation that is
tightest in low-rank (LoRA) subspaces.

The regularizer defaults to the paper's heuristic
``lam_l = lam_scale * mean_i |g_il|^2 / d_l``; pass an explicit ``lam``
to pin it (the golden test compares against an explicit
``np.linalg.inv`` construction at a fixed ``lam``).

Raw gradient rows come from the shared
:class:`~repro.influence.engine.ParallelInfluenceEngine` /
:class:`~repro.influence.store.GradientStore` machinery, so a store
warmed by TracInCP already holds every row DataInf needs at the final
step.  Hessian-*adjusted* test rows are themselves cached under a
:func:`~repro.influence.store.row_cache_key` that folds in the
regularizer and a train-set fingerprint — they can never collide with
raw rows or with adjustments against a different training set.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.influence.api import DataInfluence, TokenInfluence
from repro.influence.engine import ParallelInfluenceEngine
from repro.influence.gradients import (
    GradientProjector,
    TokenExample,
    per_token_examples,
    trainable_parameter_slices,
)
from repro.influence.store import (
    GradientStore,
    example_content_hash,
    row_cache_key,
    train_set_hash,
)
from repro.obs import Observability, get_observability
from repro.training.checkpoint import CheckpointRecord


class DataInf(DataInfluence):
    """Closed-form influence over the final checkpoint's LoRA gradients.

    Parameters
    ----------
    model / checkpoints:
        As in :class:`~repro.influence.tracin.TracInCP`; only the
        *last* checkpoint (highest step) is ever replayed.
    lam:
        Explicit Hessian regularizer applied to every layer.  Default
        ``None`` uses the paper's per-layer heuristic
        ``lam_scale * mean_i |g_il|^2 / d_l``.
    lam_scale:
        Scale of the per-layer heuristic; the paper uses ``0.1``.
    projector:
        Optional gradient sketch.  Projection mixes layers, so the
        per-layer closed form collapses to a single block over the
        sketched vector — still Sherman-Morrison, just one "layer".
    normalize:
        Unit-normalize raw gradient rows before the adjustment
        (cosine-style).  Note token-wise attribution is only an exact
        decomposition with ``normalize=False``.
    store / cache_dir / workers / chunk_size / obs:
        As in :class:`~repro.influence.tracin.TracInCP`.  Share the
        ``store`` with a TracIn tracer and DataInf reuses its raw rows
        at the final step without a single new backward pass.
    cache_adjusted:
        Also cache the Hessian-adjusted test rows (keyed by estimator,
        regularizer and train-set fingerprint).  On by default; the
        adjustment is cheap relative to gradients, but repeated serving
        queries against a fixed train set skip even that.
    """

    estimator_name = "datainf"

    def __init__(
        self,
        model,
        checkpoints: Sequence[CheckpointRecord],
        lam: float | None = None,
        lam_scale: float = 0.1,
        projector: GradientProjector | None = None,
        normalize: bool = False,
        obs: Observability | None = None,
        store: GradientStore | None = None,
        cache_dir=None,
        workers: int = 0,
        chunk_size: int = 256,
        cache_adjusted: bool = True,
    ):
        if not checkpoints:
            raise InfluenceError("DataInf requires at least one checkpoint")
        if lam is not None and lam <= 0:
            raise InfluenceError(f"lam must be positive, got {lam}")
        if lam_scale <= 0:
            raise InfluenceError(f"lam_scale must be positive, got {lam_scale}")
        self.model = model
        self.checkpoint = sorted(checkpoints, key=lambda r: r.step)[-1]
        self.lam = float(lam) if lam is not None else None
        self.lam_scale = float(lam_scale)
        self.projector = projector
        self.normalize = normalize
        self.obs = obs or get_observability()
        self.cache_adjusted = cache_adjusted
        if store is None and cache_dir is not None:
            store = GradientStore(cache_dir=cache_dir, obs=self.obs)
        self.engine = ParallelInfluenceEngine(
            model,
            [self.checkpoint],
            projector=projector,
            normalize=False,  # normalization is applied here, post-store
            store=store,
            workers=workers,
            chunk_size=chunk_size,
            obs=self.obs,
        )
        self.store = self.engine.store

    # -- internals -----------------------------------------------------

    def _rows(self, examples: Sequence[TokenExample], span_name: str) -> np.ndarray:
        rows = self.engine.stacked_rows(examples, self.checkpoint, span_name=span_name)
        if self.normalize:
            norms = np.linalg.norm(rows, axis=1, keepdims=True)
            rows = rows / np.maximum(norms, 1e-12)
        return rows

    def _layer_slices(self, dim: int) -> list[tuple[str, slice]]:
        """Block structure the closed form runs over.

        Without a projector, blocks are the trainable (LoRA) parameters;
        a projector mixes layers, leaving one block over the sketch.
        """
        if self.projector is not None:
            return [("projected", slice(0, dim))]
        return trainable_parameter_slices(self.model)

    def layer_lambdas(self, g_train: np.ndarray) -> list[float]:
        """Per-layer regularizer actually used for a train gradient matrix."""
        lams = []
        for _, layer in self._layer_slices(g_train.shape[1]):
            if self.lam is not None:
                lams.append(self.lam)
                continue
            block = g_train[:, layer]
            d_l = max(block.shape[1], 1)
            mean_sq = float((block * block).sum(axis=1).mean())
            # An all-zero block (untouched adapter) would make lam 0 and
            # the inverse blow up; fall back to a unit regularizer.
            lams.append(self.lam_scale * mean_sq / d_l if mean_sq > 0 else 1.0)
        return lams

    def _adjust(self, g_train: np.ndarray, g_test: np.ndarray) -> np.ndarray:
        """Apply ``H^{-1}`` to every test gradient row, per layer."""
        n = g_train.shape[0]
        adjusted = np.empty_like(g_test)
        lams = self.layer_lambdas(g_train)
        for (_, layer), lam in zip(self._layer_slices(g_train.shape[1]), lams):
            g_l = g_train[:, layer]  # (n, d_l)
            v_l = g_test[:, layer]  # (m, d_l)
            sq = (g_l * g_l).sum(axis=1)  # |g_i|^2
            # coef[i, t] = (g_i . v_t) / (lam + |g_i|^2)
            coef = (g_l @ v_l.T) / (lam + sq)[:, None]
            adjusted[:, layer] = (v_l - (coef.T @ g_l) / n) / lam
        return adjusted

    def _config_key(self, train_hashes: Sequence[str]) -> str:
        base = f"l{self.lam:g}" if self.lam is not None else f"ls{self.lam_scale:g}"
        if self.normalize:
            base += "-n"
        return f"{base}-t{train_set_hash(train_hashes)}"

    def _adjusted_rows(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(g_train, adjusted_test)`` with the adjusted tier cached."""
        examples = list(train_examples) + list(test_examples)
        rows = self._rows(examples, span_name="influence.datainf.rows")
        g_train = rows[: len(train_examples)]
        g_test = rows[len(train_examples) :]
        if not self.cache_adjusted:
            return g_train, self._adjust(g_train, g_test)
        train_hashes = [example_content_hash(e) for e in train_examples]
        adjusted_key = row_cache_key(
            self.engine._pkey, self.estimator_name, self._config_key(train_hashes)
        )
        step = self.checkpoint.step
        test_hashes = [example_content_hash(e) for e in test_examples]
        adjusted = np.empty_like(g_test)
        missing: list[int] = []
        for index, example_hash in enumerate(test_hashes):
            row = self.store.get(step, example_hash, adjusted_key)
            if row is None:
                missing.append(index)
            else:
                adjusted[index] = row
        if missing:
            fresh = self._adjust(g_train, g_test[missing])
            for row, index in zip(fresh, missing):
                adjusted[index] = row
                self.store.put(step, test_hashes[index], adjusted_key, row)
            self.store.flush()
        return g_train, adjusted

    # -- DataInfluence interface ---------------------------------------

    def influence(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Pairwise Hessian-adjusted influence, shape ``(n_train, n_test)``."""
        if not train_examples or not test_examples:
            raise InfluenceError("influence() needs non-empty train and test sets")
        with self.obs.span(
            "influence.datainf.matrix",
            n_train=len(train_examples),
            n_test=len(test_examples),
            step=self.checkpoint.step,
        ):
            g_train, adjusted = self._adjusted_rows(train_examples, test_examples)
            return g_train @ adjusted.T

    def self_influence(self, train_examples: Sequence[TokenExample]) -> np.ndarray:
        """``g_j . H^{-1} g_j`` per training example, shape ``(n_train,)``."""
        if not train_examples:
            raise InfluenceError("self_influence() needs a non-empty train set")
        with self.obs.span(
            "influence.datainf.self",
            n_train=len(train_examples),
            step=self.checkpoint.step,
        ):
            g_train = self._rows(train_examples, span_name="influence.datainf.rows")
            adjusted = self._adjust(g_train, g_train)
            return (g_train * adjusted).sum(axis=1)

    def token_influence(
        self,
        train_examples: Sequence[TokenExample],
        test_example: TokenExample,
    ) -> TokenInfluence:
        """Per-token decomposition of the test example's influence column.

        ``H^{-1}`` is linear in the test gradient and the sequence loss
        is the mean over supervised positions, so with ``normalize=False``
        the token scores sum to ``influence(train, [test_example])[:, 0]``
        exactly — the same identity TracIn enjoys, surviving the
        Hessian adjustment because the adjustment is linear.
        """
        variants, positions = per_token_examples(test_example)
        with self.obs.span(
            "influence.tokens",
            n_train=len(train_examples),
            n_positions=len(positions),
            step=self.checkpoint.step,
        ):
            g_train, adjusted = self._adjusted_rows(train_examples, variants)
            matrix = g_train @ adjusted.T
        return TokenInfluence(positions=positions, scores=matrix / len(positions))
