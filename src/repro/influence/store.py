"""Gradient row cache: the memory/disk store behind influence replay.

TracInCP / TracSeq replay every stored checkpoint and take a backward
pass per (checkpoint, example) pair — by far the dominant cost of
attribution.  The projected gradient *rows* those passes produce are
pure functions of ``(checkpoint step, example content, projector)``, so
they are cached here and reused across calls: repeated ``scores()``
invocations, ``checkpoint_products`` and gamma sweeps all become pure
recombination of stored rows (the structure Bergson builds attribution
on at scale).

Two tiers:

* **memory** — an LRU of individual rows bounded by entry count and
  bytes (:attr:`GradientStore.max_entries` / ``max_bytes``).
* **disk** (optional) — one ``.npz`` shard per ``(checkpoint step,
  projector key)``, written atomically next to the checkpoint directory
  (``cache_dir``), so a warm cache survives the process.

Keys are content-addressed: the example hash covers input ids *and*
labels, and the projector key covers seed / k / input dim, so changing
any of them is a cache miss, never a stale hit.  Hit / miss / byte
counts are exported through ``repro.obs`` (``influence.store.*``).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.obs import Observability, get_observability

StoreKey = tuple[int, str, str]


def row_cache_key(projector_key: str, estimator: str = "raw", config: str = "") -> str:
    """Full cache-key component for one family of gradient rows.

    Raw (estimator-independent) rows keep the bare projector key, so
    every estimator sharing a store reuses the same raw rows — that is
    the point of the shared store.  Estimator-*adjusted* rows (e.g.
    DataInf's Hessian-adjusted test gradients) must never collide with
    raw rows for the same ``(checkpoint, example, projector)`` triple,
    so their key appends the estimator name and its configuration
    (regularization, train-set fingerprint)::

        row_cache_key("p0-k64-d256")                          # raw rows
        row_cache_key("p0-k64-d256", "datainf", "l0.1-t9f2c") # adjusted

    Distinct keys also mean distinct disk shards, so a warm cache
    directory can hold both families side by side.
    """
    if estimator == "raw":
        return projector_key
    suffix = f"+{estimator}" if not config else f"+{estimator}-{config}"
    return projector_key + suffix


def train_set_hash(example_hashes) -> str:
    """Content fingerprint of a training set (order-insensitive).

    DataInf's Hessian estimate — and therefore its adjusted test rows —
    is a function of the *whole* training gradient set; rows adjusted
    against one training set must miss the cache for any other.
    """
    payload = "|".join(sorted(example_hashes)).encode()
    return hashlib.sha1(payload).hexdigest()[:12]


def example_content_hash(example) -> str:
    """Stable content hash of a ``(input_ids, labels)`` token example.

    Python's builtin ``hash`` is salted per process; influence workers
    run in separate processes and disk shards outlive the process, so
    the key must be derived from the token content itself.
    """
    input_ids, labels = example
    payload = (
        np.asarray(input_ids, dtype=np.int64).tobytes()
        + b"|"
        + np.asarray(labels, dtype=np.int64).tobytes()
    )
    return hashlib.sha1(payload).hexdigest()[:20]


class GradientStore:
    """Two-tier cache of projected per-sample gradient rows.

    Parameters
    ----------
    max_entries / max_bytes:
        Bounds on the in-memory LRU tier.  ``max_entries=0`` disables
        memory caching entirely (used by benchmarks as the uncached
        baseline).  Evicted rows remain available from disk.
    cache_dir:
        Optional directory for the disk tier.  Shards are only written
        on :meth:`flush` and are loaded lazily, one ``(step, projector)``
        shard at a time.
    obs:
        Observability hub for the ``influence.store.*`` instruments.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_bytes: int = 256 << 20,
        cache_dir: str | Path | None = None,
        obs: Observability | None = None,
    ):
        if max_entries < 0 or max_bytes < 0:
            from repro.errors import InfluenceError

            raise InfluenceError("store bounds must be non-negative")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_hit_memory = metrics.counter("influence.store.hits", tier="memory")
        self._m_hit_disk = metrics.counter("influence.store.hits", tier="disk")
        self._m_misses = metrics.counter("influence.store.misses")
        self._m_evictions = metrics.counter("influence.store.evictions")
        self._g_entries = metrics.gauge("influence.store.entries")
        self._g_bytes = metrics.gauge("influence.store.bytes")
        self._rows: OrderedDict[StoreKey, np.ndarray] = OrderedDict()
        self._bytes = 0
        # Per-store counts for stats(); the obs counters above may be
        # shared across stores on the same registry.
        self._counts = {"hits_memory": 0, "hits_disk": 0, "misses": 0, "evictions": 0}
        # Disk shards: {(step, projector_key): {example_hash: row}}; a
        # shard is loaded at most once and written only when dirty.
        self._shards: dict[tuple[int, str], dict[str, np.ndarray]] = {}
        self._dirty: set[tuple[int, str]] = set()

    # -- tier plumbing -------------------------------------------------

    def _shard_path(self, step: int, projector_key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"grads-step{step:06d}-{projector_key}.npz"

    def _shard(self, step: int, projector_key: str) -> dict[str, np.ndarray]:
        shard_key = (step, projector_key)
        shard = self._shards.get(shard_key)
        if shard is None:
            shard = {}
            if self.cache_dir is not None:
                path = self._shard_path(step, projector_key)
                if path.exists():
                    with np.load(path) as data:
                        shard = {name: data[name] for name in data.files}
            self._shards[shard_key] = shard
        return shard

    def _remember(self, key: StoreKey, row: np.ndarray) -> None:
        if self.max_entries == 0:
            return
        if key in self._rows:
            self._rows.move_to_end(key)
            return
        self._rows[key] = row
        self._bytes += row.nbytes
        while self._rows and (
            len(self._rows) > self.max_entries or self._bytes > self.max_bytes
        ):
            _, evicted = self._rows.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._m_evictions.inc()
            self._counts["evictions"] += 1
        self._g_entries.set(len(self._rows))
        self._g_bytes.set(self._bytes)

    # -- public API ----------------------------------------------------

    def contains(self, step: int, example_hash: str, projector_key: str) -> bool:
        """Presence probe that does not touch hit/miss accounting."""
        key = (step, example_hash, projector_key)
        if key in self._rows:
            return True
        return example_hash in self._shard(step, projector_key)

    def get(self, step: int, example_hash: str, projector_key: str) -> np.ndarray | None:
        """Look up one row; memory tier first, then the disk shard."""
        key = (step, example_hash, projector_key)
        row = self._rows.get(key)
        if row is not None:
            self._rows.move_to_end(key)
            self._m_hit_memory.inc()
            self._counts["hits_memory"] += 1
            return row
        row = self._shard(step, projector_key).get(example_hash)
        if row is not None:
            self._m_hit_disk.inc()
            self._counts["hits_disk"] += 1
            self._remember(key, row)
            return row
        self._m_misses.inc()
        self._counts["misses"] += 1
        return None

    def put(self, step: int, example_hash: str, projector_key: str, row: np.ndarray) -> None:
        """Insert one row into the memory tier (and the pending shard)."""
        row = np.ascontiguousarray(row)
        self._remember((step, example_hash, projector_key), row)
        if self.cache_dir is not None:
            self._shard(step, projector_key)[example_hash] = row
            self._dirty.add((step, projector_key))

    def flush(self) -> int:
        """Write dirty disk shards atomically; returns shards written."""
        if self.cache_dir is None:
            self._dirty.clear()
            return 0
        written = 0
        for step, projector_key in sorted(self._dirty):
            path = self._shard_path(step, projector_key)
            # np.savez appends ".npz" to names without it, so the temp
            # name must already carry the suffix.
            tmp = path.with_name("." + path.stem + ".tmp.npz")
            try:
                np.savez(tmp, **self._shards[(step, projector_key)])
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
            written += 1
        self._dirty.clear()
        return written

    def stats(self) -> dict[str, float]:
        """Counts for tests and reports (hits by tier, misses, size)."""
        return {
            **{name: float(count) for name, count in self._counts.items()},
            "entries": float(len(self._rows)),
            "bytes": float(self._bytes),
        }

    def __len__(self) -> int:
        return len(self._rows)
