"""Influence computation engine: cached gradient rows, parallel replay.

The engine owns the expensive half of TracInCP / TracSeq: producing a
projected gradient row per ``(checkpoint, example)`` pair.  Rows are
cached in a :class:`~repro.influence.store.GradientStore`, so only the
pairs the store has never seen take a backward pass; everything else —
repeated ``scores()`` calls, ``checkpoint_products``, gamma sweeps — is
recombination of stored rows via chunked matmuls that keep peak memory
at ``chunk_size × n_test`` floats regardless of corpus size.

With ``workers > 1`` the missing checkpoint replays fan out across a
``multiprocessing`` pool (fork start method): each worker inherits a
copy of the model, restores its assigned checkpoint from the ``.npz``
on disk, and streams gradient rows back to the parent, which records an
``influence.worker`` span per completed job.  Workers rely on
:class:`~repro.influence.gradients.GradientProjector` being
deterministic for a given seed across processes, which is pinned by
test.

Numerics are identical to the serial in-process path: rows are computed
by the same :func:`~repro.influence.gradients.gradient_matrix` either
way, and the recombination applies weights per checkpoint exactly as
the unbatched implementation did.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.influence.gradients import GradientProjector, TokenExample, gradient_matrix
from repro.influence.store import GradientStore, example_content_hash
from repro.obs import Observability, get_observability
from repro.resilience import RetryPolicy
from repro.resilience.faults import fault_point
from repro.training.checkpoint import CheckpointManager, CheckpointRecord

# Worker-process state, installed by the pool initializer.  With the
# fork start method the initargs are inherited, not pickled.
_WORKER: dict = {}


def _worker_init(model, projector) -> None:
    _WORKER["model"] = model
    _WORKER["projector"] = projector


def _worker_replay(payload):
    """Restore one checkpoint in this worker and compute gradient rows."""
    step, path, examples = payload
    # Fault injectors installed in the parent are inherited by fork;
    # chaos tests arm this point to crash a worker's chunk.
    fault_point("influence.worker", step=step)
    started = time.perf_counter()
    model = _WORKER["model"]
    with np.load(path) as data:
        model.load_state_dict({name: data[name] for name in data.files})
    rows = gradient_matrix(model, examples, _WORKER["projector"])
    return step, rows, time.perf_counter() - started


def projector_key(projector: GradientProjector | None) -> str:
    """Cache-key component identifying the projection (or its absence)."""
    if projector is None:
        return "exact"
    return projector.key()


class ParallelInfluenceEngine:
    """Computes influence quantities through a gradient store.

    Parameters
    ----------
    model / checkpoints / projector / normalize:
        As in :class:`~repro.influence.tracin.TracInCP`; the model's
        parameters are saved and restored around every computation.
    store:
        Gradient row cache; defaults to a fresh in-memory
        :class:`GradientStore`.  Pass one store to several engines (or
        tracers) to share rows across gamma sweeps and repeated calls.
    workers:
        ``0`` or ``1`` computes in-process; ``> 1`` fans missing
        checkpoint replays out across a fork-based process pool.
    chunk_size:
        Train rows per matmul block during recombination.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` for requeued
        worker chunks: when a pool worker raises (crash, injected
        fault), its chunk is recomputed in-process under this policy
        instead of losing the work; without a policy the chunk is
        recomputed once.
    """

    def __init__(
        self,
        model,
        checkpoints: Sequence[CheckpointRecord],
        projector: GradientProjector | None = None,
        normalize: bool = False,
        store: GradientStore | None = None,
        workers: int = 0,
        chunk_size: int = 256,
        retry_policy: RetryPolicy | None = None,
        obs: Observability | None = None,
    ):
        if not checkpoints:
            raise InfluenceError("influence engine requires at least one checkpoint")
        if workers < 0:
            raise InfluenceError(f"workers must be non-negative, got {workers}")
        if chunk_size <= 0:
            raise InfluenceError(f"chunk_size must be positive, got {chunk_size}")
        self.model = model
        self.checkpoints = sorted(checkpoints, key=lambda r: r.step)
        self.projector = projector
        self.normalize = normalize
        self.obs = obs or get_observability()
        self.store = store if store is not None else GradientStore(obs=self.obs)
        self.workers = workers
        self.chunk_size = chunk_size
        self.retry_policy = retry_policy
        self._pkey = projector_key(projector)
        metrics = self.obs.metrics
        self._m_replays = metrics.counter("influence.checkpoints_replayed")
        self._m_gradient_passes = metrics.counter("influence.gradient_passes")
        self._m_requeued = metrics.counter("influence.worker_requeued")
        self._h_worker = metrics.histogram("influence.worker_s")

    # -- row production ------------------------------------------------

    def _hashes(self, examples: Sequence[TokenExample]) -> list[str]:
        return [example_content_hash(example) for example in examples]

    def _unique(self, examples, hashes) -> dict[str, TokenExample]:
        unique: dict[str, TokenExample] = {}
        for example, example_hash in zip(examples, hashes):
            unique.setdefault(example_hash, example)
        return unique

    def _checkpoint_rows(
        self, record: CheckpointRecord, unique: dict[str, TokenExample]
    ) -> dict[str, np.ndarray]:
        """Rows for every unique example at one checkpoint (compute missing)."""
        fetched: dict[str, np.ndarray] = {}
        missing: dict[str, TokenExample] = {}
        for example_hash, example in unique.items():
            row = self.store.get(record.step, example_hash, self._pkey)
            if row is None:
                missing[example_hash] = example
            else:
                fetched[example_hash] = row
        if missing:
            CheckpointManager.restore(self.model, record)
            rows = gradient_matrix(self.model, list(missing.values()), self.projector)
            for example_hash, row in zip(missing, rows):
                self.store.put(record.step, example_hash, self._pkey, row)
                fetched[example_hash] = row
            self._m_replays.inc()
            self._m_gradient_passes.inc(len(missing))
        return fetched

    def _prefetch(self, unique: dict[str, TokenExample]) -> None:
        """Fan missing checkpoint replays out across a process pool."""
        if self.workers <= 1:
            return
        if "fork" not in multiprocessing.get_all_start_methods():
            return  # platform without fork: fall back to in-process replay
        jobs = []
        for record in self.checkpoints:
            missing = {
                example_hash: example
                for example_hash, example in unique.items()
                if not self.store.contains(record.step, example_hash, self._pkey)
            }
            if missing:
                jobs.append((record, missing))
        if not jobs:
            return
        ctx = multiprocessing.get_context("fork")
        payloads = [
            (record.step, str(record.path), list(missing.values()))
            for record, missing in jobs
        ]
        failed: list[tuple[CheckpointRecord, dict[str, TokenExample]]] = []
        with self.obs.span(
            "influence.prefetch", n_jobs=len(jobs), workers=self.workers
        ):
            with ctx.Pool(
                processes=min(self.workers, len(jobs)),
                initializer=_worker_init,
                initargs=(self.model, self.projector),
            ) as pool:
                replies = pool.imap(_worker_replay, payloads)
                for record, missing in jobs:
                    try:
                        step, rows, worker_s = next(replies)
                    except Exception as error:
                        # A crashed worker loses its chunk, not the run:
                        # the job is requeued for in-process recompute
                        # below, under the retry policy if one is set.
                        self._m_requeued.inc()
                        self.obs.event(
                            "influence.worker_requeued",
                            step=record.step,
                            error=type(error).__name__,
                        )
                        failed.append((record, missing))
                        continue
                    with self.obs.span(
                        "influence.worker",
                        step=step,
                        n_rows=len(missing),
                        worker_s=worker_s,
                    ):
                        for example_hash, row in zip(missing, rows):
                            self.store.put(record.step, example_hash, self._pkey, row)
                    self._h_worker.observe(worker_s)
                    self._m_replays.inc()
                    self._m_gradient_passes.inc(len(missing))
        for record, missing in failed:
            # _checkpoint_rows restores the checkpoint in the parent and
            # computes + stores the rows; callers snapshot and restore
            # the model's parameters around _prefetch, so this is safe.
            if self.retry_policy is not None:
                self.retry_policy.call(self._checkpoint_rows, record, missing)
            else:
                self._checkpoint_rows(record, missing)
        self.store.flush()

    def stacked_rows(
        self,
        examples: Sequence[TokenExample],
        record: CheckpointRecord | None = None,
        span_name: str = "influence.rows",
    ) -> np.ndarray:
        """Raw (unnormalized) gradient rows for ``examples`` at one checkpoint.

        Defaults to the *last* checkpoint — the final model, which is
        the only checkpoint single-model estimators like DataInf look
        at.  Rows come from the store when present; misses are computed
        (fanned out across workers when configured) and cached, so any
        estimator sharing this store reuses them.  The model's
        parameters are saved and restored around the computation.
        """
        if not examples:
            raise InfluenceError("stacked_rows() needs a non-empty example list")
        if record is None:
            record = self.checkpoints[-1]
        hashes = self._hashes(examples)
        unique = self._unique(list(examples), hashes)
        saved = self.model.state_dict()
        try:
            with self.obs.span(span_name, n_examples=len(examples), step=record.step):
                self._prefetch(unique)
                rows = self._checkpoint_rows(record, unique)
            return np.stack([rows[example_hash] for example_hash in hashes])
        finally:
            self.model.load_state_dict(saved)
            self.store.flush()

    def _stack(self, rows: dict[str, np.ndarray], hashes: Sequence[str]) -> np.ndarray:
        matrix = np.stack([rows[example_hash] for example_hash in hashes])
        if self.normalize:
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            matrix = matrix / np.maximum(norms, 1e-12)
        return matrix

    # -- recombination -------------------------------------------------

    def _accumulate_outer(self, total, g_train, g_test, weight) -> None:
        """``total += weight * g_train @ g_test.T`` in bounded-memory chunks."""
        for start in range(0, g_train.shape[0], self.chunk_size):
            stop = start + self.chunk_size
            total[start:stop] += weight * (g_train[start:stop] @ g_test.T)

    def influence_matrix(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
        weights: Sequence[float],
        span_name: str = "influence.matrix",
    ) -> np.ndarray:
        """Weighted pairwise influence, shape ``(n_train, n_test)``."""
        if not train_examples or not test_examples:
            raise InfluenceError("influence_matrix() needs non-empty train and test sets")
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != len(self.checkpoints):
            raise InfluenceError(
                f"{weights.shape[0]} weights for {len(self.checkpoints)} checkpoints"
            )
        train_hashes = self._hashes(train_examples)
        test_hashes = self._hashes(test_examples)
        unique = self._unique(
            list(train_examples) + list(test_examples), train_hashes + test_hashes
        )
        saved = self.model.state_dict()
        try:
            total = np.zeros((len(train_examples), len(test_examples)))
            with self.obs.span(
                span_name,
                n_train=len(train_examples),
                n_test=len(test_examples),
                n_checkpoints=len(self.checkpoints),
            ):
                self._prefetch(unique)
                for index, record in enumerate(self.checkpoints):
                    with self.obs.span("influence.checkpoint", step=record.step):
                        rows = self._checkpoint_rows(record, unique)
                        g_train = self._stack(rows, train_hashes)
                        g_test = self._stack(rows, test_hashes)
                        self._accumulate_outer(total, g_train, g_test, weights[index])
            return total
        finally:
            self.model.load_state_dict(saved)
            self.store.flush()

    def checkpoint_products(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Unweighted per-checkpoint products, shape ``(n_ckpt, n_train)``."""
        if not train_examples or not test_examples:
            raise InfluenceError("checkpoint_products() needs non-empty train and test sets")
        train_hashes = self._hashes(train_examples)
        test_hashes = self._hashes(test_examples)
        unique = self._unique(
            list(train_examples) + list(test_examples), train_hashes + test_hashes
        )
        saved = self.model.state_dict()
        try:
            out = []
            with self.obs.span(
                "influence.products",
                n_train=len(train_examples),
                n_test=len(test_examples),
                n_checkpoints=len(self.checkpoints),
            ):
                self._prefetch(unique)
                for record in self.checkpoints:
                    with self.obs.span("influence.checkpoint", step=record.step):
                        rows = self._checkpoint_rows(record, unique)
                        g_train = self._stack(rows, train_hashes)
                        g_test = self._stack(rows, test_hashes)
                        test_sum = g_test.sum(axis=0)
                        out.append(g_train @ test_sum)
            return np.stack(out)
        finally:
            self.model.load_state_dict(saved)
            self.store.flush()

    def self_influence(
        self,
        train_examples: Sequence[TokenExample],
        weights: Sequence[float],
    ) -> np.ndarray:
        """Weighted self-influence diagonal, shape ``(n_train,)``."""
        if not train_examples:
            raise InfluenceError("self_influence() needs a non-empty train set")
        weights = np.asarray(weights, dtype=np.float64)
        train_hashes = self._hashes(train_examples)
        unique = self._unique(list(train_examples), train_hashes)
        saved = self.model.state_dict()
        try:
            total = np.zeros(len(train_examples))
            with self.obs.span(
                "influence.self",
                n_train=len(train_examples),
                n_checkpoints=len(self.checkpoints),
            ):
                self._prefetch(unique)
                for index, record in enumerate(self.checkpoints):
                    with self.obs.span("influence.checkpoint", step=record.step):
                        rows = self._checkpoint_rows(record, unique)
                        g_train = self._stack(rows, train_hashes)
                        total += weights[index] * (g_train * g_train).sum(axis=1)
            return total
        finally:
            self.model.load_state_dict(saved)
            self.store.flush()
