"""The lightweight *agent model* that scores training samples.

The paper: "we employ an agent model (a domain-specific lightweight
model) to assign scores to training samples, and then integrate the
pruned samples with the original data for model training."

Here the agent is a from-scratch logistic regression over hashed
bag-of-word features of the instruction text.  A sample's score is the
agent's confidence in the sample's *own* label — representative,
learnable samples score high; noisy or mislabeled ones score low.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.ml.features import HashingVectorizer
from repro.ml.logistic import LogisticRegression


class AgentScorer:
    """Score instruction samples with a lightweight domain model."""

    def __init__(self, n_features: int = 256, model: LogisticRegression | None = None):
        self.vectorizer = HashingVectorizer(n_features=n_features)
        self.model = model or LogisticRegression()
        self._fitted = False

    def fit(self, texts: Sequence[str], labels: Sequence[int]) -> "AgentScorer":
        """Train the agent on ``(prompt text, binary label)`` pairs."""
        labels = np.asarray(labels)
        if len(texts) != labels.shape[0]:
            raise InfluenceError(f"{len(texts)} texts but {labels.shape[0]} labels")
        if labels.min() < 0 or labels.max() > 1:
            raise InfluenceError("agent labels must be binary 0/1")
        X = self.vectorizer.transform(list(texts))
        self.model.fit(X, labels)
        self._fitted = True
        return self

    def score(self, texts: Sequence[str], labels: Sequence[int]) -> np.ndarray:
        """Per-sample quality scores in [0, 1].

        Score = agent's predicted probability of the sample's own label.
        """
        if not self._fitted:
            raise InfluenceError("AgentScorer.score() called before fit()")
        labels = np.asarray(labels)
        if len(texts) != labels.shape[0]:
            raise InfluenceError(f"{len(texts)} texts but {labels.shape[0]} labels")
        proba = self.model.predict_proba(self.vectorizer.transform(list(texts)))
        return np.where(labels == 1, proba, 1.0 - proba)
