"""Perplexity-based data scoring (the PPL metric of Li et al., 2023).

A cheap alternative to gradient influence: score each training sample
by how well the (warmup) model already predicts its answer span.  Low
perplexity = clean, representative, learnable; high perplexity = noisy
or out-of-distribution.  The pruning pipeline exposes this as the
``"ppl"`` strategy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.influence.gradients import TokenExample
from repro.tensor import no_grad


def sample_losses(model, examples: Sequence[TokenExample]) -> np.ndarray:
    """Per-sample mean answer-token cross entropy (no gradients)."""
    if not examples:
        raise InfluenceError("sample_losses() received no examples")
    losses = np.empty(len(examples))
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for i, (input_ids, labels) in enumerate(examples):
                loss = model.loss(
                    np.asarray(input_ids, dtype=np.int64)[None, :],
                    np.asarray(labels, dtype=np.int64)[None, :],
                )
                losses[i] = loss.item()
    finally:
        if was_training:
            model.train()
    return losses


def perplexities(model, examples: Sequence[TokenExample]) -> np.ndarray:
    """Per-sample perplexity ``exp(loss)``."""
    return np.exp(sample_losses(model, examples))


def ppl_quality_scores(model, examples: Sequence[TokenExample]) -> np.ndarray:
    """Quality scores: negated loss, so Top-K keeps low-perplexity samples."""
    return -sample_losses(model, examples)
