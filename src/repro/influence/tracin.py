"""TracInCP: influence of training samples via checkpoint gradients.

Pruthi et al. (2020): the influence of training sample ``z`` on test
sample ``z'`` is approximated by replaying stored checkpoints,

    TracInCP(z, z') = sum_i  eta_i * grad(w_i, z) . grad(w_i, z')

where ``eta_i`` is the learning rate in effect at checkpoint ``i``.
:class:`~repro.influence.tracseq.TracSeq` extends this with the paper's
time-decay factor.

All gradient work routes through a
:class:`~repro.influence.engine.ParallelInfluenceEngine` backed by a
:class:`~repro.influence.store.GradientStore`: each ``(checkpoint,
example)`` gradient row is computed at most once per store, so repeated
``scores()`` calls, ``checkpoint_products`` and gamma sweeps reuse the
cached rows instead of redoing the backward passes
(``benchmarks/bench_influence.py`` measures the effect).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.influence.api import DataInfluence, TokenInfluence
from repro.influence.engine import ParallelInfluenceEngine
from repro.influence.gradients import (
    GradientProjector,
    TokenExample,
    per_token_examples,
)
from repro.influence.store import GradientStore
from repro.obs import Observability, get_observability
from repro.training.checkpoint import CheckpointRecord


class TracInCP(DataInfluence):
    """Replay checkpoints and accumulate gradient dot products.

    Parameters
    ----------
    model:
        The model whose architecture matches the checkpoints.  Its
        current parameters are saved and restored around scoring.
    checkpoints:
        Checkpoint records (from :class:`CheckpointManager`) to replay.
    projector:
        Optional :class:`GradientProjector`; with many samples the
        sketched computation is much cheaper and near-identical in
        ranking.
    store / cache_dir:
        Gradient row cache.  By default each tracer gets a private
        in-memory :class:`GradientStore`; pass an explicit ``store`` to
        share rows across tracers (e.g. a gamma sweep), or ``cache_dir``
        to add a disk tier next to the checkpoints.
    workers:
        ``> 1`` fans missing checkpoint replays out across a process
        pool (see :class:`ParallelInfluenceEngine`).
    obs:
        Observability hub; every checkpoint replay is timed in an
        ``influence.checkpoint`` span (child of the surrounding
        ``influence.matrix`` / ``influence.self`` span) and counted,
        so the dominant cost of attribution — gradient passes — shows
        up in traces and metrics, alongside ``influence.store.*`` cache
        hit/miss/byte counts.
    """

    estimator_name = "tracin"

    def __init__(
        self,
        model,
        checkpoints: Sequence[CheckpointRecord],
        projector: GradientProjector | None = None,
        normalize: bool = False,
        obs: Observability | None = None,
        store: GradientStore | None = None,
        cache_dir=None,
        workers: int = 0,
        chunk_size: int = 256,
    ):
        if not checkpoints:
            raise InfluenceError("TracInCP requires at least one checkpoint")
        self.model = model
        self.checkpoints = sorted(checkpoints, key=lambda r: r.step)
        self.projector = projector
        # Cosine-similarity variant (LESS-style): unit-normalize gradients
        # so large-gradient (high-loss / majority-aligned) samples cannot
        # dominate purely by magnitude.  Rows are stored raw; the engine
        # normalizes at recombination time, so one store serves both modes.
        self.normalize = normalize
        self.obs = obs or get_observability()
        if store is None and cache_dir is not None:
            store = GradientStore(cache_dir=cache_dir, obs=self.obs)
        self.engine = ParallelInfluenceEngine(
            model,
            self.checkpoints,
            projector=projector,
            normalize=normalize,
            store=store,
            workers=workers,
            chunk_size=chunk_size,
            obs=self.obs,
        )
        self.store = self.engine.store

    def _checkpoint_weight(self, index: int, record: CheckpointRecord) -> float:
        """Multiplier for checkpoint ``index``; TracInCP uses ``eta_i`` only."""
        return record.lr

    def _weights(self) -> np.ndarray:
        return np.array(
            [
                self._checkpoint_weight(index, record)
                for index, record in enumerate(self.checkpoints)
            ],
            dtype=np.float64,
        )

    def influence(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Pairwise influence, shape ``(n_train, n_test)``."""
        return self.engine.influence_matrix(train_examples, test_examples, self._weights())

    def token_influence(
        self,
        train_examples: Sequence[TokenExample],
        test_example: TokenExample,
    ) -> TokenInfluence:
        """Per-token decomposition of the test example's influence column.

        Each supervised position of the test example becomes a
        single-position variant (its gradient is an ordinary cached
        row), and the sequence loss being the mean over supervised
        positions, the variant columns divided by their count sum to
        exactly ``influence(train, [test_example])[:, 0]`` — with raw
        (unnormalized) gradients.  Under ``normalize=True`` the cosine
        rescaling is per-row and nonlinear, so token scores remain a
        ranking signal but no longer a strict decomposition.
        """
        variants, positions = per_token_examples(test_example)
        matrix = self.engine.influence_matrix(
            train_examples, variants, self._weights(), span_name="influence.tokens"
        )
        return TokenInfluence(positions=positions, scores=matrix / len(positions))

    def checkpoint_products(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Raw per-checkpoint gradient dot products, shape ``(n_ckpt, n_train)``.

        Entry ``[i, j]`` is ``grad(w_i, z_j) . sum_test grad(w_i, z')`` with
        *no* learning-rate or decay weighting applied.  Callers can then
        recombine with arbitrary checkpoint weights — e.g. to sweep the
        TracSeq gamma without recomputing gradients:

            products = tracer.checkpoint_products(train, test)
            lrs = np.array([r.lr for r in tracer.checkpoints])
            scores = (weights * lrs) @ products

        With the gradient store this really is recomputation-free: the
        rows behind the products are cached, so a following
        ``scores()`` call (or another tracer sharing the store) reuses
        them.
        """
        return self.engine.checkpoint_products(train_examples, test_examples)

    def self_influence(self, train_examples: Sequence[TokenExample]) -> np.ndarray:
        """TracIn self-influence (diagonal); high values flag outliers."""
        return self.engine.self_influence(train_examples, self._weights())
