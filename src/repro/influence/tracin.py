"""TracInCP: influence of training samples via checkpoint gradients.

Pruthi et al. (2020): the influence of training sample ``z`` on test
sample ``z'`` is approximated by replaying stored checkpoints,

    TracInCP(z, z') = sum_i  eta_i * grad(w_i, z) . grad(w_i, z')

where ``eta_i`` is the learning rate in effect at checkpoint ``i``.
:class:`~repro.influence.tracseq.TracSeq` extends this with the paper's
time-decay factor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.influence.gradients import GradientProjector, TokenExample, gradient_matrix
from repro.obs import Observability, get_observability
from repro.training.checkpoint import CheckpointManager, CheckpointRecord


class TracInCP:
    """Replay checkpoints and accumulate gradient dot products.

    Parameters
    ----------
    model:
        The model whose architecture matches the checkpoints.  Its
        current parameters are saved and restored around scoring.
    checkpoints:
        Checkpoint records (from :class:`CheckpointManager`) to replay.
    projector:
        Optional :class:`GradientProjector`; with many samples the
        sketched computation is much cheaper and near-identical in
        ranking.
    obs:
        Observability hub; every checkpoint replay is timed in an
        ``influence.checkpoint`` span (child of the surrounding
        ``influence.matrix`` / ``influence.self`` span) and counted,
        so the dominant cost of attribution — gradient passes — shows
        up in traces and metrics.
    """

    def __init__(
        self,
        model,
        checkpoints: Sequence[CheckpointRecord],
        projector: GradientProjector | None = None,
        normalize: bool = False,
        obs: Observability | None = None,
    ):
        if not checkpoints:
            raise InfluenceError("TracInCP requires at least one checkpoint")
        self.model = model
        self.checkpoints = sorted(checkpoints, key=lambda r: r.step)
        self.projector = projector
        # Cosine-similarity variant (LESS-style): unit-normalize gradients
        # so large-gradient (high-loss / majority-aligned) samples cannot
        # dominate purely by magnitude.
        self.normalize = normalize
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_replays = metrics.counter("influence.checkpoints_replayed")
        self._m_gradient_passes = metrics.counter("influence.gradient_passes")

    def _grads(self, examples: Sequence[TokenExample]) -> np.ndarray:
        matrix = gradient_matrix(self.model, examples, self.projector)
        if self.normalize:
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            matrix = matrix / np.maximum(norms, 1e-12)
        return matrix

    def _checkpoint_weight(self, index: int, record: CheckpointRecord) -> float:
        """Multiplier for checkpoint ``index``; TracInCP uses ``eta_i`` only."""
        return record.lr

    def influence_matrix(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Pairwise influence, shape ``(n_train, n_test)``."""
        if not train_examples or not test_examples:
            raise InfluenceError("influence_matrix() needs non-empty train and test sets")
        saved = self.model.state_dict()
        try:
            total = np.zeros((len(train_examples), len(test_examples)))
            with self.obs.span(
                "influence.matrix",
                n_train=len(train_examples),
                n_test=len(test_examples),
                n_checkpoints=len(self.checkpoints),
            ):
                for index, record in enumerate(self.checkpoints):
                    with self.obs.span("influence.checkpoint", step=record.step):
                        CheckpointManager.restore(self.model, record)
                        g_train = self._grads(train_examples)
                        g_test = self._grads(test_examples)
                        weight = self._checkpoint_weight(index, record)
                        total += weight * (g_train @ g_test.T)
                    self._m_replays.inc()
                    self._m_gradient_passes.inc(len(train_examples) + len(test_examples))
            return total
        finally:
            self.model.load_state_dict(saved)

    def scores(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Influence of each training sample, summed over the test set."""
        return self.influence_matrix(train_examples, test_examples).sum(axis=1)

    def checkpoint_products(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Raw per-checkpoint gradient dot products, shape ``(n_ckpt, n_train)``.

        Entry ``[i, j]`` is ``grad(w_i, z_j) . sum_test grad(w_i, z')`` with
        *no* learning-rate or decay weighting applied.  Callers can then
        recombine with arbitrary checkpoint weights — e.g. to sweep the
        TracSeq gamma without recomputing gradients:

            products = tracer.checkpoint_products(train, test)
            lrs = np.array([r.lr for r in tracer.checkpoints])
            scores = (weights * lrs) @ products
        """
        if not train_examples or not test_examples:
            raise InfluenceError("checkpoint_products() needs non-empty train and test sets")
        saved = self.model.state_dict()
        try:
            rows = []
            with self.obs.span(
                "influence.products",
                n_train=len(train_examples),
                n_test=len(test_examples),
                n_checkpoints=len(self.checkpoints),
            ):
                for record in self.checkpoints:
                    with self.obs.span("influence.checkpoint", step=record.step):
                        CheckpointManager.restore(self.model, record)
                        g_train = self._grads(train_examples)
                        g_test = self._grads(test_examples)
                        rows.append(g_train @ g_test.sum(axis=0))
                    self._m_replays.inc()
                    self._m_gradient_passes.inc(len(train_examples) + len(test_examples))
            return np.stack(rows)
        finally:
            self.model.load_state_dict(saved)

    def self_influence(self, train_examples: Sequence[TokenExample]) -> np.ndarray:
        """TracIn self-influence (diagonal); high values flag outliers."""
        if not train_examples:
            raise InfluenceError("self_influence() needs a non-empty train set")
        saved = self.model.state_dict()
        try:
            total = np.zeros(len(train_examples))
            with self.obs.span(
                "influence.self",
                n_train=len(train_examples),
                n_checkpoints=len(self.checkpoints),
            ):
                for index, record in enumerate(self.checkpoints):
                    with self.obs.span("influence.checkpoint", step=record.step):
                        CheckpointManager.restore(self.model, record)
                        g_train = self._grads(train_examples)
                        weight = self._checkpoint_weight(index, record)
                        total += weight * (g_train * g_train).sum(axis=1)
                    self._m_replays.inc()
                    self._m_gradient_passes.inc(len(train_examples))
            return total
        finally:
            self.model.load_state_dict(saved)
