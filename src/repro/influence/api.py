"""The unified attribution interface: one API, swappable estimators.

Captum frames data attribution as an abstract ``DataInfluence`` class
(``influence()``, self-influence, k-most-influential) with concrete
estimators behind it; Bergson makes the same argument at library scale.
This module is that interface for the repo's estimators:

* :class:`~repro.influence.tracin.TracInCP` — checkpoint-replay
  gradient dot products (Pruthi et al., 2020);
* :class:`~repro.influence.tracseq.TracSeq` — TracInCP with the paper's
  temporal decay (Eq. 1);
* :class:`~repro.influence.datainf.DataInf` — closed-form
  Hessian-adjusted scores over the *final* checkpoint only (Kwon et
  al., 2023), dramatically cheaper for LoRA-tuned models.

All three share the same :class:`~repro.influence.store.GradientStore`
rows and :class:`~repro.influence.engine.ParallelInfluenceEngine`
machinery, so swapping estimators never recomputes gradients the store
already holds.  Every estimator also supports **token-wise
attribution** (:meth:`DataInfluence.token_influence`): the per-position
decomposition of a test example's influence scores, which is what the
served "why was this applicant declined" query
(:class:`~repro.serving.explain.ExplainService`) returns to a
regulator.

The pre-interface call shapes — ``influence_matrix()`` and
``scores()`` — keep working through once-per-call-site
``DeprecationWarning`` shims (the same pattern the serving layer used
for its config-object migration).
"""

from __future__ import annotations

import abc
import sys
import warnings
from dataclasses import dataclass
from typing import NamedTuple, Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.influence.gradients import TokenExample
from repro.influence.selection import bottom_k_indices, top_k_indices

# Call sites (file, line, message) already warned about — deprecation
# shims warn exactly once per call site (scoring loops stay quiet, every
# distinct usage still gets one warning).  Shared across all estimators.
_WARNED_SITES: set[tuple[str, int, str]] = set()


def warn_deprecated_once(message: str, stacklevel: int = 2) -> None:
    """Emit ``DeprecationWarning`` once per (caller file, line, message)."""
    try:
        frame = sys._getframe(stacklevel)
        site = (frame.f_code.co_filename, frame.f_lineno, message)
    except ValueError:  # stack shallower than expected; warn unconditionally
        site = None
    if site is not None:
        if site in _WARNED_SITES:
            return
        _WARNED_SITES.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def reset_deprecation_warnings() -> None:
    """Forget warned call sites (so tests can re-assert the first hit)."""
    _WARNED_SITES.clear()


class KMostInfluential(NamedTuple):
    """Result of :meth:`DataInfluence.k_most_influential`.

    ``indices[i, j]`` is the train-set index of the ``j``-th most
    influential example for test example ``i`` (proponents in
    descending influence order, opponents ascending);
    ``scores[i, j]`` is its influence on that test example.
    """

    indices: np.ndarray  # (n_test, k) int
    scores: np.ndarray  # (n_test, k) float


@dataclass(frozen=True)
class TokenInfluence:
    """Per-token attribution of one test example's influence scores.

    ``scores[i, t]`` is the contribution of the test example's token at
    sequence position ``positions[t]`` to training example ``i``'s
    influence.  Positions cover the *supervised* label positions (the
    answer span; prompt positions masked to ``-100`` carry no loss and
    therefore no attribution).  With unnormalized gradients (the
    default), ``scores.sum(axis=1)`` equals the sequence-level
    ``influence()`` column for this test example (up to backward-pass
    roundoff) — attribution is a decomposition, not a heuristic.
    """

    positions: tuple[int, ...]
    scores: np.ndarray  # (n_train, n_positions)

    def totals(self) -> np.ndarray:
        """Sequence-level influence per training example."""
        return self.scores.sum(axis=1)

    def position_totals(self) -> np.ndarray:
        """Aggregate influence per token position, summed over train."""
        return self.scores.sum(axis=0)


class DataInfluence(abc.ABC):
    """Abstract interface every influence estimator implements.

    Concrete estimators differ only in *how* a pairwise influence score
    is computed; everything above — Top-K retrieval, token-wise
    attribution, the serving explain path, the pruning pipeline — is
    written against this interface and works with any of them.
    """

    #: short identifier used in cache keys, CLI flags and audit entries
    estimator_name: str = "abstract"

    @abc.abstractmethod
    def influence(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Pairwise influence scores, shape ``(n_train, n_test)``.

        Positive scores mark proponents (training examples that push
        the model toward its behavior on the test example), negative
        scores opponents.
        """

    @abc.abstractmethod
    def self_influence(self, train_examples: Sequence[TokenExample]) -> np.ndarray:
        """Influence of each training example on itself, shape ``(n_train,)``.

        High self-influence flags memorized / outlier samples.
        """

    @abc.abstractmethod
    def token_influence(
        self,
        train_examples: Sequence[TokenExample],
        test_example: TokenExample,
    ) -> TokenInfluence:
        """Per-token decomposition of ``influence(train, [test_example])``."""

    def k_most_influential(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
        k: int = 5,
        proponents: bool = True,
    ) -> KMostInfluential:
        """Top-``k`` influential training examples per test example.

        ``proponents=True`` returns the highest-influence examples in
        descending order; ``proponents=False`` the lowest (opponents)
        in ascending order — the examples that most *oppose* the
        model's behavior on the test example.
        """
        if k <= 0 or k > len(train_examples):
            raise InfluenceError(
                f"k={k} out of range for {len(train_examples)} train examples"
            )
        matrix = self.influence(train_examples, test_examples)
        pick = top_k_indices if proponents else bottom_k_indices
        indices = np.stack([pick(matrix[:, j], k) for j in range(matrix.shape[1])])
        scores = np.take_along_axis(matrix.T, indices, axis=1)
        return KMostInfluential(indices=indices, scores=scores)

    # -- deprecated call shapes ----------------------------------------

    def influence_matrix(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Deprecated alias of :meth:`influence` (pre-interface name)."""
        warn_deprecated_once(
            "influence_matrix() is deprecated; use influence(train, test)",
            stacklevel=2,
        )
        return self.influence(train_examples, test_examples)

    def scores(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
    ) -> np.ndarray:
        """Deprecated: per-train influence summed over the test set."""
        warn_deprecated_once(
            "scores() is deprecated; use influence(train, test).sum(axis=1)",
            stacklevel=2,
        )
        return self.influence(train_examples, test_examples).sum(axis=1)
