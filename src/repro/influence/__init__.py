"""Training-data influence estimation: TracInCP, TracSeq, agent scoring.

Gradient work is cached in a :class:`GradientStore` and optionally
parallelized by a :class:`ParallelInfluenceEngine` (see
``docs/influence.md``).
"""

from repro.influence.agent import AgentScorer
from repro.influence.engine import ParallelInfluenceEngine, projector_key
from repro.influence.store import GradientStore, example_content_hash
from repro.influence.gradients import (
    GradientProjector,
    flatten_grads,
    gradient_matrix,
    per_sample_gradient,
    trainable_parameters,
)
from repro.influence.selection import (
    bottom_k_indices,
    normalize_scores,
    select_top_k,
    split_high_low,
    stratified_top_k,
    top_k_indices,
)
from repro.influence.ppl import perplexities, ppl_quality_scores, sample_losses
from repro.influence.tracin import TracInCP
from repro.influence.tracseq import TracSeq

__all__ = [
    "TracInCP",
    "TracSeq",
    "AgentScorer",
    "GradientStore",
    "ParallelInfluenceEngine",
    "example_content_hash",
    "projector_key",
    "GradientProjector",
    "per_sample_gradient",
    "gradient_matrix",
    "flatten_grads",
    "trainable_parameters",
    "top_k_indices",
    "bottom_k_indices",
    "select_top_k",
    "split_high_low",
    "stratified_top_k",
    "normalize_scores",
    "sample_losses",
    "perplexities",
    "ppl_quality_scores",
]
