"""Training-data influence estimation behind one interface.

:class:`DataInfluence` is the abstract API (``influence()``,
``self_influence()``, ``token_influence()``, ``k_most_influential()``);
:class:`TracInCP`, :class:`TracSeq` and :class:`DataInf` are the
swappable estimators behind it.  Gradient work is cached in a
:class:`GradientStore` and optionally parallelized by a
:class:`ParallelInfluenceEngine` (see ``docs/influence.md``).
"""

from repro.influence.agent import AgentScorer
from repro.influence.api import (
    DataInfluence,
    KMostInfluential,
    TokenInfluence,
    reset_deprecation_warnings,
    warn_deprecated_once,
)
from repro.influence.datainf import DataInf
from repro.influence.engine import ParallelInfluenceEngine, projector_key
from repro.influence.store import (
    GradientStore,
    example_content_hash,
    row_cache_key,
    train_set_hash,
)
from repro.influence.gradients import (
    GradientProjector,
    flatten_grads,
    gradient_matrix,
    per_sample_gradient,
    per_token_examples,
    trainable_parameter_slices,
    trainable_parameters,
)
from repro.influence.selection import (
    bottom_k_indices,
    normalize_scores,
    select_top_k,
    split_high_low,
    stratified_top_k,
    top_k_indices,
)
from repro.influence.ppl import perplexities, ppl_quality_scores, sample_losses
from repro.influence.tracin import TracInCP
from repro.influence.tracseq import TracSeq

ESTIMATORS: dict[str, type[DataInfluence]] = {
    "tracin": TracInCP,
    "tracseq": TracSeq,
    "datainf": DataInf,
}


def make_estimator(name: str, model, checkpoints, **kwargs) -> DataInfluence:
    """Build an influence estimator by name (CLI / serving factory).

    Estimator-specific knobs that don't apply to the chosen backend —
    ``gamma`` for non-TracSeq, ``lam`` / ``lam_scale`` for non-DataInf —
    are dropped rather than rejected, so one call site can carry a full
    knob set and let the name pick what matters.
    """
    from repro.errors import InfluenceError

    try:
        cls = ESTIMATORS[name]
    except KeyError:
        raise InfluenceError(
            f"unknown estimator {name!r}; choose from {sorted(ESTIMATORS)}"
        ) from None
    if name != "tracseq":
        kwargs.pop("gamma", None)
    if name != "datainf":
        kwargs.pop("lam", None)
        kwargs.pop("lam_scale", None)
    return cls(model, checkpoints, **kwargs)


__all__ = [
    "ESTIMATORS",
    "make_estimator",
    "DataInfluence",
    "KMostInfluential",
    "TokenInfluence",
    "TracInCP",
    "TracSeq",
    "DataInf",
    "AgentScorer",
    "GradientStore",
    "ParallelInfluenceEngine",
    "example_content_hash",
    "row_cache_key",
    "train_set_hash",
    "projector_key",
    "GradientProjector",
    "per_sample_gradient",
    "per_token_examples",
    "gradient_matrix",
    "flatten_grads",
    "trainable_parameters",
    "trainable_parameter_slices",
    "top_k_indices",
    "bottom_k_indices",
    "select_top_k",
    "split_high_low",
    "stratified_top_k",
    "normalize_scores",
    "sample_losses",
    "perplexities",
    "ppl_quality_scores",
    "warn_deprecated_once",
    "reset_deprecation_warnings",
]
