"""Per-sample gradient extraction and random-projection sketching.

TracInCP needs, at each stored checkpoint, the gradient of the loss for
every candidate training sample and every test sample.  Gradients are
flattened over the *trainable* parameters only — with LoRA applied this
is the adapter subspace, which is exactly the space fine-tuning moves in.
"""

from __future__ import annotations

import hashlib
import warnings
from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.nn.module import Module, Parameter

TokenExample = tuple[list[int], list[int]]


def trainable_parameters(model: Module) -> list[Parameter]:
    """The parameters gradients are traced over, in a stable order."""
    params = [p for _, p in sorted(model.named_parameters()) if p.requires_grad]
    if not params:
        raise InfluenceError("model has no trainable parameters to trace")
    return params


def trainable_parameter_slices(model: Module) -> list[tuple[str, slice]]:
    """``(name, slice)`` per trainable parameter into the flat gradient.

    The slices partition the vectors produced by :func:`flatten_grads`
    (same stable name order), giving estimators that reason per layer —
    DataInf's per-layer Hessian adjustment — the block structure of the
    flattened gradient.  With LoRA applied, each ``lora_a`` / ``lora_b``
    factor is its own block, exactly the granularity the DataInf paper
    computes its closed form at.
    """
    named = [(n, p) for n, p in sorted(model.named_parameters()) if p.requires_grad]
    if not named:
        raise InfluenceError("model has no trainable parameters to trace")
    slices = []
    offset = 0
    for name, param in named:
        slices.append((name, slice(offset, offset + param.size)))
        offset += param.size
    return slices


IGNORE_INDEX = -100


def per_token_examples(
    example: TokenExample,
) -> tuple[list[TokenExample], tuple[int, ...]]:
    """Single-supervised-position variants of one token example.

    Returns ``(variants, positions)``: for each supervised label
    position ``t`` (label not ``-100``; position 0 can never be
    supervised because labels are next-token shifted), a copy of the
    example with every *other* label masked to ``-100``.  The loss of
    variant ``t`` is exactly the token-level loss ``l_t``, so — the
    full loss being the mean over supervised positions — the variants'
    gradients divided by ``len(positions)`` sum to the example's
    gradient.  That identity is what makes token-wise influence an
    exact decomposition of the sequence-level score.

    Variants are ordinary :data:`TokenExample` values, so their
    gradient rows are content-addressed and cached in the
    :class:`~repro.influence.store.GradientStore` like any other row.
    """
    input_ids, labels = example
    input_ids = list(input_ids)
    labels = list(labels)
    positions = tuple(
        t for t in range(1, len(labels)) if labels[t] != IGNORE_INDEX
    )
    if not positions:
        raise InfluenceError("example has no supervised label positions to attribute")
    variants = []
    for position in positions:
        masked = [IGNORE_INDEX] * len(labels)
        masked[position] = labels[position]
        variants.append((list(input_ids), masked))
    return variants, positions


def flatten_grads(params: Sequence[Parameter]) -> np.ndarray:
    """Concatenate parameter gradients into one float64 vector.

    Parameters that received no gradient contribute zeros, keeping the
    layout stable across samples.
    """
    chunks = []
    for p in params:
        if p.grad is None:
            chunks.append(np.zeros(p.size, dtype=np.float64))
        else:
            chunks.append(p.grad.reshape(-1).astype(np.float64))
    return np.concatenate(chunks)


def per_sample_gradient(model, example: TokenExample) -> np.ndarray:
    """Gradient of the LM loss for a single tokenized example."""
    params = trainable_parameters(model)
    model.zero_grad()
    input_ids, labels = example
    loss = model.loss(
        np.asarray(input_ids, dtype=np.int64)[None, :],
        np.asarray(labels, dtype=np.int64)[None, :],
    )
    loss.backward()
    grad = flatten_grads(params)
    model.zero_grad()
    return grad


class GradientProjector:
    """Random Gaussian projection of gradient vectors to ``k`` dimensions.

    Johnson–Lindenstrauss: dot products are preserved in expectation, so
    projected TracIn scores approximate the exact ones at a fraction of
    the memory.  Deterministic given ``seed`` — including *across
    processes*: the matrix is derived solely from
    ``numpy.random.default_rng(seed)``, never from process state, so the
    parallel influence engine's workers reproduce the parent's sketch
    exactly (pinned by a subprocess test via :meth:`fingerprint`).

    A ``k`` larger than ``dim`` is clamped to ``dim`` with a
    ``RuntimeWarning`` — two runs configured with different over-large
    ``k`` would otherwise silently produce identical sketches.  The
    requested value stays available as :attr:`requested_k`.
    """

    def __init__(self, dim: int, k: int = 256, seed: int = 0):
        if k <= 0 or dim <= 0:
            raise InfluenceError("projection dims must be positive")
        self.dim = dim
        self.seed = seed
        self.requested_k = k
        if k > dim:
            warnings.warn(
                f"projection k={k} exceeds gradient dim={dim}; clamping to k={dim} "
                "(sketches with any k >= dim are identical)",
                RuntimeWarning,
                stacklevel=2,
            )
        self.k = min(k, dim)
        rng = np.random.default_rng(seed)
        self._matrix = rng.standard_normal((dim, self.k)) / np.sqrt(self.k)

    def key(self) -> str:
        """Cache-key component: effective projection identity."""
        return f"p{self.seed}-k{self.k}-d{self.dim}"

    def fingerprint(self) -> str:
        """Content hash of the projection matrix (determinism checks)."""
        return hashlib.sha1(np.ascontiguousarray(self._matrix).tobytes()).hexdigest()

    def project(self, vec: np.ndarray) -> np.ndarray:
        if vec.shape[-1] != self.dim:
            raise InfluenceError(
                f"vector dim {vec.shape[-1]} does not match projector dim {self.dim}"
            )
        return vec @ self._matrix


def gradient_matrix(
    model,
    examples: Sequence[TokenExample],
    projector: GradientProjector | None = None,
) -> np.ndarray:
    """Stack per-sample gradients into an ``(n, d)`` (or ``(n, k)``) matrix."""
    if not examples:
        raise InfluenceError("gradient_matrix() received no examples")
    rows = []
    for example in examples:
        grad = per_sample_gradient(model, example)
        rows.append(projector.project(grad) if projector is not None else grad)
    return np.stack(rows)
