"""TracSeq: TracInCP with temporal decay (the paper's Eq. 1).

Financial behavior data is sequential: a user's past behavior influences
future predictions, and recent behavior matters more.  TracSeq weights
each checkpoint term by a time-decay factor

    TracSeq(z_t, z'_T) = sum_i  gamma^(T - t_i) * eta_i *
                         grad(w_{t_i}, z_t) . grad(w_{t_i}, z'_T)

with ``gamma in (0, 1]``.  ``gamma == 1`` recovers plain TracInCP.

Two notions of time are supported:

* **checkpoint time** ``t_i`` — by default the checkpoint's ordinal
  position, so later checkpoints (trained on more recent data under the
  paper's sequential training regime) receive higher weight.  Explicit
  ``checkpoint_times`` may be supplied instead.
* **sample time** — optionally, per-sample timestamps further decay the
  contribution of *old training samples* relative to the test horizon
  (``sample_times`` / ``test_time`` on :meth:`scores`), implementing the
  paper's remark that "more recent samples receive higher weights".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InfluenceError
from repro.influence.api import warn_deprecated_once
from repro.influence.gradients import GradientProjector, TokenExample
from repro.influence.tracin import TracInCP
from repro.obs import Observability
from repro.training.checkpoint import CheckpointRecord


class TracSeq(TracInCP):
    """Time-decayed checkpoint influence estimation."""

    estimator_name = "tracseq"

    def __init__(
        self,
        model,
        checkpoints: Sequence[CheckpointRecord],
        gamma: float = 0.9,
        checkpoint_times: Sequence[float] | None = None,
        horizon: float | None = None,
        projector: GradientProjector | None = None,
        normalize: bool = False,
        obs: Observability | None = None,
        store=None,
        cache_dir=None,
        workers: int = 0,
        chunk_size: int = 256,
    ):
        super().__init__(
            model,
            checkpoints,
            projector=projector,
            normalize=normalize,
            obs=obs,
            store=store,
            cache_dir=cache_dir,
            workers=workers,
            chunk_size=chunk_size,
        )
        if not 0.0 < gamma <= 1.0:
            raise InfluenceError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma
        if checkpoint_times is None:
            checkpoint_times = list(range(len(self.checkpoints)))
        if len(checkpoint_times) != len(self.checkpoints):
            raise InfluenceError(
                f"{len(checkpoint_times)} checkpoint_times for "
                f"{len(self.checkpoints)} checkpoints"
            )
        self.checkpoint_times = [float(t) for t in checkpoint_times]
        self.horizon = float(horizon) if horizon is not None else max(self.checkpoint_times)

    def _checkpoint_weight(self, index: int, record: CheckpointRecord) -> float:
        decay = self.gamma ** (self.horizon - self.checkpoint_times[index])
        return decay * record.lr

    def sample_decay(
        self,
        sample_times: Sequence[float],
        test_time: float | None = None,
    ) -> np.ndarray:
        """Per-sample age-decay weights ``gamma ** (test_time - t_j)``.

        ``test_time`` defaults to the newest sample time.  Multiply an
        ``influence()`` aggregate by these weights to implement the
        paper's remark that recent training samples receive higher
        weight.  Validates in microseconds — before any gradient work a
        caller might chain after it.
        """
        times = np.asarray(sample_times, dtype=np.float64)
        horizon = float(test_time) if test_time is not None else float(times.max())
        ages = horizon - times
        if (ages < 0).any():
            raise InfluenceError("sample_times contains timestamps after test_time")
        return self.gamma**ages

    def scores(
        self,
        train_examples: Sequence[TokenExample],
        test_examples: Sequence[TokenExample],
        sample_times: Sequence[float] | None = None,
        test_time: float | None = None,
    ) -> np.ndarray:
        """Deprecated: per-training-sample influence with sample-age decay.

        Use ``influence(train, test).sum(axis=1)``, optionally
        multiplied by :meth:`sample_decay`, instead.  ``sample_times[j]``
        is the timestamp of training sample ``j``; ``test_time``
        defaults to the newest sample time.

        Arguments are validated *before* any gradient work: a bad
        ``sample_times`` must fail in microseconds, not after hours of
        checkpoint replay.
        """
        warn_deprecated_once(
            "TracSeq.scores() is deprecated; use influence(train, test).sum(axis=1)"
            " (optionally * sample_decay(sample_times, test_time))",
            stacklevel=2,
        )
        decay = None
        if sample_times is not None:
            times = np.asarray(sample_times, dtype=np.float64)
            if times.shape[0] != len(train_examples):
                raise InfluenceError(
                    f"{times.shape[0]} sample_times for {len(train_examples)} train examples"
                )
            decay = self.sample_decay(times, test_time)
        with self.obs.span(
            "influence.tracseq.scores",
            n_train=len(train_examples),
            n_test=len(test_examples),
            gamma=self.gamma,
            sample_decay=decay is not None,
        ):
            base = self.influence(train_examples, test_examples).sum(axis=1)
            if decay is None:
                return base
            return base * decay
