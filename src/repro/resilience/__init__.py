"""Resilience: retries, circuit breaking, deterministic fault injection.

ZiGong runs inside a live loan pipeline, where a flapping scorer or a
crashed fine-tune degrades real credit decisions.  This package makes
fault handling a first-class subsystem instead of ad-hoc ``try`` blocks:

* :class:`RetryPolicy` — exponential backoff with deterministic seeded
  jitter and injectable clock/sleep (:mod:`repro.resilience.retry`).
* :class:`CircuitBreaker` — closed / open / half-open over a rolling
  failure-rate window (:mod:`repro.resilience.breaker`).
* :class:`FaultInjector` / :func:`fault_point` — named fault points
  with seeded schedules; zero overhead unless installed
  (:mod:`repro.resilience.faults`).

Wired through :class:`repro.serving.MicroBatchEngine` (retry within the
request deadline, breaker routing to the degraded fallback),
:class:`repro.training.Trainer` (exact crash-resume checkpoints) and
:class:`repro.influence.ParallelInfluenceEngine` (crashed-worker
requeue).  Policies, fault points and tuning live in
``docs/resilience.md``.
"""

from repro.errors import CircuitOpenError, InjectedFault, ResilienceError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.faults import FaultInjector, Schedule, fault_point, installed
from repro.resilience.retry import RetryPolicy

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FaultInjector",
    "Schedule",
    "fault_point",
    "installed",
    "ResilienceError",
    "CircuitOpenError",
    "InjectedFault",
]
