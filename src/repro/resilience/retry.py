"""Retry with exponential backoff and deterministic seeded jitter.

A :class:`RetryPolicy` is a reusable description of *how* to retry —
attempt budget, backoff curve, jitter — with the two side-effectful
dependencies (the clock and ``sleep``) injected, so tests drive time
instead of waiting for it.  Jitter comes from a seeded PRNG: two
policies built with the same seed produce the same delay sequence,
which keeps chaos tests and recorded runs reproducible.

Counters (on the policy's observability hub):

* ``resilience.retry.attempts`` — every call of the wrapped function.
* ``resilience.retry.retries`` — attempts after the first.
* ``resilience.retry.giveups`` — calls that exhausted the policy.
* ``resilience.retry.sleep_s`` — histogram of backoff sleeps.
"""

from __future__ import annotations

import random
import time
from typing import Callable, TypeVar

from repro.errors import ResilienceError
from repro.obs import Observability, get_observability

T = TypeVar("T")


class RetryPolicy:
    """Exponential backoff: ``base * multiplier**attempt``, jittered.

    Parameters
    ----------
    max_attempts:
        Total calls of the wrapped function (first try included).
    base_delay_s / multiplier / max_delay_s:
        Backoff curve: the delay before retry *n* (0-based) is
        ``min(base_delay_s * multiplier**n, max_delay_s)`` before jitter.
    jitter:
        Fractional spread in ``[0, 1]``; each delay is scaled by a
        seeded uniform draw from ``[1 - jitter, 1 + jitter]``.  ``0``
        disables jitter entirely.
    seed:
        Seeds the jitter PRNG — same seed, same delay sequence.
    sleep / clock:
        Injected side effects.  Tests pass a recording fake for
        ``sleep`` and a fake clock so no wall time ever elapses.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.05,
        multiplier: float = 2.0,
        max_delay_s: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        obs: Observability | None = None,
    ):
        if max_attempts <= 0:
            raise ResilienceError(f"max_attempts must be positive, got {max_attempts}")
        if base_delay_s < 0:
            raise ResilienceError(f"base_delay_s must be >= 0, got {base_delay_s}")
        if multiplier < 1.0:
            raise ResilienceError(f"multiplier must be >= 1, got {multiplier}")
        if max_delay_s < base_delay_s:
            raise ResilienceError("max_delay_s must be >= base_delay_s")
        if not 0.0 <= jitter <= 1.0:
            raise ResilienceError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.seed = seed
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._clock = clock
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_attempts = metrics.counter("resilience.retry.attempts")
        self._m_retries = metrics.counter("resilience.retry.retries")
        self._m_giveups = metrics.counter("resilience.retry.giveups")
        self._h_sleep = metrics.histogram("resilience.retry.sleep_s")

    def reset(self) -> None:
        """Rewind the jitter PRNG to the seed (fresh, reproducible run)."""
        self._rng = random.Random(self.seed)

    def delay_for(self, retry_index: int) -> float:
        """Jittered backoff before retry ``retry_index`` (0-based).

        Consumes one draw from the jitter PRNG, so calling this in a
        loop reproduces exactly the sleeps :meth:`call` would perform.
        """
        delay = min(self.base_delay_s * self.multiplier**retry_index, self.max_delay_s)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def call(
        self,
        fn: Callable[..., T],
        *args,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        budget_s: float | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
        **kwargs,
    ) -> T:
        """Invoke ``fn`` under this policy; re-raise its last error on give-up.

        ``budget_s`` bounds the *total* time spent inside this call on
        the policy's clock: a retry whose backoff sleep would overrun
        the budget is not attempted (the serving engine derives this
        from the request deadline, so retries never outlive the caller).
        ``on_retry(retry_index, error)`` is invoked before each backoff
        sleep — a hook for logging or fault accounting.
        """
        started = self._clock()
        last_error: BaseException | None = None
        for attempt in range(self.max_attempts):
            self._m_attempts.inc()
            try:
                return fn(*args, **kwargs)
            except retry_on as error:
                last_error = error
                if attempt + 1 >= self.max_attempts:
                    break
                delay = self.delay_for(attempt)
                if budget_s is not None and (self._clock() - started) + delay > budget_s:
                    break
                if on_retry is not None:
                    on_retry(attempt, error)
                self._h_sleep.observe(delay)
                if delay > 0:
                    self._sleep(delay)
                self._m_retries.inc()
        self._m_giveups.inc()
        assert last_error is not None
        raise last_error
