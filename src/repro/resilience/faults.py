"""Deterministic fault injection at named fault points.

Production code marks the places where faults are *plausible* —
``fault_point("serving.forward")``, ``fault_point("training.checkpoint_saved",
step=k)`` — and a test installs a :class:`FaultInjector` that arms some
of those points with seeded schedules: "fail the 2nd forward", "crash
right after checkpoint 4", "fail 10 % of worker replays".  When no
injector is installed (the production default) a fault point is a
single module-global ``None`` check — zero allocation, zero branches
beyond the guard.

Schedules are deterministic: counting schedules trigger on exact hit
indices, rate schedules draw from a PRNG seeded per point, so a chaos
test replays identically every run.  Fault points are inherited by
``fork``-started worker processes (the injector travels with the
interpreter state), which is how the influence engine's crashed-worker
requeue path is exercised.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Iterator, Mapping

from contextlib import contextmanager

from repro.errors import InjectedFault, ResilienceError

# One Schedule decides, per hit, whether this occurrence faults.
Schedule = Callable[[int, Mapping[str, object]], BaseException | None]

_ACTIVE: "FaultInjector | None" = None


def fault_point(name: str, **context) -> None:
    """Declare a fault point; raises only when an installed injector says so.

    The fast path — no injector installed — is one global load and one
    ``is None`` test, cheap enough for per-batch and per-step call
    sites (overhead budget pinned by ``benchmarks/bench_resilience.py``).
    """
    if _ACTIVE is not None:
        _ACTIVE.hit(name, context)


def installed() -> "FaultInjector | None":
    """The currently installed injector (``None`` in production)."""
    return _ACTIVE


class FaultInjector:
    """Named fault points armed with deterministic schedules.

    Hits are counted per point (1-based) even when no schedule is
    armed, so tests can also use the injector purely as a probe of how
    often a point was reached.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._schedules: dict[str, list[Schedule]] = {}
        self.hits: dict[str, int] = {}
        self.injected: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- arming --------------------------------------------------------

    def on(self, point: str, schedule: Schedule) -> "FaultInjector":
        """Arm ``point`` with a raw schedule; returns self for chaining."""
        self._schedules.setdefault(point, []).append(schedule)
        return self

    def fail_nth(
        self,
        point: str,
        n: int,
        exc: Callable[[str], BaseException] | None = None,
    ) -> "FaultInjector":
        """Fail exactly the ``n``-th hit (1-based) of ``point``."""
        if n <= 0:
            raise ResilienceError(f"n must be positive, got {n}")
        make = exc or (lambda msg: InjectedFault(msg))

        def schedule(hit: int, context: Mapping) -> BaseException | None:
            if hit == n:
                return make(f"injected fault at {point!r} (hit {hit})")
            return None

        return self.on(point, schedule)

    def fail_times(
        self,
        point: str,
        times: int,
        exc: Callable[[str], BaseException] | None = None,
    ) -> "FaultInjector":
        """Fail the first ``times`` hits, then let every later hit pass.

        The shape of a transient fault — exactly what retry tests need.
        """
        if times <= 0:
            raise ResilienceError(f"times must be positive, got {times}")
        make = exc or (lambda msg: InjectedFault(msg))

        def schedule(hit: int, context: Mapping) -> BaseException | None:
            if hit <= times:
                return make(f"injected transient fault at {point!r} (hit {hit}/{times})")
            return None

        return self.on(point, schedule)

    def fail_when(
        self,
        point: str,
        exc: Callable[[str], BaseException] | None = None,
        **match,
    ) -> "FaultInjector":
        """Fail any hit whose context matches every ``key=value`` given.

        ``fail_when("training.checkpoint_saved", step=4)`` crashes the
        run immediately after checkpoint 4 lands on disk.
        """
        if not match:
            raise ResilienceError("fail_when() requires at least one context match")
        make = exc or (lambda msg: InjectedFault(msg))

        def schedule(hit: int, context: Mapping) -> BaseException | None:
            if all(context.get(key) == value for key, value in match.items()):
                return make(f"injected fault at {point!r} ({match})")
            return None

        return self.on(point, schedule)

    def fail_rate(
        self,
        point: str,
        rate: float,
        exc: Callable[[str], BaseException] | None = None,
    ) -> "FaultInjector":
        """Fail each hit independently with probability ``rate``, seeded.

        The PRNG is seeded from ``(self.seed, point)``: the same
        injector configuration produces the same fault pattern run to
        run, regardless of arming order.
        """
        if not 0.0 <= rate <= 1.0:
            raise ResilienceError(f"rate must be in [0, 1], got {rate}")
        make = exc or (lambda msg: InjectedFault(msg))
        rng = random.Random(f"{self.seed}:{point}")

        def schedule(hit: int, context: Mapping) -> BaseException | None:
            if rng.random() < rate:
                return make(f"injected random fault at {point!r} (hit {hit})")
            return None

        return self.on(point, schedule)

    # -- firing --------------------------------------------------------

    def hit(self, point: str, context: Mapping[str, object]) -> None:
        """Record one hit of ``point``; raise if an armed schedule fires."""
        with self._lock:
            count = self.hits.get(point, 0) + 1
            self.hits[point] = count
            error = None
            for schedule in self._schedules.get(point, ()):
                error = schedule(count, context)
                if error is not None:
                    self.injected[point] = self.injected.get(point, 0) + 1
                    break
        if error is not None:
            raise error

    # -- installation --------------------------------------------------

    def install(self) -> "FaultInjector":
        """Make this injector the process-wide active one."""
        global _ACTIVE
        _ACTIVE = self
        return self

    def uninstall(self) -> None:
        """Deactivate if currently installed (idempotent)."""
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None

    @contextmanager
    def active(self) -> Iterator["FaultInjector"]:
        """``with injector.active():`` — install, then restore on exit."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous
