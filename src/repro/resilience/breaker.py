"""Circuit breaker: stop hammering a dependency that is already down.

Classic three-state machine over a rolling outcome window:

* **closed** — calls flow; outcomes are recorded.  When the window
  holds at least ``min_calls`` outcomes and the failure rate reaches
  ``failure_threshold``, the breaker opens.
* **open** — calls are rejected instantly (:class:`CircuitOpenError`)
  until ``reset_timeout_s`` has elapsed on the injectable clock.
* **half-open** — after the timeout, up to ``half_open_max_calls``
  probe calls are admitted.  A probe success closes the breaker (window
  cleared); a probe failure reopens it and restarts the timeout.

The breaker is thread-safe: the serving engine's worker thread and
synchronous ``pump()`` callers may share one instance.

Counters (on the breaker's observability hub):

* ``resilience.breaker.open`` / ``.half_open`` / ``.closed`` — state
  transitions.
* ``resilience.breaker.rejected`` — calls refused while open.
* ``resilience.breaker.state`` — gauge: 0 closed, 1 half-open, 2 open.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, TypeVar

from repro.errors import CircuitOpenError, ResilienceError
from repro.obs import Observability, get_observability

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Failure-rate breaker over a rolling window of call outcomes.

    Parameters
    ----------
    failure_threshold:
        Failure fraction in ``(0, 1]`` that opens the breaker.
    window:
        Number of most-recent outcomes considered.
    min_calls:
        Outcomes required in the window before the rate is evaluated —
        a single failure on a cold breaker never trips it.
    reset_timeout_s:
        How long an open breaker waits before admitting probes.
    half_open_max_calls:
        Concurrent probes admitted in half-open state.
    clock:
        Injectable monotonic clock; tests advance it by hand.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 16,
        min_calls: int = 4,
        reset_timeout_s: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
        obs: Observability | None = None,
        name: str = "default",
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ResilienceError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if window <= 0:
            raise ResilienceError(f"window must be positive, got {window}")
        if min_calls <= 0 or min_calls > window:
            raise ResilienceError(
                f"min_calls must be in [1, window], got {min_calls} (window {window})"
            )
        if reset_timeout_s < 0:
            raise ResilienceError(f"reset_timeout_s must be >= 0, got {reset_timeout_s}")
        if half_open_max_calls <= 0:
            raise ResilienceError(
                f"half_open_max_calls must be positive, got {half_open_max_calls}"
            )
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max_calls = half_open_max_calls
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self.obs = obs or get_observability()
        metrics = self.obs.metrics
        self._m_open = metrics.counter("resilience.breaker.open")
        self._m_half_open = metrics.counter("resilience.breaker.half_open")
        self._m_closed = metrics.counter("resilience.breaker.closed")
        self._m_rejected = metrics.counter("resilience.breaker.rejected")
        self._g_state = metrics.gauge("resilience.breaker.state")
        self._g_state.set(0)

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    def _transition(self, state: str) -> None:
        """Move to ``state`` (lock held) and record the transition."""
        if state == self._state:
            return
        self._state = state
        self._g_state.set(_STATE_GAUGE[state])
        counter = {OPEN: self._m_open, HALF_OPEN: self._m_half_open, CLOSED: self._m_closed}
        counter[state].inc()
        self.obs.event("resilience.breaker", breaker=self.name, state=state)

    def _maybe_half_open(self) -> None:
        """Open -> half-open once the reset timeout has elapsed (lock held)."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.reset_timeout_s:
            self._transition(HALF_OPEN)
            self._half_open_inflight = 0

    # -- call protocol -------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  ``False`` counts as a rejection."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._half_open_inflight < self.half_open_max_calls:
                    self._half_open_inflight += 1
                    return True
            self._m_rejected.inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # Probe succeeded: the dependency is back.
                self._outcomes.clear()
                self._half_open_inflight = 0
                self._transition(CLOSED)
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # Probe failed: reopen and restart the timeout.
                self._half_open_inflight = 0
                self._open()
                return
            self._outcomes.append(True)
            if self._state == CLOSED and len(self._outcomes) >= self.min_calls:
                rate = sum(self._outcomes) / len(self._outcomes)
                if rate >= self.failure_threshold:
                    self._open()

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._transition(OPEN)

    def reset(self) -> None:
        """Force the breaker closed and forget the outcome window.

        For supervisors that *replace* the failing dependency (e.g. the
        serving cluster restarting a crashed replica): the old failure
        history describes a process that no longer exists, so traffic
        should return immediately instead of waiting out
        ``reset_timeout_s`` and the half-open probe dance.
        """
        with self._lock:
            self._outcomes.clear()
            self._half_open_inflight = 0
            self._transition(CLOSED)

    def call(self, fn: Callable[..., T], *args, **kwargs) -> T:
        """Run ``fn`` through the breaker; :class:`CircuitOpenError` if open."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is {self._state}; call rejected"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
