"""Tokenizers: word-level (default for instruct pipelines) and byte-level BPE."""

from repro.tokenizer.base import BaseTokenizer
from repro.tokenizer.bpe import BPETokenizer
from repro.tokenizer.vocab import (
    BOS_TOKEN,
    DEFAULT_SPECIAL_TOKENS,
    EOS_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    UNK_TOKEN,
    Vocab,
)
from repro.tokenizer.whitespace import WordTokenizer

__all__ = [
    "BaseTokenizer",
    "WordTokenizer",
    "BPETokenizer",
    "Vocab",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "BOS_TOKEN",
    "EOS_TOKEN",
    "SEP_TOKEN",
    "DEFAULT_SPECIAL_TOKENS",
]
