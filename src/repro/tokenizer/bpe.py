"""Byte-level BPE tokenizer, trained from scratch.

The algorithm is the classic one: start from the 256 raw bytes, repeatedly
merge the most frequent adjacent pair within pre-tokenized chunks, stop at
the requested vocabulary size.  Pre-tokenization splits text into runs of
non-whitespace and whitespace, so merges never cross word boundaries and
round-trips are byte-exact.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.errors import TokenizerError
from repro.tokenizer.base import BaseTokenizer
from repro.tokenizer.vocab import DEFAULT_SPECIAL_TOKENS, Vocab

_CHUNK_RE = re.compile(r"\S+|\s+")


class BPETokenizer(BaseTokenizer):
    """Byte-level BPE with deterministic training."""

    def __init__(self, merges: list[tuple[int, int]], vocab: Vocab | None = None):
        vocab = vocab or self._build_vocab(len(merges))
        super().__init__(vocab)
        self._byte_offset = len(DEFAULT_SPECIAL_TOKENS)
        self._merges: dict[tuple[int, int], int] = {}
        self._id_to_bytes: dict[int, bytes] = {
            self._byte_offset + b: bytes([b]) for b in range(256)
        }
        next_id = self._byte_offset + 256
        for left, right in merges:
            if left not in self._id_to_bytes or right not in self._id_to_bytes:
                raise TokenizerError(f"merge ({left}, {right}) references unknown token ids")
            self._merges[(left, right)] = next_id
            self._id_to_bytes[next_id] = self._id_to_bytes[left] + self._id_to_bytes[right]
            next_id += 1
        self._merge_list = list(merges)

    @staticmethod
    def _build_vocab(n_merges: int) -> Vocab:
        vocab = Vocab()
        for b in range(256):
            vocab.add(f"<0x{b:02X}>")
        for i in range(n_merges):
            vocab.add(f"<merge-{i}>")
        return vocab

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    @classmethod
    def train(
        cls,
        texts: Iterable[str],
        vocab_size: int = 512,
        min_frequency: int = 2,
    ) -> "BPETokenizer":
        """Train merges on ``texts`` until ``vocab_size`` is reached.

        ``vocab_size`` counts special tokens and the 256 byte tokens, so
        it must be at least ``261``.
        """
        base = len(DEFAULT_SPECIAL_TOKENS) + 256
        if vocab_size < base:
            raise TokenizerError(f"vocab_size must be >= {base}, got {vocab_size}")
        offset = len(DEFAULT_SPECIAL_TOKENS)

        chunk_counts: Counter[bytes] = Counter()
        for text in texts:
            for chunk in _CHUNK_RE.findall(text):
                chunk_counts[chunk.encode("utf-8")] += 1
        # Each distinct chunk is a mutable list of current token ids.
        chunks: list[tuple[list[int], int]] = [
            ([offset + b for b in chunk], freq) for chunk, freq in sorted(chunk_counts.items())
        ]

        merges: list[tuple[int, int]] = []
        next_id = base
        while next_id < vocab_size:
            pair_counts: Counter[tuple[int, int]] = Counter()
            for ids, freq in chunks:
                for pair in zip(ids, ids[1:]):
                    pair_counts[pair] += freq
            if not pair_counts:
                break
            best, best_count = min(
                pair_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
            if best_count < min_frequency:
                break
            merges.append(best)
            for ids, _ in chunks:
                i = 0
                while i < len(ids) - 1:
                    if ids[i] == best[0] and ids[i + 1] == best[1]:
                        ids[i:i + 2] = [next_id]
                    else:
                        i += 1
            next_id += 1
        return cls(merges)

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def _encode_chunk(self, chunk: bytes) -> list[int]:
        ids = [self._byte_offset + b for b in chunk]
        while len(ids) > 1:
            ranked = [
                (self._merges[pair], i)
                for i, pair in enumerate(zip(ids, ids[1:]))
                if pair in self._merges
            ]
            if not ranked:
                break
            # Apply the earliest-learned merge (smallest new id) first.
            merged_id, pos = min(ranked)
            ids[pos:pos + 2] = [merged_id]
        return ids

    def encode(self, text: str, add_special: bool = False) -> list[int]:
        ids: list[int] = []
        for chunk in _CHUNK_RE.findall(text):
            ids.extend(self._encode_chunk(chunk.encode("utf-8")))
        if add_special:
            ids = [self.bos_id] + ids + [self.eos_id]
        return ids

    def decode(self, ids: list[int], skip_special: bool = True) -> str:
        specials = {self.pad_id, self.bos_id, self.eos_id, self.sep_id, self.unk_id}
        data = bytearray()
        for idx in ids:
            idx = int(idx)
            if idx in specials:
                if not skip_special:
                    data.extend(self.vocab.id_to_token(idx).encode("utf-8"))
                continue
            piece = self._id_to_bytes.get(idx)
            if piece is None:
                raise TokenizerError(f"unknown token id {idx}")
            data.extend(piece)
        return data.decode("utf-8", errors="replace")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {"merges": self._merge_list, "version": 1}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "BPETokenizer":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != 1:
            raise TokenizerError(f"unsupported tokenizer file version: {payload.get('version')}")
        merges = [tuple(pair) for pair in payload["merges"]]
        return cls(merges)
