"""Word-level tokenizer.

Instruction prompts in this reproduction are built from a closed set of
template words and binned feature tokens (``duration=short``), so a
word-level vocabulary is both compact and fully lossless on that domain.
This is the default tokenizer for the ZiGong pipeline; the byte-level BPE
in :mod:`repro.tokenizer.bpe` covers open text.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.errors import TokenizerError
from repro.tokenizer.base import BaseTokenizer
from repro.tokenizer.vocab import DEFAULT_SPECIAL_TOKENS, Vocab


class WordTokenizer(BaseTokenizer):
    """Whitespace tokenizer over a trained word vocabulary.

    Decoding joins tokens with single spaces, so round-trips are exact up
    to whitespace normalization.
    """

    def __init__(self, vocab: Vocab):
        super().__init__(vocab)

    @classmethod
    def train(cls, texts: Iterable[str], max_vocab: int | None = None) -> "WordTokenizer":
        """Build a vocabulary from ``texts``.

        Words are ranked by frequency (ties broken alphabetically for
        determinism); ``max_vocab`` caps the total size including special
        tokens.
        """
        counts: Counter[str] = Counter()
        for text in texts:
            counts.update(text.split())
        vocab = Vocab()
        budget = None if max_vocab is None else max_vocab - len(vocab)
        if budget is not None and budget < 0:
            raise TokenizerError(f"max_vocab={max_vocab} smaller than special token count")
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for i, (word, _) in enumerate(ranked):
            if budget is not None and i >= budget:
                break
            vocab.add(word)
        return cls(vocab)

    def encode(self, text: str, add_special: bool = False) -> list[int]:
        ids = []
        for word in text.split():
            idx = self.vocab.token_to_id(word)
            ids.append(self.unk_id if idx is None else idx)
        if add_special:
            ids = [self.bos_id] + ids + [self.eos_id]
        return ids

    def save(self, path: str | Path) -> None:
        """Persist the vocabulary as JSON."""
        payload = {"tokens": self.vocab.tokens(), "version": 1}
        Path(path).write_text(json.dumps(payload, ensure_ascii=False))

    @classmethod
    def load(cls, path: str | Path) -> "WordTokenizer":
        """Load a tokenizer saved by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != 1:
            raise TokenizerError(f"unsupported tokenizer file version: {payload.get('version')}")
        tokens = payload["tokens"]
        if tuple(tokens[: len(DEFAULT_SPECIAL_TOKENS)]) != DEFAULT_SPECIAL_TOKENS:
            raise TokenizerError("tokenizer file does not start with the special tokens")
        vocab = Vocab()
        for token in tokens[len(DEFAULT_SPECIAL_TOKENS):]:
            vocab.add(token)
        return cls(vocab)

    def decode(self, ids: list[int], skip_special: bool = True) -> str:
        specials = {self.pad_id, self.bos_id, self.eos_id, self.sep_id}
        words = []
        for idx in ids:
            if skip_special and idx in specials:
                continue
            words.append(self.vocab.id_to_token(int(idx)))
        return " ".join(words)
