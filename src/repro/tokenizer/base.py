"""Common tokenizer interface."""

from __future__ import annotations

import abc

from repro.tokenizer.vocab import Vocab


class BaseTokenizer(abc.ABC):
    """Encode/decode text to integer token ids.

    Subclasses share a :class:`Vocab` (so special-token ids are uniform)
    and must round-trip ordinary text: ``decode(encode(s)) == s`` up to
    whitespace normalization documented per tokenizer.
    """

    def __init__(self, vocab: Vocab):
        self.vocab = vocab

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    @property
    def pad_id(self) -> int:
        return self.vocab.pad_id

    @property
    def unk_id(self) -> int:
        return self.vocab.unk_id

    @property
    def bos_id(self) -> int:
        return self.vocab.bos_id

    @property
    def eos_id(self) -> int:
        return self.vocab.eos_id

    @property
    def sep_id(self) -> int:
        return self.vocab.sep_id

    @abc.abstractmethod
    def encode(self, text: str, add_special: bool = False) -> list[int]:
        """Encode ``text``; with ``add_special`` wrap in BOS ... EOS."""

    @abc.abstractmethod
    def decode(self, ids: list[int], skip_special: bool = True) -> str:
        """Decode ids back to text."""

    def encode_pair(self, prompt: str, answer: str) -> tuple[list[int], list[int]]:
        """Encode an instruction pair as ``BOS prompt SEP answer EOS``.

        Returns ``(input_ids, labels)`` where labels equal input_ids on
        the answer span (SEP exclusive .. EOS inclusive) and ``-100``
        elsewhere — the standard supervised-fine-tuning masking.
        """
        prompt_ids = [self.bos_id] + self.encode(prompt) + [self.sep_id]
        answer_ids = self.encode(answer) + [self.eos_id]
        input_ids = prompt_ids + answer_ids
        labels = [-100] * len(prompt_ids) + list(answer_ids)
        return input_ids, labels
