"""Vocabulary and special-token plumbing shared by all tokenizers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TokenizerError

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
BOS_TOKEN = "<s>"
EOS_TOKEN = "</s>"
SEP_TOKEN = "<sep>"

DEFAULT_SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, BOS_TOKEN, EOS_TOKEN, SEP_TOKEN)


@dataclass
class Vocab:
    """Bidirectional token <-> id map with reserved special tokens.

    Special tokens always occupy the lowest ids, in the order given, so
    ``pad_id == 0`` by default across the library.
    """

    special_tokens: tuple[str, ...] = DEFAULT_SPECIAL_TOKENS

    def __post_init__(self):
        if len(set(self.special_tokens)) != len(self.special_tokens):
            raise TokenizerError("duplicate special tokens")
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in self.special_tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Add a token if absent; return its id either way."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int | None:
        return self._token_to_id.get(token)

    def id_to_token(self, idx: int) -> str:
        if not 0 <= idx < len(self._id_to_token):
            raise TokenizerError(f"token id {idx} out of range [0, {len(self._id_to_token)})")
        return self._id_to_token[idx]

    def tokens(self) -> list[str]:
        return list(self._id_to_token)

    # -- well-known ids --------------------------------------------------

    @property
    def pad_id(self) -> int:
        return self._require(PAD_TOKEN)

    @property
    def unk_id(self) -> int:
        return self._require(UNK_TOKEN)

    @property
    def bos_id(self) -> int:
        return self._require(BOS_TOKEN)

    @property
    def eos_id(self) -> int:
        return self._require(EOS_TOKEN)

    @property
    def sep_id(self) -> int:
        return self._require(SEP_TOKEN)

    def _require(self, token: str) -> int:
        idx = self._token_to_id.get(token)
        if idx is None:
            raise TokenizerError(f"special token {token!r} not in vocabulary")
        return idx
