"""Injecting LoRA adapters into a model and managing adapter state."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor.random import default_rng
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.lora.adapter import LoRAConfig, LoRALinear


def apply_lora(model: Module, config: LoRAConfig, rng=None) -> list[LoRALinear]:
    """Replace target linear layers with LoRA-wrapped versions.

    Every parameter outside the adapters is frozen, matching the paper's
    parameter-efficient fine-tuning setup.  Returns the injected adapters.
    """
    rng = default_rng(rng)
    for param in model.parameters():
        param.requires_grad = False
    if config.train_embeddings:
        from repro.nn.layers import Embedding

        stack_e: list[Module] = [model]
        seen_e: set[int] = set()
        while stack_e:
            current = stack_e.pop()
            if id(current) in seen_e:
                continue
            seen_e.add(id(current))
            if isinstance(current, Embedding):
                current.weight.requires_grad = True
            for value in vars(current).values():
                if isinstance(value, Module):
                    stack_e.append(value)
                elif type(value).__name__ == "ModuleList":
                    stack_e.extend(list(value))

    adapters: list[LoRALinear] = []
    stack: list[Module] = [model]
    seen: set[int] = set()
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        for key, value in list(vars(current).items()):
            if isinstance(value, Linear) and key in config.target_modules:
                adapter = LoRALinear(value, config, rng=rng)
                setattr(current, key, adapter)
                adapters.append(adapter)
            elif isinstance(value, Module):
                stack.append(value)
            elif type(value).__name__ == "ModuleList":
                stack.extend(list(value))
    if not adapters:
        raise ConfigError(
            f"no modules matched LoRA targets {config.target_modules}; "
            "check the attribute names"
        )
    model.bump_weight_version()
    return adapters


def iter_lora_modules(model: Module) -> list[LoRALinear]:
    """All LoRA adapters currently present in ``model``."""
    found: list[LoRALinear] = []
    stack: list[Module] = [model]
    seen: set[int] = set()
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, LoRALinear):
            found.append(current)
        for value in vars(current).values():
            if isinstance(value, Module):
                stack.append(value)
            elif type(value).__name__ == "ModuleList":
                stack.extend(list(value))
    return found


def merge_lora(model: Module) -> int:
    """Merge every adapter into its base weight; returns the count."""
    adapters = iter_lora_modules(model)
    for adapter in adapters:
        adapter.merge()
    if adapters:
        model.bump_weight_version()
    return len(adapters)


def unmerge_lora(model: Module) -> int:
    """Undo :func:`merge_lora`; returns the count."""
    adapters = iter_lora_modules(model)
    for adapter in adapters:
        adapter.unmerge()
    if adapters:
        model.bump_weight_version()
    return len(adapters)


def lora_state_dict(model: Module) -> dict[str, np.ndarray]:
    """Only the adapter parameters (the part worth checkpointing)."""
    return {
        name: param.data.copy()
        for name, param in model.named_parameters()
        if "lora_a" in name or "lora_b" in name
    }


def trainable_parameter_fraction(model: Module) -> float:
    """Share of parameters that are trainable — LoRA's headline saving."""
    total = sum(p.size for p in model.parameters())
    trainable = sum(p.size for p in model.parameters() if p.requires_grad)
    return trainable / total if total else 0.0
