"""LoRA fine-tuning: adapters, injection, merging."""

from repro.lora.adapter import LoRAConfig, LoRALinear
from repro.lora.inject import (
    apply_lora,
    iter_lora_modules,
    lora_state_dict,
    merge_lora,
    trainable_parameter_fraction,
    unmerge_lora,
)

__all__ = [
    "LoRAConfig",
    "LoRALinear",
    "apply_lora",
    "iter_lora_modules",
    "merge_lora",
    "unmerge_lora",
    "lora_state_dict",
    "trainable_parameter_fraction",
]
