"""LoRA: low-rank adaptation of linear layers (Hu et al., 2021).

A :class:`LoRALinear` wraps a frozen base :class:`~repro.nn.Linear` and
adds a trainable low-rank update ``(alpha / r) * B @ A``.  The paper's
configuration (Table 3) is rank 8, alpha 16, applied to the attention
query/key/value projections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor
from repro.tensor.random import default_rng
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, Parameter


@dataclass(frozen=True)
class LoRAConfig:
    """LoRA hyperparameters; defaults match the paper's Table 3."""

    rank: int = 8
    alpha: float = 16.0
    target_modules: tuple[str, ...] = ("wq", "wk", "wv")
    dropout: float = 0.0
    # Keep embedding tables trainable alongside the adapters (the
    # ``modules_to_save`` pattern from HF PEFT).  Our base model is not
    # pretrained at 7B scale, so the tied embedding/head must adapt for
    # the answer head to be learnable at all.
    train_embeddings: bool = True

    def __post_init__(self):
        if self.rank <= 0:
            raise ConfigError(f"LoRA rank must be positive, got {self.rank}")
        if self.alpha <= 0:
            raise ConfigError(f"LoRA alpha must be positive, got {self.alpha}")
        if not self.target_modules:
            raise ConfigError("LoRA target_modules must not be empty")

    @property
    def scaling(self) -> float:
        return self.alpha / self.rank


class LoRALinear(Module):
    """A frozen linear layer plus a trainable low-rank residual.

    ``lora_a`` is Gaussian-initialized and ``lora_b`` zero-initialized so
    the adapted layer starts exactly equal to the base layer.
    """

    def __init__(self, base: Linear, config: LoRAConfig, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.base = base
        self.config = config
        self.rank = config.rank
        self.scaling = config.scaling
        base.weight.requires_grad = False
        if base.bias is not None:
            base.bias.requires_grad = False
        in_features = base.in_features
        out_features = base.out_features
        self.lora_a = Parameter(
            rng.normal(0.0, 1.0 / config.rank, size=(config.rank, in_features)).astype(np.float32)
        )
        self.lora_b = Parameter(np.zeros((out_features, config.rank), dtype=np.float32))
        self.lora_dropout = Dropout(config.dropout, rng=rng)
        self._merged = False

    @property
    def merged(self) -> bool:
        return self._merged

    def delta_weight(self) -> np.ndarray:
        """The dense update ``scaling * B @ A`` currently represented."""
        return (self.scaling * (self.lora_b.data @ self.lora_a.data)).astype(np.float32)

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        if self._merged:
            return out
        dropped = self.lora_dropout(x)
        update = (dropped @ self.lora_a.swapaxes(-1, -2)) @ self.lora_b.swapaxes(-1, -2)
        return out + update * self.scaling

    def merge(self) -> None:
        """Fold the low-rank update into the base weight (for inference)."""
        if self._merged:
            return
        self.base.weight.data = self.base.weight.data + self.delta_weight()
        self._merged = True

    def unmerge(self) -> None:
        """Undo :meth:`merge`, restoring the separate low-rank path."""
        if not self._merged:
            return
        self.base.weight.data = self.base.weight.data - self.delta_weight()
        self._merged = False
