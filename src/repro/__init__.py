"""Reproduction of "ZiGong 1.0: A Large Language Model for Financial Credit".

Public API highlights:

* :class:`repro.core.ZiGong` — tokenizer + MistralTiny + LoRA fine-tuning
* :class:`repro.core.ZiGongPipeline` — warmup, TracSeq pruning, 70/30 mix,
  final fine-tune (the paper's Figure 1)
* :class:`repro.influence.TracSeq` — time-decayed influence (Eq. 1)
* :class:`repro.eval.CalmBenchmark` — the Table 2 evaluation suite
* :class:`repro.serving.BehaviorCardService` — the deployment surface
* :class:`repro.obs.Observability` — metrics / spans / events layer
"""

from repro.config import ZiGongConfig, bench_config, table3_rows, test_config
from repro.obs import MetricsRegistry, Observability, get_observability
from repro.core import (
    DataPruner,
    PipelineConfig,
    PipelineResult,
    PrunerConfig,
    ZiGong,
    ZiGongPipeline,
)
from repro.influence import TracInCP, TracSeq
from repro.serving import (
    BehaviorCardConfig,
    BehaviorCardService,
    MicroBatchEngine,
    ScoreRequest,
    ScoreResult,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ZiGong",
    "ZiGongPipeline",
    "PipelineConfig",
    "PipelineResult",
    "DataPruner",
    "PrunerConfig",
    "TracInCP",
    "TracSeq",
    "BehaviorCardService",
    "BehaviorCardConfig",
    "MicroBatchEngine",
    "ScoreRequest",
    "ScoreResult",
    "ZiGongConfig",
    "test_config",
    "bench_config",
    "table3_rows",
    "Observability",
    "MetricsRegistry",
    "get_observability",
]
