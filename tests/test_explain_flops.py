"""Reason-code explanations and FLOPs estimator tests."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ServingError
from repro.nn import MistralTiny, ModelConfig, count_parameters, estimate_flops
from repro.serving import ReasonCode, adverse_action_reasons, reason_codes


class _LinearStub:
    """Score rises with the number of 'bad' risk tokens in the prompt."""

    RISKY = {"late_payments=veryhigh", "cash_advance=high"}

    def score(self, prompt, positive, negative):
        tokens = set(prompt.split())
        return 0.2 + 0.3 * len(tokens & self.RISKY)


class TestReasonCodes:
    PROMPT = (
        "late_payments=veryhigh cash_advance=high repay_ratio=low "
        "question: will this user default ? answer:"
    )

    def test_risky_features_get_positive_delta(self):
        codes = reason_codes(_LinearStub(), self.PROMPT, top_k=3)
        by_feature = {c.feature: c for c in codes}
        assert by_feature["late_payments"].delta == pytest.approx(0.3)
        assert by_feature["cash_advance"].delta == pytest.approx(0.3)

    def test_neutral_feature_has_zero_delta(self):
        codes = reason_codes(_LinearStub(), self.PROMPT, top_k=3)
        by_feature = {c.feature: c for c in codes}
        assert by_feature["repay_ratio"].delta == pytest.approx(0.0)

    def test_sorted_by_magnitude(self):
        codes = reason_codes(_LinearStub(), self.PROMPT, top_k=3)
        deltas = [abs(c.delta) for c in codes]
        assert deltas == sorted(deltas, reverse=True)

    def test_top_k_truncates(self):
        codes = reason_codes(_LinearStub(), self.PROMPT, top_k=1)
        assert len(codes) == 1

    def test_adverse_action_only_positive(self):
        reasons = adverse_action_reasons(_LinearStub(), self.PROMPT, top_k=5)
        assert reasons
        assert all(c.delta > 0 for c in reasons)

    def test_describe_phrasing(self):
        code = ReasonCode(feature="late_payments", value="veryhigh", delta=0.2)
        text = code.describe()
        assert "late_payments=veryhigh" in text
        assert "raised" in text
        assert "lowered" in ReasonCode("x", "y", -0.1).describe()

    def test_no_features_raises(self):
        with pytest.raises(ServingError):
            reason_codes(_LinearStub(), "question: anything ? answer:")

    def test_invalid_top_k(self):
        with pytest.raises(ServingError):
            reason_codes(_LinearStub(), self.PROMPT, top_k=0)

    def test_with_real_model(self, fitted_zigong, german_examples):
        codes = reason_codes(
            fitted_zigong.classifier(), german_examples[0].prompt,
            positive_text="good", negative_text="bad", top_k=3,
        )
        assert len(codes) == 3
        assert all("=" not in c.feature for c in codes)


class TestFlops:
    @pytest.mark.parametrize(
        "config",
        [
            ModelConfig(),
            ModelConfig(vocab_size=100, d_model=32, n_layers=3, n_heads=4, n_kv_heads=4, d_ff=64),
            ModelConfig(tie_embeddings=False),
        ],
    )
    def test_parameter_count_exact(self, config):
        model = MistralTiny(config, rng=0)
        assert count_parameters(config) == model.num_parameters()

    def test_flops_components_sum(self):
        estimate = estimate_flops(ModelConfig(), seq_len=64)
        assert estimate.flops_per_token == (
            estimate.attention_flops + estimate.ffn_flops + estimate.head_flops
        )

    def test_sliding_window_caps_attention(self):
        wide = estimate_flops(ModelConfig(sliding_window=None, max_seq_len=128), seq_len=128)
        narrow = estimate_flops(ModelConfig(sliding_window=16, max_seq_len=128), seq_len=128)
        assert narrow.attention_flops < wide.attention_flops
        assert narrow.ffn_flops == wide.ffn_flops

    def test_tokens_per_second(self):
        estimate = estimate_flops(ModelConfig())
        assert estimate.tokens_per_second(estimate.flops_per_token * 10.0) == pytest.approx(10.0)

    def test_flops_grow_with_layers(self):
        small = estimate_flops(ModelConfig(n_layers=2))
        big = estimate_flops(ModelConfig(n_layers=4))
        assert big.flops_per_token > small.flops_per_token

    def test_quantized_splits_macs_without_changing_totals(self):
        config = ModelConfig()
        float_est = estimate_flops(config, seq_len=64)
        quant_est = estimate_flops(config, seq_len=64, quantized=True)
        # Quantization moves bytes, not arithmetic: totals are identical,
        # only the int8/float MAC split changes.
        assert quant_est.flops_per_token == float_est.flops_per_token
        assert float_est.int8_macs == 0
        assert quant_est.int8_macs > 0
        assert quant_est.int8_macs + quant_est.float_macs == quant_est.flops_per_token // 2

    def test_quantized_int8_macs_are_the_weight_matmuls(self):
        config = ModelConfig()
        est = estimate_flops(config, seq_len=64, quantized=True)
        # What stays float is exactly the activation-by-activation work:
        # QK^T and AV, scaling with the attended length.
        attended = min(64, config.sliding_window or 64)
        score_macs = config.n_layers * 2 * config.d_model * attended
        assert est.float_macs == score_macs

    def test_decode_flops_cheaper_than_full_forward(self):
        from repro.nn import estimate_decode_flops

        config = ModelConfig(max_seq_len=128)
        full = estimate_flops(config, seq_len=128)
        step = estimate_decode_flops(config, kv_len=127)
        assert step.flops_per_token <= full.flops_per_token

    def test_decode_flops_window_caps_attended_span(self):
        from repro.nn import estimate_decode_flops

        config = ModelConfig(sliding_window=16, max_seq_len=128)
        at_window = estimate_decode_flops(config, kv_len=16)
        deep = estimate_decode_flops(config, kv_len=100)
        assert deep.flops_per_token == at_window.flops_per_token  # capped
        growing = estimate_decode_flops(config, kv_len=4)
        assert growing.attention_flops < at_window.attention_flops

    def test_decode_flops_negative_kv_len_raises(self):
        from repro.nn import estimate_decode_flops

        with pytest.raises(ValueError):
            estimate_decode_flops(ModelConfig(), kv_len=-1)

    def test_decode_flops_quantized_split(self):
        from repro.nn import estimate_decode_flops

        est = estimate_decode_flops(ModelConfig(), kv_len=32, quantized=True)
        assert est.int8_macs > 0
        assert est.int8_macs + est.float_macs == est.flops_per_token // 2
