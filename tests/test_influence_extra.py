"""Tests for PPL scoring and cosine-normalized influence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InfluenceError
from repro.influence import (
    TracInCP,
    TracSeq,
    perplexities,
    ppl_quality_scores,
    sample_losses,
)
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig


def make_example(ids):
    return (list(ids), list(ids))


@pytest.fixture
def checkpoints(tiny_model, tmp_path):
    rng = np.random.default_rng(0)
    examples = [make_example(rng.integers(5, 60, size=8)) for _ in range(12)]
    manager = CheckpointManager(tmp_path)
    trainer = Trainer(
        tiny_model,
        AdamW(tiny_model.parameters(), lr=3e-3),
        config=TrainingConfig(epochs=2, batch_size=4, checkpoint_every=2),
        checkpoint_manager=manager,
    )
    trainer.train(examples)
    return manager.checkpoints()


class TestPPLScoring:
    def test_losses_finite_and_positive(self, tiny_model):
        examples = [make_example([1, 2, 3, 4]), make_example([5, 6, 7, 8])]
        losses = sample_losses(tiny_model, examples)
        assert losses.shape == (2,)
        assert (losses > 0).all()

    def test_perplexity_is_exp_loss(self, tiny_model):
        examples = [make_example([1, 2, 3, 4])]
        np.testing.assert_allclose(
            perplexities(tiny_model, examples),
            np.exp(sample_losses(tiny_model, examples)),
        )

    def test_quality_is_negated_loss(self, tiny_model):
        examples = [make_example([1, 2, 3]), make_example([4, 5, 6])]
        np.testing.assert_allclose(
            ppl_quality_scores(tiny_model, examples),
            -sample_losses(tiny_model, examples),
        )

    def test_memorized_sample_scores_higher(self, tiny_model):
        """After overfitting one sequence, its PPL quality must exceed a
        random one's."""
        target = make_example([7, 8, 9, 10, 11, 12])
        other = make_example([40, 31, 22, 53, 14, 45])
        opt = AdamW(tiny_model.parameters(), lr=5e-3)
        trainer = Trainer(tiny_model, opt, config=TrainingConfig(epochs=30, batch_size=1))
        trainer.train([target])
        scores = ppl_quality_scores(tiny_model, [target, other])
        assert scores[0] > scores[1]

    def test_empty_raises(self, tiny_model):
        with pytest.raises(InfluenceError):
            sample_losses(tiny_model, [])

    def test_no_gradients_left_behind(self, tiny_model):
        sample_losses(tiny_model, [make_example([1, 2, 3])])
        assert all(p.grad is None for p in tiny_model.parameters())


class TestNormalizedInfluence:
    def test_normalized_scores_bounded_per_checkpoint(self, tiny_model, checkpoints):
        """With unit gradients, |influence| <= sum of checkpoint weights."""
        rng = np.random.default_rng(1)
        train = [make_example(rng.integers(5, 60, size=8)) for _ in range(4)]
        test = [make_example(rng.integers(5, 60, size=8))]
        tracer = TracInCP(tiny_model, checkpoints, normalize=True)
        matrix = tracer.influence_matrix(train, test)
        bound = sum(r.lr for r in tracer.checkpoints) + 1e-9
        assert (np.abs(matrix) <= bound).all()

    def test_normalized_self_influence_constant(self, tiny_model, checkpoints):
        """Unit-normalized self dot products are exactly 1 per checkpoint."""
        train = [make_example([1, 2, 3, 4]), make_example([9, 8, 7, 6])]
        tracer = TracInCP(tiny_model, checkpoints, normalize=True)
        self_inf = tracer.self_influence(train)
        expected = sum(r.lr for r in tracer.checkpoints)
        np.testing.assert_allclose(self_inf, expected, rtol=1e-5)

    def test_normalization_changes_ranking_possible(self, tiny_model, checkpoints):
        rng = np.random.default_rng(2)
        train = [make_example(rng.integers(5, 60, size=8)) for _ in range(6)]
        test = [make_example(rng.integers(5, 60, size=8))]
        raw = TracInCP(tiny_model, checkpoints).scores(train, test)
        cos = TracInCP(tiny_model, checkpoints, normalize=True).scores(train, test)
        # Signs must broadly agree even if magnitudes differ.
        assert ((raw > 0) == (cos > 0)).mean() >= 0.5

    def test_tracseq_accepts_normalize(self, tiny_model, checkpoints):
        tracer = TracSeq(tiny_model, checkpoints, gamma=0.8, normalize=True)
        scores = tracer.scores(
            [make_example([1, 2, 3])], [make_example([4, 5, 6])]
        )
        assert scores.shape == (1,)


class TestPrunerPPLStrategy:
    def test_ppl_strategy_runs(self, fitted_zigong, german_examples, tmp_path):
        from repro.core import DataPruner, PrunerConfig

        fitted_zigong.finetune(german_examples[:32], checkpoint_dir=tmp_path)
        checkpoints = CheckpointManager(tmp_path).checkpoints()
        scores = DataPruner(PrunerConfig(strategy="ppl")).score(
            fitted_zigong, german_examples[:16], [], checkpoints
        )
        assert scores.shape == (16,)
        assert np.isfinite(scores).all()

    def test_ppl_requires_checkpoints(self, fitted_zigong, german_examples):
        from repro.core import DataPruner, PrunerConfig

        with pytest.raises(InfluenceError):
            DataPruner(PrunerConfig(strategy="ppl")).score(
                fitted_zigong, german_examples[:4], [], ()
            )

    def test_normalize_gradients_config(self, fitted_zigong, german_examples, tmp_path):
        from repro.core import DataPruner, PrunerConfig

        fitted_zigong.finetune(german_examples[:32], checkpoint_dir=tmp_path)
        checkpoints = CheckpointManager(tmp_path).checkpoints()
        scores = DataPruner(
            PrunerConfig(strategy="tracseq", normalize_gradients=True, projection_dim=64)
        ).score(fitted_zigong, german_examples[:8], german_examples[32:36], checkpoints)
        assert scores.shape == (8,)
