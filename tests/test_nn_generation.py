"""Decoding tests: greedy determinism, stop tokens, sampling, logits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import GenerationConfig, MistralTiny, generate, next_token_logits


class TestGenerationConfig:
    def test_defaults(self):
        config = GenerationConfig()
        assert config.temperature == 0.0

    @pytest.mark.parametrize(
        "kwargs", [{"max_new_tokens": 0}, {"temperature": -1.0}, {"top_k": 0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            GenerationConfig(**kwargs)


class TestGenerate:
    def test_greedy_deterministic(self, tiny_model):
        prompt = np.array([1, 2, 3])
        a = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=6))
        b = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=6))
        assert a == b
        assert len(a) == 6

    def test_stop_token_halts(self, tiny_model):
        prompt = np.array([1, 2, 3])
        greedy = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=8))
        first = greedy[0]
        stopped = generate(
            tiny_model, prompt, GenerationConfig(max_new_tokens=8, stop_tokens=(first,))
        )
        assert stopped == [first]

    def test_sampling_seeded(self, tiny_model):
        prompt = np.array([1, 2, 3])
        config = GenerationConfig(max_new_tokens=6, temperature=1.0, seed=42)
        assert generate(tiny_model, prompt, config) == generate(tiny_model, prompt, config)

    def test_sampling_differs_across_seeds(self, tiny_model):
        prompt = np.array([1, 2, 3])
        outs = {
            tuple(generate(tiny_model, prompt, GenerationConfig(max_new_tokens=8, temperature=2.0, seed=s)))
            for s in range(5)
        }
        assert len(outs) > 1

    def test_top_k_restricts_support(self, tiny_model, tiny_config):
        prompt = np.array([1, 2, 3])
        logits = next_token_logits(tiny_model, prompt)
        top2 = set(np.argsort(logits)[-2:])
        for seed in range(10):
            config = GenerationConfig(max_new_tokens=1, temperature=1.5, top_k=2, seed=seed)
            token = generate(tiny_model, prompt, config)[0]
            assert token in top2

    def test_long_prompt_truncated_not_crash(self, tiny_model, tiny_config):
        prompt = np.ones(tiny_config.max_seq_len + 10, dtype=np.int64)
        out = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=2))
        assert len(out) == 2

    def test_restores_training_mode(self, tiny_model):
        tiny_model.train()
        generate(tiny_model, np.array([1, 2]), GenerationConfig(max_new_tokens=1))
        assert tiny_model.training

    def test_generation_builds_no_graph(self, tiny_model):
        generate(tiny_model, np.array([1, 2]), GenerationConfig(max_new_tokens=2))
        assert all(p.grad is None for p in tiny_model.parameters())


class TestNextTokenLogits:
    def test_shape(self, tiny_model, tiny_config):
        logits = next_token_logits(tiny_model, np.array([1, 2, 3]))
        assert logits.shape == (tiny_config.vocab_size,)

    def test_greedy_consistency(self, tiny_model):
        """argmax of next_token_logits equals the first greedy token."""
        prompt = np.array([4, 5, 6])
        logits = next_token_logits(tiny_model, prompt)
        greedy = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=1))
        assert int(logits.argmax()) == greedy[0]
