"""Attention tests: masking, causality, sliding window, GQA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import MultiHeadAttention, sliding_window_mask
from repro.tensor import Tensor


class TestSlidingWindowMask:
    def test_pure_causal(self):
        mask = sliding_window_mask(4, None)
        allowed = mask == 0
        expected = np.tril(np.ones((4, 4), dtype=bool))
        np.testing.assert_array_equal(allowed, expected)

    def test_window_limits_lookback(self):
        mask = sliding_window_mask(5, 2)
        allowed = mask == 0
        # Token i attends to j in {i-1, i}.
        for i in range(5):
            for j in range(5):
                assert allowed[i, j] == (0 <= i - j < 2)

    def test_window_one_is_diagonal(self):
        mask = sliding_window_mask(4, 1)
        np.testing.assert_array_equal(mask == 0, np.eye(4, dtype=bool))

    def test_cached_instances_shared(self):
        assert sliding_window_mask(8, 4) is sliding_window_mask(8, 4)


class TestMultiHeadAttention:
    def _attn(self, window=None, n_kv=2):
        return MultiHeadAttention(
            d_model=16, n_heads=4, n_kv_heads=n_kv, max_seq_len=16, sliding_window=window, rng=0
        )

    def test_output_shape(self):
        attn = self._attn()
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 8, 16)).astype(np.float32)))
        assert out.shape == (2, 8, 16)

    def test_causality(self):
        """Changing a future token must not change past outputs."""
        attn = self._attn()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 8, 16)).astype(np.float32)
        out1 = attn(Tensor(x)).numpy().copy()
        x2 = x.copy()
        x2[0, 6] += 10.0  # perturb a late position
        out2 = attn(Tensor(x2)).numpy()
        np.testing.assert_allclose(out1[0, :6], out2[0, :6], atol=1e-5)
        assert np.abs(out1[0, 6:] - out2[0, 6:]).max() > 1e-4

    def test_sliding_window_forgets_distant_past(self):
        """With window w, perturbing token j must not affect i >= j + w."""
        attn = self._attn(window=2)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 8, 16)).astype(np.float32)
        out1 = attn(Tensor(x)).numpy().copy()
        x2 = x.copy()
        x2[0, 1] += 10.0
        out2 = attn(Tensor(x2)).numpy()
        np.testing.assert_allclose(out1[0, 3:], out2[0, 3:], atol=1e-5)

    def test_gqa_matches_full_heads_when_equal(self):
        """n_kv_heads == n_heads must be equivalent to no grouping."""
        attn = MultiHeadAttention(d_model=16, n_heads=4, n_kv_heads=4, max_seq_len=8, rng=3)
        x = Tensor(np.random.default_rng(3).normal(size=(1, 4, 16)).astype(np.float32))
        out = attn(x)
        assert out.shape == (1, 4, 16)

    def test_gqa_grouping_runs_and_backprops(self):
        attn = self._attn(n_kv=1)
        x = Tensor(
            np.random.default_rng(4).normal(size=(1, 4, 16)).astype(np.float32),
            requires_grad=True,
        )
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.wk.weight.grad is not None

    def test_invalid_head_config_raises(self):
        with pytest.raises(ConfigError):
            MultiHeadAttention(d_model=15, n_heads=4)
        with pytest.raises(ConfigError):
            MultiHeadAttention(d_model=16, n_heads=4, n_kv_heads=3)

    def test_first_token_attends_only_itself(self):
        """Output at position 0 is a value projection of token 0 alone."""
        attn = self._attn()
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        out_full = attn(Tensor(x)).numpy()
        out_single = attn(Tensor(x[:, :1])).numpy()
        np.testing.assert_allclose(out_full[0, 0], out_single[0, 0], atol=1e-5)
