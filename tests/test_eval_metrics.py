"""Metric tests: hand-worked cases plus hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval import (
    accuracy,
    confusion_matrix,
    f1_binary,
    ks_statistic,
    miss_rate,
    roc_auc,
    weighted_f1,
)


class TestAccuracyAndMiss:
    def test_accuracy_basic(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_miss_counts_as_wrong(self):
        assert accuracy([1, 1], [1, None]) == 0.5

    def test_miss_rate(self):
        assert miss_rate([1, None, 0, None]) == 0.5
        assert miss_rate([1, 0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            accuracy([1, 0], [1])

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            miss_rate([])
        with pytest.raises(EvaluationError):
            accuracy([], [])

    def test_non_binary_labels_raise(self):
        with pytest.raises(EvaluationError):
            accuracy([0, 2], [0, 1])


class TestF1:
    def test_perfect(self):
        assert f1_binary([1, 0, 1], [1, 0, 1]) == 1.0

    def test_hand_computed(self):
        # tp=1, fp=1, fn=1 -> precision=0.5, recall=0.5, f1=0.5
        assert f1_binary([1, 0, 1, 0], [1, 1, 0, 0]) == 0.5

    def test_no_positive_predictions(self):
        assert f1_binary([1, 1, 0], [0, 0, 0]) == 0.0

    def test_miss_counts_as_negative(self):
        with_miss = f1_binary([1, 1], [1, None])
        explicit = f1_binary([1, 1], [1, 0])
        assert with_miss == explicit

    def test_weighted_f1_balanced_equals_mean(self):
        y = [1, 1, 0, 0]
        p = [1, 0, 0, 1]
        expected = 0.5 * f1_binary(y, p, positive=1) + 0.5 * f1_binary(y, p, positive=0)
        assert weighted_f1(y, p) == pytest.approx(expected)

    def test_weighted_f1_perfect(self):
        assert weighted_f1([1, 0, 0], [1, 0, 0]) == 1.0


class TestConfusionMatrix:
    def test_layout(self):
        # [[tn, fp], [fn, tp]]
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 0, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 1]])

    def test_sums_to_n(self):
        matrix = confusion_matrix([0, 1, 1, 0, 1], [1, None, 1, 0, 0])
        assert matrix.sum() == 5


class TestKS:
    def test_perfect_separation(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert ks_statistic(y, scores) == pytest.approx(1.0)

    def test_no_separation(self):
        y = [0, 1, 0, 1]
        scores = [0.5, 0.5, 0.5, 0.5]
        assert ks_statistic(y, scores) == pytest.approx(0.0)

    def test_hand_computed(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.6, 0.4, 0.9]
        # At threshold 0.4: CDF_pos=0.5, CDF_neg=0.5 -> 0; at 0.1: 0 vs .5 -> .5
        assert ks_statistic(y, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(EvaluationError):
            ks_statistic([1, 1], [0.2, 0.3])

    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)),
            min_size=4,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ks_bounded(self, pairs):
        y = [p[0] for p in pairs]
        s = [p[1] for p in pairs]
        if 0 < sum(y) < len(y):
            value = ks_statistic(y, s)
            assert 0.0 <= value <= 1.0

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 50)
        y[0], y[1] = 0, 1
        s = rng.random(50)
        assert ks_statistic(y, s) == pytest.approx(ks_statistic(y, np.exp(3 * s)))


class TestAUC:
    def test_perfect(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reversed(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        s = rng.random(2000)
        assert roc_auc(y, s) == pytest.approx(0.5, abs=0.05)

    def test_ties_handled(self):
        assert roc_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(EvaluationError):
            roc_auc([0, 0], [0.1, 0.2])

    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)),
            min_size=4,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_complement_symmetry(self, pairs):
        """AUC(y, s) + AUC(y, -s) == 1."""
        y = [p[0] for p in pairs]
        s = np.array([p[1] for p in pairs])
        if 0 < sum(y) < len(y):
            assert roc_auc(y, s) + roc_auc(y, -s) == pytest.approx(1.0)

    def test_ks_le_relation_with_auc_extremes(self):
        """Perfect AUC implies perfect KS."""
        y = [0, 0, 0, 1, 1, 1]
        s = [0.1, 0.2, 0.3, 0.7, 0.8, 0.9]
        assert roc_auc(y, s) == 1.0
        assert ks_statistic(y, s) == 1.0
