"""Training loop tests: batching, checkpoints, trainer behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigError, DataError
from repro.nn import MistralTiny
from repro.optim import AdamW, ConstantLR
from repro.training import (
    CheckpointManager,
    EarlyStopping,
    Trainer,
    TrainingConfig,
    collate,
    iter_batches,
)


def random_examples(n=16, length=10, vocab=60, seed=0):
    rng = np.random.default_rng(seed)
    examples = []
    for _ in range(n):
        ids = list(rng.integers(5, vocab, size=length))
        examples.append((ids, ids))
    return examples


class TestCollate:
    def test_right_padding(self):
        batch = collate([([1, 2, 3], [1, 2, 3]), ([4, 5], [4, 5])], pad_id=0)
        np.testing.assert_array_equal(batch.input_ids, [[1, 2, 3], [4, 5, 0]])
        np.testing.assert_array_equal(batch.labels, [[1, 2, 3], [4, 5, -100]])

    def test_truncation(self):
        batch = collate([([1, 2, 3, 4], [1, 2, 3, 4])], max_len=2)
        assert batch.input_ids.shape == (1, 2)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DataError):
            collate([([1, 2], [1])])

    def test_empty_raises(self):
        with pytest.raises(DataError):
            collate([])

    def test_iter_batches_covers_all(self):
        examples = random_examples(n=10)
        batches = list(iter_batches(examples, batch_size=3, shuffle=False))
        assert sum(len(b) for b in batches) == 10

    def test_iter_batches_drop_last(self):
        examples = random_examples(n=10)
        batches = list(iter_batches(examples, batch_size=3, shuffle=False, drop_last=True))
        assert all(len(b) == 3 for b in batches)
        assert len(batches) == 3

    def test_iter_batches_shuffle_seeded(self):
        examples = random_examples(n=12)
        a = [b.input_ids.tolist() for b in iter_batches(examples, 4, rng=1)]
        b = [b.input_ids.tolist() for b in iter_batches(examples, 4, rng=1)]
        assert a == b

    def test_invalid_batch_size(self):
        with pytest.raises(DataError):
            list(iter_batches(random_examples(4), batch_size=0))


class TestCheckpointManager:
    def test_save_and_list(self, tiny_model, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(tiny_model, step=5, lr=0.01)
        manager.save(tiny_model, step=10, lr=0.005)
        records = manager.checkpoints()
        assert [r.step for r in records] == [5, 10]
        assert records[0].lr == 0.01

    def test_restore_roundtrip(self, tiny_config, tmp_path):
        manager = CheckpointManager(tmp_path)
        a = MistralTiny(tiny_config, rng=0)
        record = manager.save(a, step=1, lr=0.1)
        b = MistralTiny(tiny_config, rng=99)
        CheckpointManager.restore(b, record)
        for (_, pa), (_, pb) in zip(sorted(a.named_parameters()), sorted(b.named_parameters())):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_keep_prunes_oldest(self, tiny_model, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in (1, 2, 3):
            manager.save(tiny_model, step=step, lr=0.1)
        assert [r.step for r in manager.checkpoints()] == [2, 3]

    def test_latest(self, tiny_model, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.latest() is None
        manager.save(tiny_model, step=3, lr=0.1)
        assert manager.latest().step == 3

    def test_orphan_npz_skipped_with_warning(self, tiny_model, tmp_path):
        """A .npz without its sidecar must not fail the whole listing."""
        manager = CheckpointManager(tmp_path)
        record = manager.save(tiny_model, step=1, lr=0.1)
        manager.save(tiny_model, step=2, lr=0.05)
        record.meta_path.unlink()
        with pytest.warns(RuntimeWarning, match="orphan checkpoint"):
            records = manager.checkpoints()
        assert [r.step for r in records] == [2]

    def test_atomic_save_leaves_no_temp_files(self, tiny_model, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(tiny_model, step=1, lr=0.1)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["step-000001.json", "step-000001.npz"]

    def test_invalid_keep(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep=0)

    def test_extra_metadata_persisted(self, tiny_model, tmp_path):
        import json

        manager = CheckpointManager(tmp_path)
        record = manager.save(tiny_model, step=1, lr=0.1, extra={"epoch": 3})
        assert json.loads(record.meta_path.read_text())["epoch"] == 3

    def test_extra_metadata_round_trips_through_listing(self, tiny_model, tmp_path):
        """Regression: checkpoints() used to drop everything but step/lr."""
        manager = CheckpointManager(tmp_path)
        manager.save(tiny_model, step=1, lr=0.1, extra={"epoch": 3, "tag": "mid"})
        for record in (manager.checkpoints()[0], manager.latest()):
            assert record.extra["epoch"] == 3
            assert record.extra["tag"] == "mid"
        fresh = CheckpointManager(tmp_path).latest()
        assert dict(fresh.extra) == {"epoch": 3, "tag": "mid"}
        with pytest.raises(TypeError):
            fresh.extra["epoch"] = 4  # read-only view


class TestTrainingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"grad_accum_steps": 0},
            {"batch_size": 8, "grad_accum_steps": 3},
            {"checkpoint_every": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            TrainingConfig(**kwargs)


class TestTrainer:
    def _trainer(self, model, tmp_path=None, **kwargs):
        opt = AdamW(model.parameters(), lr=3e-3)
        config = TrainingConfig(**{"epochs": 3, "batch_size": 4, **kwargs})
        manager = CheckpointManager(tmp_path) if tmp_path else None
        return Trainer(model, opt, config=config, checkpoint_manager=manager)

    def test_loss_decreases(self, tiny_model):
        trainer = self._trainer(tiny_model, epochs=8)
        history = trainer.train(random_examples(n=12, vocab=60))
        assert history.losses[-1] < history.losses[0]

    def test_empty_examples_raise(self, tiny_model):
        with pytest.raises(ConfigError):
            self._trainer(tiny_model).train([])

    def test_checkpoints_written_with_lr(self, tiny_model, tmp_path):
        trainer = self._trainer(tiny_model, tmp_path=tmp_path, epochs=2, checkpoint_every=2)
        trainer.train(random_examples(n=8))
        records = trainer.checkpoints.checkpoints()
        assert records[0].step == 0  # initial state checkpoint
        assert len(records) >= 2
        assert all(r.lr > 0 for r in records)

    def test_max_steps_stops(self, tiny_model):
        trainer = self._trainer(tiny_model, epochs=50, max_steps=3)
        trainer.train(random_examples(n=16))
        assert trainer.global_step == 3

    def test_grad_accumulation_counts_steps(self, tiny_model):
        trainer = self._trainer(tiny_model, epochs=1, batch_size=8, grad_accum_steps=2)
        trainer.train(random_examples(n=16))
        # 16 examples / 8 effective = 2 optimizer steps.
        assert trainer.global_step == 2

    def test_history_records_lr_and_grad_norm(self, tiny_model):
        trainer = self._trainer(tiny_model, epochs=1)
        history = trainer.train(random_examples(n=8))
        assert all(s.lr > 0 for s in history.steps)
        assert all(np.isfinite(s.grad_norm) for s in history.steps)

    def test_early_stopping(self, tiny_model):
        stopper = EarlyStopping(patience=1, min_delta=1e9)  # any epoch "fails"
        opt = AdamW(tiny_model.parameters(), lr=1e-3)
        trainer = Trainer(
            tiny_model, opt, config=TrainingConfig(epochs=50, batch_size=4), callbacks=[stopper]
        )
        history = trainer.train(random_examples(n=8))
        assert len(history.epoch_losses) <= 3

    def test_schedule_drives_lr(self, tiny_model):
        opt = AdamW(tiny_model.parameters(), lr=1.0)
        trainer = Trainer(
            tiny_model,
            opt,
            config=TrainingConfig(epochs=1, batch_size=4),
            schedule=ConstantLR(1e-4),
        )
        history = trainer.train(random_examples(n=8))
        assert all(s.lr == pytest.approx(1e-4) for s in history.steps)

    def test_grad_accum_equivalence(self, tiny_config):
        """One step over a batch == accumulated micro-batches (same grads)."""
        examples = random_examples(n=8, seed=3)
        losses = {}
        states = {}
        for accum in (1, 2):
            model = MistralTiny(tiny_config, rng=0)
            opt = AdamW(model.parameters(), lr=1e-3)
            trainer = Trainer(
                model,
                opt,
                config=TrainingConfig(
                    epochs=1, batch_size=8, grad_accum_steps=accum, shuffle=False, clip_norm=None
                ),
            )
            history = trainer.train(examples)
            losses[accum] = history.losses
            states[accum] = model.state_dict()
        assert losses[1][0] == pytest.approx(losses[2][0], rel=1e-4)
        for key in states[1]:
            np.testing.assert_allclose(states[1][key], states[2][key], atol=1e-5)


class TestResume:
    def test_resume_restores_step_and_weights(self, tiny_config, tmp_path):
        model = MistralTiny(tiny_config, rng=0)
        opt = AdamW(model.parameters(), lr=3e-3)
        manager = CheckpointManager(tmp_path)
        trainer = Trainer(
            model, opt,
            config=TrainingConfig(epochs=2, batch_size=4, checkpoint_every=2),
            checkpoint_manager=manager,
        )
        trainer.train(random_examples(n=8))
        last = manager.latest()
        assert last is not None

        fresh_model = MistralTiny(tiny_config, rng=99)
        fresh = Trainer(
            fresh_model, AdamW(fresh_model.parameters(), lr=3e-3),
            config=TrainingConfig(epochs=1, batch_size=4),
            checkpoint_manager=manager,
        )
        step = fresh.resume()
        assert step == last.step
        assert fresh.global_step == last.step
        state = CheckpointManager.load_state(last)
        for name, param in fresh_model.named_parameters():
            np.testing.assert_allclose(param.data, state[name])

    def test_resume_without_manager_raises(self, tiny_model):
        trainer = Trainer(tiny_model, AdamW(tiny_model.parameters(), lr=1e-3))
        with pytest.raises(ConfigError):
            trainer.resume()

    def test_resume_empty_dir_returns_zero(self, tiny_model, tmp_path):
        trainer = Trainer(
            tiny_model, AdamW(tiny_model.parameters(), lr=1e-3),
            checkpoint_manager=CheckpointManager(tmp_path),
        )
        assert trainer.resume() == 0


class TestValidationLossAndBatchScore:
    def test_validation_loss_recorded_per_epoch(self, tiny_model):
        from repro.training import ValidationLoss

        examples = random_examples(n=12)
        val = ValidationLoss(tiny_model, examples[:4])
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=3e-3),
            config=TrainingConfig(epochs=3, batch_size=4),
            callbacks=[val],
        )
        trainer.train(examples[4:])
        assert len(val.losses) == 3
        assert all(np.isfinite(v) for v in val.losses)
        assert val.best == min(val.losses)

    def test_validation_loss_decreases_with_training(self, tiny_model):
        from repro.training import ValidationLoss

        examples = random_examples(n=16)
        val = ValidationLoss(tiny_model, examples[:4])
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=3e-3),
            config=TrainingConfig(epochs=8, batch_size=4),
            callbacks=[val],
        )
        trainer.train(examples[:4] * 3)  # val examples in train: must improve
        assert val.losses[-1] < val.losses[0]

    def test_early_stopping_on_validation(self, tiny_model):
        from repro.training import ValidationLoss

        examples = random_examples(n=12)
        val = ValidationLoss(tiny_model, examples[:4])
        stopper = EarlyStopping(patience=1, min_delta=1e9, watch=val)
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=1e-3),
            config=TrainingConfig(epochs=50, batch_size=4),
            callbacks=[val, stopper],
        )
        history = trainer.train(examples[4:])
        assert len(history.epoch_losses) <= 3

    def test_empty_validation_set_rejected(self, tiny_model):
        from repro.training import ValidationLoss

        with pytest.raises(ValueError):
            ValidationLoss(tiny_model, [])

    def test_score_batch_matches_single(self, fitted_zigong, german_examples):
        clf = fitted_zigong.classifier()
        prompts = [e.prompt for e in german_examples[:6]]
        batched = clf.score_batch(prompts, "good", "bad")
        singles = np.array([clf.score(p, "good", "bad") for p in prompts])
        np.testing.assert_allclose(batched, singles, atol=1e-4)

    def test_score_batch_empty_raises(self, fitted_zigong):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            fitted_zigong.classifier().score_batch([], "good", "bad")
