"""Catastrophic-forgetting probe and bootstrap CI tests."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.config import test_config as make_test_config
from repro.core import ZiGong
from repro.data import build_classification_examples
from repro.datasets import make_audit, make_german
from repro.eval import (
    ConfidenceInterval,
    ForgettingResult,
    accuracy,
    bootstrap_metric,
    f1_binary,
    ks_statistic,
    measure_forgetting,
)


def _fresh_zigong(examples, epochs=6):
    config = make_test_config()
    config = dataclasses.replace(
        config, training=dataclasses.replace(config.training, epochs=epochs), base_lr=5e-3
    )
    return ZiGong.from_examples(examples, config=config)


class TestForgettingResult:
    def test_forgetting_is_accuracy_drop(self):
        result = ForgettingResult(0.8, 0.6, 0.9, 0.0)
        assert result.forgetting == pytest.approx(0.2)


class TestMeasureForgetting:
    @pytest.fixture(scope="class")
    def tasks(self):
        german = make_german(n=160, seed=0)
        g_train, g_test = german.split(test_fraction=0.25, seed=0)
        audit = make_audit(n=160, seed=0)
        a_train, a_test = audit.split(test_fraction=0.25, seed=0)
        return (
            build_classification_examples(g_train),
            build_classification_examples(g_test),
            build_classification_examples(a_train),
            build_classification_examples(a_test),
        )

    def test_sequential_training_runs_and_reports(self, tasks):
        a_train, a_test, b_train, b_test = tasks
        zigong = _fresh_zigong(a_train + a_test + b_train + b_test)
        result = measure_forgetting(zigong, a_train, a_test, b_train, b_test)
        assert 0.0 <= result.before_accuracy <= 1.0
        assert 0.0 <= result.after_accuracy <= 1.0
        assert result.replay_fraction == 0.0

    def test_replay_reduces_forgetting(self, tasks):
        """The hybrid-mix replay mechanism must not increase forgetting."""
        a_train, a_test, b_train, b_test = tasks
        plain = measure_forgetting(
            _fresh_zigong(a_train + a_test + b_train + b_test),
            a_train, a_test, b_train, b_test, replay_fraction=0.0,
        )
        replayed = measure_forgetting(
            _fresh_zigong(a_train + a_test + b_train + b_test),
            a_train, a_test, b_train, b_test, replay_fraction=0.5,
        )
        assert replayed.after_accuracy >= plain.after_accuracy - 0.05

    def test_validation(self, tasks):
        a_train, a_test, b_train, b_test = tasks
        zigong = _fresh_zigong(a_train)
        with pytest.raises(EvaluationError):
            measure_forgetting(zigong, a_train, a_test, b_train, b_test, replay_fraction=1.5)
        with pytest.raises(EvaluationError):
            measure_forgetting(zigong, [], a_test, b_train, b_test)


class TestBootstrap:
    def test_point_estimate_matches_metric(self):
        y = [1, 0, 1, 0, 1, 1]
        p = [1, 0, 0, 0, 1, 1]
        ci = bootstrap_metric(accuracy, y, p, n_resamples=200, seed=0)
        assert ci.point == pytest.approx(accuracy(y, p))
        assert ci.low <= ci.point <= ci.high

    def test_interval_contains(self):
        ci = ConfidenceInterval(point=0.5, low=0.4, high=0.6, confidence=0.95)
        assert 0.45 in ci
        assert 0.7 not in ci
        assert ci.width == pytest.approx(0.2)

    def test_more_data_narrows_interval(self):
        rng = np.random.default_rng(0)
        y_small = list(rng.integers(0, 2, 30))
        p_small = list(rng.integers(0, 2, 30))
        y_big = list(rng.integers(0, 2, 400))
        p_big = list(rng.integers(0, 2, 400))
        small = bootstrap_metric(accuracy, y_small, p_small, n_resamples=300, seed=1)
        big = bootstrap_metric(accuracy, y_big, p_big, n_resamples=300, seed=1)
        assert big.width < small.width

    def test_f1_bootstrap(self):
        y = [1, 0, 1, 0] * 10
        p = [1, 0, 0, 0] * 10
        ci = bootstrap_metric(f1_binary, y, p, n_resamples=200, seed=2)
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_undefined_resamples_skipped(self):
        """KS is undefined when a resample has one class; must still work
        when most resamples are fine."""
        rng = np.random.default_rng(3)
        y = list(rng.integers(0, 2, 60))
        s = list(rng.random(60))
        ci = bootstrap_metric(ks_statistic, y, s, n_resamples=200, seed=3)
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_mostly_undefined_raises(self):
        def fragile(y, p):
            # Defined only on the exact original sample -> ~75% of
            # resamples are undefined, tripping the coverage guard.
            if list(y) != [1, 0]:
                raise EvaluationError("undefined on this resample")
            return 1.0

        with pytest.raises(EvaluationError):
            bootstrap_metric(fragile, [1, 0], [0.5, 0.6], n_resamples=100, seed=0)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            bootstrap_metric(accuracy, [], [])
        with pytest.raises(EvaluationError):
            bootstrap_metric(accuracy, [1], [1], confidence=1.0)
        with pytest.raises(EvaluationError):
            bootstrap_metric(accuracy, [1], [1], n_resamples=0)
        with pytest.raises(EvaluationError):
            bootstrap_metric(accuracy, [1, 0], [1])
