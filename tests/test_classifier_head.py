"""SequenceClassifier (classification head) and Platt-calibration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, EvaluationError, ShapeError
from repro.nn import MistralTiny, ModelConfig, SequenceClassifier
from repro.baselines import HeadClassifierModel
from repro.eval import PlattCalibrator, expected_calibration_error

HEAD_CONFIG = ModelConfig(
    vocab_size=48, d_model=32, n_layers=1, n_heads=4, n_kv_heads=2, d_ff=64, max_seq_len=16
)


def toy_task(n=32, seed=0):
    """Sequences whose label depends on the first token's magnitude."""
    rng = np.random.default_rng(seed)
    seqs = [list(rng.integers(5, 47, size=8)) for _ in range(n)]
    labels = [int(s[0] > 25) for s in seqs]
    return seqs, labels


class TestSequenceClassifier:
    def test_forward_shape(self):
        clf = SequenceClassifier(HEAD_CONFIG, rng=0)
        logits = clf(np.ones((3, 6), dtype=np.int64))
        assert logits.shape == (3,)

    def test_loss_at_init_near_log2(self):
        clf = SequenceClassifier(HEAD_CONFIG, rng=0)
        seqs, labels = toy_task(8)
        batch = np.array([s for s in seqs])
        loss = clf.loss(batch, labels).item()
        assert abs(loss - np.log(2)) < 0.3

    def test_fit_reduces_loss_and_separates(self):
        clf = SequenceClassifier(HEAD_CONFIG, rng=0)
        seqs, labels = toy_task(32)
        history = clf.fit(seqs, labels, epochs=10, lr=3e-3)
        assert history[-1] < history[0]
        proba = clf.predict_proba(np.array(seqs))
        acc = ((proba >= 0.5).astype(int) == np.array(labels)).mean()
        assert acc > 0.8

    def test_padding_ignored_in_pooling(self):
        clf = SequenceClassifier(HEAD_CONFIG, rng=0)
        clf.pad_id = 0
        short = np.array([[5, 9, 12, 0, 0, 0]])
        unpadded = np.array([[5, 9, 12]])
        np.testing.assert_allclose(
            clf.predict_proba(short), clf.predict_proba(unpadded), atol=1e-5
        )

    def test_label_batch_mismatch(self):
        clf = SequenceClassifier(HEAD_CONFIG, rng=0)
        with pytest.raises(ShapeError):
            clf.loss(np.ones((2, 4), dtype=np.int64), np.array([1.0]))

    def test_fit_validation(self):
        clf = SequenceClassifier(HEAD_CONFIG, rng=0)
        with pytest.raises(ConfigError):
            clf.fit([], [])
        with pytest.raises(ConfigError):
            clf.fit([[1, 2]], [1, 0])

    def test_gradients_reach_backbone(self):
        clf = SequenceClassifier(HEAD_CONFIG, rng=0)
        clf.loss(np.ones((2, 4), dtype=np.int64), np.array([1.0, 0.0])).backward()
        assert clf.backbone.tok_embed.weight.grad is not None
        assert clf.head.weight.grad is not None

    def test_hidden_states_shape(self):
        model = MistralTiny(HEAD_CONFIG, rng=0)
        hidden = model.hidden_states(np.ones((2, 5), dtype=np.int64))
        assert hidden.shape == (2, 5, HEAD_CONFIG.d_model)


class TestHeadClassifierModel:
    def test_fit_and_predict_on_german(self, german_small, german_examples):
        from repro.data import corpus_texts
        from repro.eval import evaluate, make_eval_samples
        from repro.tokenizer import WordTokenizer

        train, test = german_small.split(test_fraction=0.3, seed=0)
        from repro.data import build_classification_examples

        train_ex = build_classification_examples(train)
        tokenizer = WordTokenizer.train(corpus_texts(train_ex))
        config = ModelConfig(
            vocab_size=tokenizer.vocab_size, d_model=32, n_layers=1, n_heads=4,
            n_kv_heads=2, d_ff=64, max_seq_len=48,
        )
        model = HeadClassifierModel.fit(train_ex, tokenizer, config, epochs=6, lr=3e-3)
        result = evaluate(model, make_eval_samples(test), "german")
        assert result.miss == 0.0  # a head never misses
        assert result.accuracy >= 0.5
        assert result.ks is not None


class TestPlattCalibrator:
    def test_fixes_overconfidence(self):
        """Squash scores of an overconfident model toward honesty."""
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 600)
        # True signal is weak, but raw scores pretend certainty.
        noise = rng.random(600)
        raw = np.clip(0.5 + (y - 0.5) * 0.2 + (noise - 0.5) * 0.1, 0.01, 0.99)
        overconfident = np.clip(raw * 1.8 - 0.4, 0.001, 0.999)
        calibrator = PlattCalibrator().fit(y, overconfident)
        calibrated = calibrator.transform(overconfident)
        assert expected_calibration_error(y, calibrated) < expected_calibration_error(
            y, overconfident
        )

    def test_identity_when_already_calibrated(self):
        rng = np.random.default_rng(1)
        scores = rng.random(2000)
        y = (rng.random(2000) < scores).astype(int)
        calibrator = PlattCalibrator().fit(y, scores)
        calibrated = calibrator.transform(scores)
        assert np.abs(calibrated - scores).mean() < 0.08

    def test_transform_before_fit_raises(self):
        with pytest.raises(EvaluationError):
            PlattCalibrator().transform([0.5])

    def test_monotone(self):
        y = np.array([0, 0, 1, 1, 0, 1] * 20)
        scores = np.tile(np.array([0.1, 0.3, 0.5, 0.7, 0.4, 0.9]), 20)
        calibrator = PlattCalibrator().fit(y, scores)
        grid = np.linspace(0.01, 0.99, 20)
        out = calibrator.transform(grid)
        assert (np.diff(out) > -1e-9).all()

    def test_validation(self):
        with pytest.raises(EvaluationError):
            PlattCalibrator(lr=0)
        with pytest.raises(EvaluationError):
            PlattCalibrator().fit([1], [1.5])
