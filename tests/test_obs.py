"""Observability layer tests: metrics, spans, events, report, wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ObservabilityError, QueueFullError
from repro.obs import (
    EventSink,
    Histogram,
    MetricsRegistry,
    Observability,
    Tracer,
    read_events,
    render_registry,
    render_report,
)


class FakeClock:
    """Advances by ``tick`` every call — deterministic durations."""

    def __init__(self, start: float = 100.0, tick: float = 1.0):
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


class TestMetricsRegistry:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        assert gauge.value == 9.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", route="x") is registry.histogram("h", route="x")

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("req", path="a").inc()
        registry.counter("req", path="b").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["req{path=a}"] == 1
        assert snapshot["counters"]["req{path=b}"] == 2

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("lat")
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 10.0
        assert hist.mean == 2.5
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.5) in (2.0, 3.0)

    def test_histogram_quantile_validation(self):
        hist = MetricsRegistry().histogram("lat")
        with pytest.raises(ObservabilityError):
            hist.quantile(1.5)

    def test_histogram_window_bounds_memory(self):
        hist = Histogram("lat", window=4)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100  # exact totals survive the window
        assert hist.max == 99.0
        assert hist.quantile(0.0) == 96.0  # quantiles see the recent window

    def test_empty_histogram_is_quiet(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0
        assert hist.min == 0.0 and hist.max == 0.0

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        counter.inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.5)
        json.dumps(registry.snapshot())  # must not raise


class TestTracer:
    def test_nested_spans_form_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attrs == {"kind": "test"}
        assert [child.name for child in root.children] == ["inner"]
        assert root.duration_s > root.children[0].duration_s

    def test_walk_yields_depth_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        names = [span.name for span in tracer.roots[0].walk()]
        assert names == ["a", "b", "c"]

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        assert tracer.roots[0].status == "error"

    def test_aggregates(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        for _ in range(3):
            with tracer.span("work"):
                pass
        agg = tracer.aggregates()["work"]
        assert agg["count"] == 3
        assert agg["total_s"] == pytest.approx(3.0)
        assert agg["mean_s"] == pytest.approx(1.0)

    def test_spans_feed_metrics_histogram(self):
        metrics = MetricsRegistry()
        tracer = Tracer(clock=FakeClock(), metrics=metrics)
        with tracer.span("step"):
            pass
        hist = metrics.histogram("span.duration_s", name="step")
        assert hist.count == 1

    def test_spans_feed_event_sink(self):
        sink = EventSink(clock=FakeClock())
        tracer = Tracer(clock=FakeClock(), events=sink)
        with tracer.span("step", index=3):
            pass
        (event,) = sink.events()
        assert event["kind"] == "span"
        assert event["name"] == "step"
        assert event["attrs"] == {"index": 3}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.attrs["ignored"] = True  # writes on a null span vanish
        assert len(tracer.roots) == 0
        assert tracer.aggregates() == {}

    def test_attrs_mutable_while_open(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x") as span:
            span.attrs["late"] = 42
        assert tracer.roots[0].attrs["late"] == 42


class TestEventSink:
    def test_in_memory_ring(self):
        sink = EventSink(clock=FakeClock())
        sink.emit("a", value=1)
        sink.emit("b", value=2)
        kinds = [event["kind"] for event in sink.events()]
        assert kinds == ["a", "b"]
        assert sink.n_events == 2

    def test_ring_is_bounded(self):
        sink = EventSink(clock=FakeClock(), max_events=3)
        for i in range(10):
            sink.emit("tick", i=i)
        assert sink.n_events == 3
        assert [event["i"] for event in sink.events()] == [7, 8, 9]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventSink(path, clock=FakeClock()) as sink:
            sink.emit("alpha", n=1)
            sink.emit("beta", flag=True)
        events = read_events(path)
        assert [event["kind"] for event in events] == ["alpha", "beta"]
        assert events[1]["flag"] is True

    def test_read_events_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_events(tmp_path / "absent.jsonl")

    def test_read_events_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ObservabilityError):
            read_events(path)

    def test_emit_metrics_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        sink = EventSink(clock=FakeClock())
        sink.emit_metrics(registry)
        (event,) = sink.events()
        assert event["kind"] == "metrics"
        assert event["snapshot"]["counters"]["c"] == 5


class TestReport:
    def test_empty(self):
        assert render_report([]) == "(no events recorded)"

    def test_report_sections(self):
        events = [
            {"ts": 1.0, "kind": "span", "name": "serving.batch", "duration_s": 0.5},
            {"ts": 2.0, "kind": "span", "name": "serving.batch", "duration_s": 1.5},
            {"ts": 3.0, "kind": "serving.batch", "size": 4},
            {
                "ts": 4.0,
                "kind": "metrics",
                "snapshot": {
                    "counters": {"serving.completed": 4},
                    "gauges": {"serving.queue_depth": 0},
                    "histograms": {
                        "serving.latency_s": {
                            "count": 4, "mean": 0.5, "p50": 0.4, "p90": 0.9,
                            "p99": 1.0, "max": 1.1,
                        }
                    },
                },
            },
        ]
        report = render_report(events)
        assert "Recorded run: 4 events" in report
        assert "serving.batch" in report
        assert "serving.completed" in report
        assert "serving.latency_s" in report
        # span aggregation: 2 spans, total 2.0, mean 1.0
        assert "2" in report and "1" in report

    def test_render_registry(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        text = render_registry(registry)
        assert "hits" in text and "3" in text

    def test_last_metrics_snapshot_wins(self):
        events = [
            {"kind": "metrics", "snapshot": {"counters": {"c": 1}, "gauges": {}, "histograms": {}}},
            {"kind": "metrics", "snapshot": {"counters": {"c": 9}, "gauges": {}, "histograms": {}}},
        ]
        assert "9" in render_report(events)


class TestObservabilityHub:
    def test_create_wires_spans_into_metrics(self):
        obs = Observability.create(clock=FakeClock())
        with obs.span("unit"):
            pass
        assert obs.metrics.histogram("span.duration_s", name="unit").count == 1

    def test_disabled_hub(self):
        obs = Observability.disabled()
        assert not obs.enabled
        with obs.span("x"):
            pass
        assert obs.event("anything", a=1) is None
        assert obs.metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_event_passthrough(self, tmp_path):
        obs = Observability.create(events_path=tmp_path / "run.jsonl")
        obs.event("custom", value=1)
        assert obs.events.n_events == 1

    def test_process_default_hub(self):
        from repro.obs import get_observability, set_observability

        mine = Observability.create()
        previous = set_observability(mine)
        try:
            assert get_observability() is mine
        finally:
            set_observability(previous)


class _StubClassifier:
    def score(self, prompt, positive, negative):
        return 0.25

    def score_batch(self, prompts, positive, negative):
        return [0.25] * len(prompts)


class TestServingWiring:
    def make_service(self, obs, **config_kwargs):
        from repro.serving import BehaviorCardConfig, BehaviorCardService

        defaults = dict(cache_size=32, max_batch_size=4, queue_capacity=8)
        defaults.update(config_kwargs)
        return BehaviorCardService(
            _StubClassifier(), BehaviorCardConfig(**defaults), obs=obs
        )

    def test_counters_match_engine_stats(self):
        from repro.serving import ScoreRequest

        obs = Observability.create()
        service = self.make_service(obs)
        service.score_requests([ScoreRequest(f"u{i}", f"x={i}") for i in range(6)])
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serving.submitted"] == service.engine.stats.submitted == 6
        assert counters["serving.completed"] == service.engine.stats.completed == 6
        assert counters["behavior_card.requests"] == 6
        assert counters["behavior_card.approvals"] == 6  # 0.25 < 0.5 threshold

    def test_latency_histogram_and_stats_quantiles(self):
        from repro.serving import ScoreRequest

        obs = Observability.create()
        service = self.make_service(obs)
        service.score_requests([ScoreRequest("u", "x=1")])
        hist = obs.metrics.histogram("serving.latency_s")
        assert hist.count == 1
        assert service.engine.stats.p50_latency_s == hist.quantile(0.5)
        assert service.engine.stats.p95_latency_s >= 0.0

    def test_rejected_counter(self):
        from repro.serving import ScoreRequest

        obs = Observability.create()
        service = self.make_service(obs, queue_capacity=2)
        engine = service.engine
        engine.submit(ScoreRequest("a", "x=1"))
        engine.submit(ScoreRequest("b", "x=2"))
        with pytest.raises(QueueFullError):
            engine.submit(ScoreRequest("c", "x=3"))
        assert obs.metrics.counter("serving.rejected").value == 1
        engine.drain()

    def test_queue_depth_gauge_tracks_queue(self):
        from repro.serving import ScoreRequest

        obs = Observability.create()
        service = self.make_service(obs)
        gauge = obs.metrics.gauge("serving.queue_depth")
        service.engine.submit(ScoreRequest("a", "x=1"))
        assert gauge.value == 1
        service.engine.drain()
        assert gauge.value == 0

    def test_batch_spans_recorded(self):
        from repro.serving import ScoreRequest

        obs = Observability.create()
        service = self.make_service(obs)
        service.score_requests([ScoreRequest(f"u{i}", f"x={i}") for i in range(4)])
        aggregates = obs.tracer.aggregates()
        assert aggregates["serving.batch"]["count"] >= 1
        assert aggregates["serving.forward"]["count"] >= 1
        root = obs.tracer.roots[0]
        assert root.name == "serving.batch"
        assert [child.name for child in root.children] == ["serving.forward"]

    def test_drift_monitor_metrics(self):
        from repro.serving import DriftMonitor

        obs = Observability.create()
        rng = np.random.default_rng(0)
        monitor = DriftMonitor(rng.uniform(size=100), obs=obs)
        monitor.observe(0.5)
        monitor.observe_many([0.2, 0.9])
        monitor.psi()
        assert obs.metrics.counter("monitoring.observations").value == 3
        # psi() refreshes the gauge with its return value
        assert obs.metrics.gauge("monitoring.psi").value == pytest.approx(monitor.psi())

    def test_shadow_deployment_metrics(self):
        from repro.serving import ShadowDeployment

        class Fixed:
            def __init__(self, value):
                self.value = value

            def score(self, prompt, positive, negative):
                return self.value

        obs = Observability.create()
        shadow = ShadowDeployment(Fixed(0.8), Fixed(0.2), obs=obs)
        shadow.score("p1")
        shadow.score("p2")
        assert obs.metrics.counter("monitoring.shadow_requests").value == 2
        assert obs.metrics.counter("monitoring.shadow_disagreements").value == 2


class TestTrainingWiring:
    def train_briefly(self, tiny_model, obs):
        from repro.optim import AdamW
        from repro.training import Trainer, TrainingConfig

        rng = np.random.default_rng(0)
        examples = [
            (list(rng.integers(5, 60, size=8)), list(rng.integers(5, 60, size=8)))
            for _ in range(8)
        ]
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=1e-3),
            TrainingConfig(epochs=1, batch_size=4, shuffle=False),
            obs=obs,
            clock=FakeClock(tick=0.5),
        )
        return trainer.train(examples)

    def test_step_metrics_published(self, tiny_model):
        obs = Observability.create()
        history = self.train_briefly(tiny_model, obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["training.steps"] == len(history.steps) == 2
        assert counters["training.tokens"] == sum(log.tokens for log in history.steps)
        assert obs.metrics.histogram("training.step_s").count == 2
        assert obs.metrics.gauge("training.loss").value == history.final_loss()

    def test_step_log_timing_fields(self, tiny_model):
        obs = Observability.create()
        history = self.train_briefly(tiny_model, obs)
        for log in history.steps:
            assert log.step_s > 0
            assert log.tokens == 4 * 8  # 4 sequences of 8 tokens per step
            assert log.tokens_per_s > 0

    def test_step_spans(self, tiny_model):
        obs = Observability.create()
        self.train_briefly(tiny_model, obs)
        assert obs.tracer.aggregates()["training.step"]["count"] == 2

    def test_metrics_logger_standalone(self):
        from repro.training import MetricsLogger, StepLog

        obs = Observability.create()
        logger = MetricsLogger(obs)
        logger.on_step(StepLog(step=1, loss=0.5, lr=1e-3, grad_norm=1.0,
                               step_s=0.25, tokens=100))
        assert obs.metrics.gauge("training.tokens_per_s").value == pytest.approx(400.0)
        logger.on_epoch_end(0, 0.4)  # no sink attached: still a no-op, not an error


class TestInfluenceWiring:
    @pytest.fixture
    def traced(self, tiny_model, tmp_path):
        from repro.influence import TracInCP
        from repro.optim import AdamW
        from repro.training import CheckpointManager, Trainer, TrainingConfig

        rng = np.random.default_rng(0)
        examples = [
            (list(rng.integers(5, 60, size=8)), list(rng.integers(5, 60, size=8)))
            for _ in range(6)
        ]
        manager = CheckpointManager(tmp_path)
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=3e-3),
            TrainingConfig(epochs=1, batch_size=2, checkpoint_every=2, shuffle=False),
            checkpoint_manager=manager,
            obs=Observability.disabled(),
        )
        trainer.train(examples)
        obs = Observability.create()
        tracer = TracInCP(tiny_model, manager.checkpoints(), obs=obs)
        return tracer, obs, examples

    def test_checkpoint_spans_and_counters(self, traced):
        tracer, obs, examples = traced
        tracer.influence_matrix(examples[:4], examples[4:])
        n_ckpt = len(tracer.checkpoints)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["influence.checkpoints_replayed"] == n_ckpt
        assert counters["influence.gradient_passes"] == n_ckpt * 6
        aggregates = obs.tracer.aggregates()
        assert aggregates["influence.checkpoint"]["count"] == n_ckpt
        root = obs.tracer.roots[-1]
        assert root.name == "influence.matrix"
        assert len(root.children) == n_ckpt

    def test_tracseq_scores_span(self, tiny_model, tmp_path, traced):
        from repro.influence import TracSeq

        tracer, _, examples = traced
        obs = Observability.create()
        seq = TracSeq(tiny_model, tracer.checkpoints, gamma=0.9, obs=obs)
        seq.scores(examples[:4], examples[4:])
        names = {span.name for span in obs.tracer.roots}
        assert "influence.tracseq.scores" in names


class TestCLIReport:
    def test_obs_report_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        registry = MetricsRegistry()
        registry.counter("serving.completed").inc(3)
        with EventSink(path, clock=FakeClock()) as sink:
            sink.emit("span", name="serving.batch", duration_s=0.5)
            sink.emit_metrics(registry)
        assert main(["obs", "report", "--events", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serving.batch" in out
        assert "serving.completed" in out

    def test_obs_report_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "report", "--events", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err
