"""End-to-end integration: pipeline -> serving -> monitoring -> scorecard.

Small but *real*: a full TracSeq pipeline run, the resulting model
deployed in the Behavior Card service, decisions monitored for drift,
explained with reason codes and scaled to scorecard points.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import test_config as make_test_config
from repro.core import PipelineConfig, PrunerConfig, ZiGongPipeline
from repro.data import (
    build_behavior_examples,
    deduplicate_examples,
    drop_conflicting_examples,
    validate_examples,
)
from repro.datasets import make_behavior
from repro.eval import evaluate, EvalSample
from repro.serving import (
    BehaviorCardService,
    DriftMonitor,
    ScorecardScaler,
    reason_codes,
)


@pytest.fixture(scope="module")
def deployed():
    """Run the pipeline once and deploy the resulting model."""
    dataset = make_behavior(n_users=60, n_periods=4, seed=0)
    raw = build_behavior_examples(dataset)
    # Quantized prompts can collide across users; run the standard
    # hygiene pass (dedupe, drop label conflicts) before training.
    examples = drop_conflicting_examples(deduplicate_examples(raw))
    report = validate_examples(examples, max_answers=2)
    assert report.conflicting_prompts == 0
    assert report.duplicate_prompts == 0

    base = make_test_config()
    config = PipelineConfig(
        zigong=dataclasses.replace(
            base, training=dataclasses.replace(base.training, epochs=4), base_lr=5e-3
        ),
        pruner=PrunerConfig(strategy="tracseq", gamma=0.8, projection_dim=64),
        warmup_epochs=2,
    )
    split = len(examples) - 40
    result = ZiGongPipeline(config).run(examples[:split], examples[split : split + 20])
    service = BehaviorCardService(result.zigong.classifier(), threshold=0.5)
    return dataset, result, service


class TestPipelineToService:
    def test_service_produces_decisions(self, deployed):
        dataset, _, service = deployed
        decision = service.decide("u-0", dataset.row_text(0, dataset.n_periods - 1))
        assert 0.0 <= decision.score <= 1.0
        assert isinstance(decision.approved, bool)

    def test_model_beats_chance_on_holdout(self, deployed):
        dataset, result, _ = deployed
        raw = build_behavior_examples(dataset)
        holdout = drop_conflicting_examples(deduplicate_examples(raw))[-20:]
        samples = [
            EvalSample(e.prompt, e.label, "yes", "no") for e in holdout
        ]
        res = evaluate(result.zigong.classifier(), samples, "behavior")
        assert res.miss <= 0.1
        assert res.accuracy >= 0.5

    def test_drift_monitor_stable_on_same_cohort(self, deployed):
        dataset, _, service = deployed
        last = dataset.n_periods - 1
        reference = [
            service.decide(f"r{u}", dataset.row_text(u, last)).score
            for u in range(dataset.n_users)
        ]
        monitor = DriftMonitor(reference, window=100)
        for u in range(dataset.n_users):
            monitor.observe(service.decide(f"m{u}", dataset.row_text(u, last)).score)
        assert monitor.psi() < 0.05  # identical traffic: no drift

    def test_reason_codes_on_live_prompt(self, deployed):
        dataset, result, _ = deployed
        prompt = build_behavior_examples(dataset)[0].prompt
        codes = reason_codes(result.zigong.classifier(), prompt, top_k=3)
        assert len(codes) == 3
        assert all(np.isfinite(c.delta) for c in codes)

    def test_scorecard_view_of_decisions(self, deployed):
        dataset, _, service = deployed
        scaler = ScorecardScaler()
        decision = service.decide("sc-0", dataset.row_text(1, dataset.n_periods - 1))
        points = scaler.score(decision.score)
        assert scaler.min_score <= points <= scaler.max_score
        assert scaler.band(decision.score) in ("excellent", "good", "fair", "poor")

    def test_audit_log_covers_all_requests(self, deployed):
        _, _, service = deployed
        assert len(service.audit_log()) == service.stats.requests
