"""Tokenizer tests: vocab, word-level, BPE (with hypothesis round-trips)."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TokenizerError
from repro.tokenizer import (
    BOS_TOKEN,
    EOS_TOKEN,
    PAD_TOKEN,
    BPETokenizer,
    Vocab,
    WordTokenizer,
)


class TestVocab:
    def test_special_tokens_get_lowest_ids(self):
        vocab = Vocab()
        assert vocab.pad_id == 0
        assert vocab.token_to_id(PAD_TOKEN) == 0
        assert vocab.token_to_id(BOS_TOKEN) == vocab.bos_id

    def test_add_idempotent(self):
        vocab = Vocab()
        first = vocab.add("hello")
        assert vocab.add("hello") == first
        assert len(vocab) == len(vocab.tokens())

    def test_duplicate_specials_rejected(self):
        with pytest.raises(TokenizerError):
            Vocab(special_tokens=("<a>", "<a>"))

    def test_id_out_of_range(self):
        vocab = Vocab()
        with pytest.raises(TokenizerError):
            vocab.id_to_token(999)

    def test_contains(self):
        vocab = Vocab()
        vocab.add("word")
        assert "word" in vocab
        assert "missing" not in vocab


class TestWordTokenizer:
    def test_roundtrip(self):
        tok = WordTokenizer.train(["the cat sat", "the dog ran"])
        text = "the cat ran"
        assert tok.decode(tok.encode(text)) == text

    def test_unknown_word_maps_to_unk(self):
        tok = WordTokenizer.train(["alpha beta"])
        ids = tok.encode("alpha gamma")
        assert ids[1] == tok.unk_id

    def test_add_special_wraps(self):
        tok = WordTokenizer.train(["x"])
        ids = tok.encode("x", add_special=True)
        assert ids[0] == tok.bos_id
        assert ids[-1] == tok.eos_id

    def test_decode_skips_special(self):
        tok = WordTokenizer.train(["x y"])
        ids = [tok.bos_id] + tok.encode("x y") + [tok.eos_id, tok.pad_id]
        assert tok.decode(ids) == "x y"

    def test_max_vocab_caps_by_frequency(self):
        tok = WordTokenizer.train(["a a a b b c"], max_vocab=7)  # 5 special + 2 words
        assert tok.vocab.token_to_id("a") is not None
        assert tok.vocab.token_to_id("b") is not None
        assert tok.vocab.token_to_id("c") is None

    def test_max_vocab_too_small_raises(self):
        with pytest.raises(TokenizerError):
            WordTokenizer.train(["a"], max_vocab=2)

    def test_training_deterministic(self):
        texts = ["b a", "a c b"]
        a = WordTokenizer.train(texts)
        b = WordTokenizer.train(texts)
        assert a.vocab.tokens() == b.vocab.tokens()

    def test_encode_pair_masks_prompt(self):
        tok = WordTokenizer.train(["question answer yes no"])
        input_ids, labels = tok.encode_pair("question", "yes")
        assert input_ids[0] == tok.bos_id
        assert tok.sep_id in input_ids
        sep_pos = input_ids.index(tok.sep_id)
        assert all(l == -100 for l in labels[: sep_pos + 1])
        assert labels[sep_pos + 1] == input_ids[sep_pos + 1]
        assert labels[-1] == tok.eos_id

    @given(st.lists(st.sampled_from(["loan", "credit", "good", "bad", "risk"]), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, words):
        tok = WordTokenizer.train(["loan credit good bad risk"])
        text = " ".join(words)
        assert tok.decode(tok.encode(text)) == text


class TestBPETokenizer:
    @pytest.fixture(scope="class")
    def trained(self):
        corpus = [
            "the credit application was approved",
            "the loan application was rejected",
            "credit risk is high for this loan",
        ] * 3
        return BPETokenizer.train(corpus, vocab_size=300)

    def test_roundtrip_training_text(self, trained):
        text = "the credit application was approved"
        assert trained.decode(trained.encode(text)) == text

    def test_roundtrip_unseen_text(self, trained):
        text = "unseen words survive byte fallback"
        assert trained.decode(trained.encode(text)) == text

    def test_roundtrip_unicode(self, trained):
        text = "子贡 model — ünïcode"
        assert trained.decode(trained.encode(text)) == text

    def test_merges_compress(self, trained):
        text = "the credit application"
        ids = trained.encode(text)
        assert len(ids) < len(text.encode("utf-8"))

    def test_vocab_size_floor_enforced(self):
        with pytest.raises(TokenizerError):
            BPETokenizer.train(["abc"], vocab_size=100)

    def test_training_deterministic(self):
        corpus = ["aa ab aa ab abc"] * 2
        a = BPETokenizer.train(corpus, vocab_size=270)
        b = BPETokenizer.train(corpus, vocab_size=270)
        assert a._merge_list == b._merge_list

    def test_save_load_roundtrip(self, trained, tmp_path):
        path = tmp_path / "tok.json"
        trained.save(path)
        loaded = BPETokenizer.load(path)
        text = "the credit application was approved"
        assert loaded.encode(text) == trained.encode(text)
        assert loaded.vocab_size == trained.vocab_size

    def test_special_ids_consistent_with_word_tokenizer(self, trained):
        word = WordTokenizer.train(["x"])
        assert trained.pad_id == word.pad_id
        assert trained.bos_id == word.bos_id

    @given(st.text(alphabet=string.ascii_lowercase + " ", min_size=0, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, text):
        tok = BPETokenizer.train(["some seed corpus text"], vocab_size=265)
        assert tok.decode(tok.encode(text)) == text


class TestWordTokenizerPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        tok = WordTokenizer.train(["credit loan risk good bad"])
        path = tmp_path / "word.json"
        tok.save(path)
        loaded = WordTokenizer.load(path)
        text = "credit risk bad"
        assert loaded.encode(text) == tok.encode(text)
        assert loaded.vocab.tokens() == tok.vocab.tokens()

    def test_load_bad_version(self, tmp_path):
        path = tmp_path / "word.json"
        path.write_text('{"tokens": [], "version": 99}')
        with pytest.raises(TokenizerError):
            WordTokenizer.load(path)

    def test_load_corrupt_specials(self, tmp_path):
        path = tmp_path / "word.json"
        path.write_text('{"tokens": ["a", "b"], "version": 1}')
        with pytest.raises(TokenizerError):
            WordTokenizer.load(path)
