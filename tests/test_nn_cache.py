"""KV-cache incremental decoding tests: exactness vs full re-forward."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    GenerationConfig,
    KVCache,
    LayerKVCache,
    MistralTiny,
    generate,
    rect_attention_mask,
    sliding_window_mask,
)
from repro.tensor import no_grad


class TestLayerKVCache:
    def _kv(self, t, seed=0):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(1, 2, t, 4)).astype(np.float32)

    def test_append_grows(self):
        cache = LayerKVCache()
        cache.append(self._kv(3), self._kv(3, 1))
        k, v = cache.append(self._kv(2, 2), self._kv(2, 3))
        assert k.shape[2] == 5
        assert len(cache) == 5
        assert cache.next_position == 5

    def test_rolling_window_trims(self):
        cache = LayerKVCache(window=4)
        cache.append(self._kv(3), self._kv(3))
        cache.append(self._kv(3, 1), self._kv(3, 1))
        assert len(cache) == 4
        assert cache.offset == 2
        assert cache.next_position == 6

    def test_trimmed_content_is_most_recent(self):
        cache = LayerKVCache(window=2)
        first = self._kv(2, 0)
        second = self._kv(2, 1)
        cache.append(first, first)
        k, _ = cache.append(second, second)
        np.testing.assert_allclose(k, second)

    def test_shape_mismatch_raises(self):
        cache = LayerKVCache()
        with pytest.raises(ShapeError):
            cache.append(self._kv(2), self._kv(3))

    def test_incompatible_append_raises(self):
        cache = LayerKVCache()
        cache.append(self._kv(2), self._kv(2))
        bad = np.zeros((1, 3, 2, 4), dtype=np.float32)
        with pytest.raises(ShapeError):
            cache.append(bad, bad)


class TestKVCache:
    def test_per_layer(self):
        cache = KVCache(3, window=8)
        assert len(cache) == 3
        assert cache[0] is not cache[1]

    def test_invalid_layers(self):
        with pytest.raises(ShapeError):
            KVCache(0)


class TestRectMask:
    def test_matches_square_mask_without_offset(self):
        np.testing.assert_array_equal(
            rect_attention_mask(5, 5, 3), sliding_window_mask(5, 3)
        )

    def test_single_query_over_prefix(self):
        mask = rect_attention_mask(1, 6, None, q_offset=5, kv_offset=0)
        assert (mask == 0).all()  # causal: position 5 sees keys 0..5

    def test_window_with_offsets(self):
        mask = rect_attention_mask(1, 4, 2, q_offset=5, kv_offset=2)
        # keys at absolute 2,3,4,5; window 2 allows 4 and 5.
        np.testing.assert_array_equal(mask[0] == 0, [False, False, True, True])


class TestCachedForwardExactness:
    def test_incremental_matches_full_forward(self, tiny_model):
        rng = np.random.default_rng(0)
        ids = rng.integers(5, 60, size=12)
        with no_grad():
            full = tiny_model.forward(ids[None, :]).data
            cache = tiny_model.make_cache()
            out_prefill = tiny_model.forward(ids[None, :6], cache=cache).data
            outs = [out_prefill]
            for t in range(6, 12):
                outs.append(tiny_model.forward(ids[None, t : t + 1], cache=cache).data)
        stitched = np.concatenate(outs, axis=1)
        np.testing.assert_allclose(stitched, full, atol=1e-4)

    def test_token_by_token_matches(self, tiny_model):
        rng = np.random.default_rng(1)
        ids = rng.integers(5, 60, size=8)
        with no_grad():
            full = tiny_model.forward(ids[None, :]).data
            cache = tiny_model.make_cache()
            last = []
            for t in range(8):
                out = tiny_model.forward(ids[None, t : t + 1], cache=cache).data
                last.append(out[0, -1])
        np.testing.assert_allclose(np.stack(last), full[0], atol=1e-4)

    def test_cache_respects_max_seq_len(self, tiny_model, tiny_config):
        cache = tiny_model.make_cache()
        ids = np.zeros((1, tiny_config.max_seq_len), dtype=np.int64)
        with no_grad():
            tiny_model.forward(ids, cache=cache)
            with pytest.raises(ShapeError):
                tiny_model.forward(np.zeros((1, 1), dtype=np.int64), cache=cache)


class TestCachedGeneration:
    def test_cached_equals_uncached_greedy(self, tiny_model):
        prompt = np.array([3, 9, 27, 4, 11])
        cached = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=8, use_cache=True))
        plain = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=8, use_cache=False))
        assert cached == plain

    def test_cached_equals_uncached_sampled(self, tiny_model):
        prompt = np.array([3, 9, 27])
        config_a = GenerationConfig(max_new_tokens=6, temperature=1.0, seed=5, use_cache=True)
        config_b = GenerationConfig(max_new_tokens=6, temperature=1.0, seed=5, use_cache=False)
        assert generate(tiny_model, prompt, config_a) == generate(tiny_model, prompt, config_b)

    def test_cached_stop_token(self, tiny_model):
        prompt = np.array([1, 2, 3])
        greedy = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=8))
        first = greedy[0]
        stopped = generate(
            tiny_model, prompt, GenerationConfig(max_new_tokens=8, stop_tokens=(first,))
        )
        assert stopped == [first]

    def test_long_prompt_truncated(self, tiny_model, tiny_config):
        prompt = np.ones(tiny_config.max_seq_len + 5, dtype=np.int64)
        out = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=3))
        assert len(out) == 3

    def test_long_prompt_cached_equals_uncached(self, tiny_model, tiny_config):
        # Both paths must left-truncate to the same prompt budget; a
        # longer-than-budget prompt used to condition the uncached loop
        # on extra context the cached path never saw.
        rng = np.random.default_rng(3)
        prompt = rng.integers(5, tiny_config.vocab_size, size=tiny_config.max_seq_len + 5)
        cached = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=4, use_cache=True))
        plain = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=4, use_cache=False))
        assert cached == plain
