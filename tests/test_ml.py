"""Classic-ML toolbox tests: logistic regression, boosted stumps, hashing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DataError
from repro.ml import GradientBoostedStumps, HashingVectorizer, LogisticRegression


def linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.int64)
    return X, y


class TestLogisticRegression:
    def test_learns_separable_data(self):
        X, y = linearly_separable()
        model = LogisticRegression().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_proba_in_unit_interval(self):
        X, y = linearly_separable()
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_generalizes(self):
        X, y = linearly_separable(seed=1)
        Xt, yt = linearly_separable(seed=2)
        model = LogisticRegression().fit(X, y)
        assert (model.predict(Xt) == yt).mean() > 0.9

    def test_constant_feature_no_crash(self):
        X, y = linearly_separable()
        X[:, 3] = 5.0  # zero-variance column
        LogisticRegression().fit(X, y)

    def test_unfitted_predict_raises(self):
        with pytest.raises(DataError):
            LogisticRegression().predict_proba(np.ones((2, 3)))

    def test_non_binary_labels_raise(self):
        with pytest.raises(DataError):
            LogisticRegression().fit(np.ones((3, 2)), np.array([0, 1, 2]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataError):
            LogisticRegression().fit(np.ones((3, 2)), np.array([0, 1]))

    def test_1d_x_raises(self):
        with pytest.raises(DataError):
            LogisticRegression().fit(np.ones(3), np.array([0, 1, 0]))

    def test_invalid_hyperparams(self):
        with pytest.raises(ConfigError):
            LogisticRegression(lr=0)
        with pytest.raises(ConfigError):
            LogisticRegression(epochs=0)


class TestGradientBoostedStumps:
    def test_learns_nonlinear_additive_boundary(self):
        """|x| > t needs two cuts on one feature — impossible for a linear
        model, natural for boosted stumps (which are additive, so XOR-style
        interactions are out of scope)."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 2))
        y = (np.abs(X[:, 0]) > 0.7).astype(np.int64)
        model = GradientBoostedStumps(n_rounds=60).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_beats_base_rate_on_linear(self):
        X, y = linearly_separable()
        model = GradientBoostedStumps(n_rounds=30).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_proba_monotone_in_margin(self):
        X, y = linearly_separable()
        model = GradientBoostedStumps(n_rounds=10).fit(X, y)
        margin = model.decision_function(X)
        proba = model.predict_proba(X)
        order = np.argsort(margin)
        assert (np.diff(proba[order]) >= -1e-12).all()

    def test_invalid_hyperparams(self):
        with pytest.raises(ConfigError):
            GradientBoostedStumps(n_rounds=0)

    def test_bad_shapes_raise(self):
        with pytest.raises(DataError):
            GradientBoostedStumps().fit(np.ones((3, 2)), np.ones(4))


class TestHashingVectorizer:
    def test_shape(self):
        vec = HashingVectorizer(n_features=32)
        out = vec.transform(["a b c", "a a"])
        assert out.shape == (2, 32)

    def test_deterministic(self):
        a = HashingVectorizer(n_features=64).transform(["credit risk loan"])
        b = HashingVectorizer(n_features=64).transform(["credit risk loan"])
        np.testing.assert_allclose(a, b)

    def test_word_order_invariant(self):
        vec = HashingVectorizer(n_features=64)
        np.testing.assert_allclose(
            vec.transform(["loan credit"]), vec.transform(["credit loan"])
        )

    def test_repeated_words_accumulate(self):
        vec = HashingVectorizer(n_features=64, signed=False)
        once = vec.transform(["credit"])
        twice = vec.transform(["credit credit"])
        np.testing.assert_allclose(twice, 2 * once)

    def test_empty_text(self):
        out = HashingVectorizer(n_features=8).transform([""])
        np.testing.assert_allclose(out, np.zeros((1, 8)))

    def test_invalid_n_features(self):
        with pytest.raises(ConfigError):
            HashingVectorizer(n_features=0)

    @given(st.text(alphabet="abcdef ", max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_total_mass_bounded_by_token_count(self, text):
        vec = HashingVectorizer(n_features=16)
        out = vec.transform([text])
        assert np.abs(out).sum() <= len(text.split())
