"""Synthetic dataset generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataError
from repro.datasets import (
    CALM_DATASETS,
    FeatureSpec,
    TabularDataset,
    available_datasets,
    load_dataset,
    make_australia,
    make_behavior,
    make_ccfraud,
    make_creditcard,
    make_german,
    make_income,
    make_travel,
)

GENERATORS = {
    "german": make_german,
    "australia": make_australia,
    "creditcard_fraud": make_creditcard,
    "ccfraud": make_ccfraud,
    "travel_insurance": make_travel,
}


class TestGeneratorsCommon:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_shapes_and_labels(self, name):
        ds = GENERATORS[name](n=200, seed=0)
        assert len(ds) == 200
        assert ds.X.shape == (200, len(ds.features))
        assert set(np.unique(ds.y)) <= {0, 1}

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_deterministic(self, name):
        a = GENERATORS[name](n=100, seed=7)
        b = GENERATORS[name](n=100, seed=7)
        np.testing.assert_allclose(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_seed_changes_data(self, name):
        a = GENERATORS[name](n=100, seed=1)
        b = GENERATORS[name](n=100, seed=2)
        assert np.abs(a.X - b.X).max() > 0

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_verbalization_tokens(self, name):
        ds = GENERATORS[name](n=50, seed=0)
        text = ds.row_text(0)
        parts = text.split()
        assert len(parts) == len(ds.features)
        assert all("=" in p for p in parts)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_signal_exists(self, name):
        """An expert model must beat the base rate: labels are learnable."""
        from repro.ml import LogisticRegression

        ds = GENERATORS[name](n=600, seed=0)
        model = LogisticRegression().fit(ds.X, ds.y)
        acc = (model.predict(ds.X) == ds.y).mean()
        base = max(ds.positive_rate, 1 - ds.positive_rate)
        assert acc > base + 0.02


class TestTargetRates:
    def test_german_positive_rate(self):
        ds = make_german(n=1000, seed=0)
        assert ds.positive_rate == pytest.approx(0.7, abs=0.03)

    def test_australia_positive_rate(self):
        ds = make_australia(n=690, seed=0)
        assert ds.positive_rate == pytest.approx(0.445, abs=0.05)

    def test_creditcard_fraud_rate_configurable(self):
        ds = make_creditcard(n=4000, seed=0, fraud_rate=0.02)
        assert ds.positive_rate == pytest.approx(0.02, abs=0.01)

    def test_travel_claim_rate(self):
        ds = make_travel(n=1500, seed=0)
        assert ds.positive_rate == pytest.approx(0.15, abs=0.03)

    def test_answer_texts(self):
        assert make_german(n=50).positive_text == "good"
        assert make_ccfraud(n=50).positive_text == "yes"


class TestTabularDataset:
    def test_split_stratified(self):
        ds = make_german(n=500, seed=0)
        train, test = ds.split(test_fraction=0.2, seed=0)
        assert len(train) + len(test) == len(ds)
        assert abs(train.positive_rate - test.positive_rate) < 0.08

    def test_split_shares_bin_edges(self):
        ds = make_german(n=300, seed=0)
        train, test = ds.split(test_fraction=0.3, seed=0)
        assert train._bin_edges.keys() == test._bin_edges.keys()
        for key in train._bin_edges:
            np.testing.assert_allclose(train._bin_edges[key], test._bin_edges[key])

    def test_split_invalid_fraction(self):
        ds = make_german(n=50)
        with pytest.raises(DataError):
            ds.split(test_fraction=0.0)

    def test_invalid_construction(self):
        spec = [FeatureSpec("x")]
        with pytest.raises(DataError):
            TabularDataset("t", "task", spec, np.ones((3, 2)), np.zeros(3), "q")
        with pytest.raises(DataError):
            TabularDataset("t", "task", spec, np.ones((3, 1)), np.array([0, 1, 2]), "q")

    def test_categorical_out_of_range(self):
        spec = [FeatureSpec("c", "categorical", ("a", "b"))]
        ds = TabularDataset("t", "task", spec, np.array([[0.0], [1.0]]), np.array([0, 1]), "q")
        with pytest.raises(DataError):
            ds.verbalize_value(0, 5.0)

    def test_feature_spec_validation(self):
        with pytest.raises(DataError):
            FeatureSpec("x", "weird")
        with pytest.raises(DataError):
            FeatureSpec("x", "categorical")


class TestRegistry:
    def test_all_calm_datasets_registered(self):
        assert set(CALM_DATASETS) <= set(available_datasets())

    def test_load_by_name(self):
        ds = load_dataset("german", n=50, seed=0)
        assert ds.name == "german"

    def test_unknown_name(self):
        with pytest.raises(DataError):
            load_dataset("nope")


class TestBehaviorDataset:
    def test_shapes(self):
        ds = make_behavior(n_users=50, n_periods=6, seed=0)
        assert ds.features.shape == (50, 6, 5)
        assert ds.risk.shape == (50, 6)
        assert ds.y.shape == (50,)

    def test_default_rate(self):
        ds = make_behavior(n_users=400, seed=0, default_rate=0.25)
        assert ds.y.mean() == pytest.approx(0.25, abs=0.05)

    def test_recent_periods_more_predictive(self):
        """The generative story: last-period risk correlates with default
        more than first-period risk."""
        ds = make_behavior(n_users=800, seed=0)
        corr_last = abs(np.corrcoef(ds.risk[:, -1], ds.y)[0, 1])
        corr_first = abs(np.corrcoef(ds.risk[:, 0], ds.y)[0, 1])
        assert corr_last > corr_first + 0.1

    def test_row_text_structure(self):
        ds = make_behavior(n_users=10, n_periods=3, seed=0)
        text = ds.row_text(0, 2)
        assert text.startswith("period=2")
        assert len(text.split()) == 1 + len(ds.feature_names)

    def test_supervised_rows_count_and_timestamps(self):
        ds = make_behavior(n_users=10, n_periods=4, seed=0)
        rows = ds.supervised_rows()
        assert len(rows) == 40
        assert {r[2] for r in rows} == {0, 1, 2, 3}

    def test_numeric_at_bounds(self):
        ds = make_behavior(n_users=5, n_periods=3, seed=0)
        assert ds.numeric_at(1).shape == (5, 5)
        with pytest.raises(DataError):
            ds.numeric_at(3)

    def test_invalid_params(self):
        with pytest.raises(DataError):
            make_behavior(signal_decay=1.5)
        with pytest.raises(DataError):
            make_behavior(ar_coefficient=1.0)

    def test_deterministic(self):
        a = make_behavior(n_users=20, seed=9)
        b = make_behavior(n_users=20, seed=9)
        np.testing.assert_allclose(a.features, b.features)


class TestIncomeDataset:
    def test_shapes_and_brackets(self):
        ds = make_income(n=300, seed=0)
        assert len(ds) == 300
        assert set(np.unique(ds.bracket)) == {0, 1, 2}

    def test_brackets_roughly_balanced(self):
        ds = make_income(n=900, seed=0)
        counts = np.bincount(ds.bracket)
        assert counts.min() > 200

    def test_row_text_fields(self):
        ds = make_income(n=10, seed=0)
        text = ds.row_text(0)
        for field in ("brand=", "tier=", "price=", "education="):
            assert field in text

    def test_income_monotone_in_education(self):
        ds = make_income(n=2000, seed=0)
        low = ds.income[ds.education == 0].mean()
        high = ds.income[ds.education == 3].mean()
        assert high > low

    def test_numeric_matrix(self):
        ds = make_income(n=50, seed=0)
        assert ds.numeric_matrix().shape == (50, 6)
