"""Micro-batching serving engine + unified request/response API tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, QueueFullError, ServingError
from repro.serving import (
    BehaviorCardConfig,
    BehaviorCardDecision,
    BehaviorCardService,
    DriftMonitor,
    EngineConfig,
    MicroBatchEngine,
    ScoreRequest,
    ScoreResult,
    reset_deprecation_warnings,
)


from conftest import StubClassifier as _StubClassifier
from conftest import StepClock as _Clock
from conftest import make_stub_service as make_service


class TestConfigAPI:
    def test_config_object_init(self):
        config = BehaviorCardConfig(threshold=0.4, cache_size=16, max_batch_size=2)
        service = BehaviorCardService(_StubClassifier(), config)
        assert service.threshold == 0.4
        assert service.config.max_batch_size == 2
        assert service.engine.config.max_batch_size == 2

    def test_config_validation(self):
        with pytest.raises(ServingError):
            BehaviorCardConfig(threshold=0.0)
        with pytest.raises(ServingError):
            BehaviorCardConfig(cache_size=0)
        with pytest.raises(ServingError):
            EngineConfig(max_batch_size=0)
        with pytest.raises(ServingError):
            EngineConfig(queue_capacity=-1)

    def test_engine_knobs_validated_eagerly(self):
        with pytest.raises(ServingError):
            BehaviorCardConfig(max_batch_size=0)
        with pytest.raises(ServingError):
            BehaviorCardConfig(queue_capacity=0)
        with pytest.raises(ServingError):
            BehaviorCardConfig(max_wait_s=-1.0)

    def test_loose_kwargs_fold_into_config(self):
        service = BehaviorCardService(_StubClassifier(), threshold=0.3, cache_size=5)
        assert service.config.threshold == 0.3
        assert service.config.cache_size == 5

    def test_loose_kwargs_with_config_deprecated(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            service = BehaviorCardService(
                _StubClassifier(), BehaviorCardConfig(), threshold=0.2
            )
        assert service.threshold == 0.2

    def test_positional_threshold_shim(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            service = BehaviorCardService(_StubClassifier(), 0.3)
        assert service.threshold == 0.3

    def test_types_reexported_at_top_level(self):
        import repro

        assert repro.ScoreRequest is ScoreRequest
        assert repro.ScoreResult is ScoreResult
        assert repro.BehaviorCardConfig is BehaviorCardConfig


class TestBatchSingleParity:
    def test_stub_parity(self):
        texts = [f"feature={'x' * i}" for i in range(10)]
        single = make_service()
        batched = make_service()
        one_by_one = [single.decide(f"u{i}", t).score for i, t in enumerate(texts)]
        results = batched.score_requests(
            [ScoreRequest(f"u{i}", t) for i, t in enumerate(texts)]
        )
        assert np.allclose([r.score for r in results], one_by_one, atol=1e-12)
        # The batched service used the padded-batch path, not per-request calls.
        assert batched.classifier.batch_calls > 0

    def test_model_parity(self, fitted_zigong, german_examples):
        """Engine micro-batches match ``decide`` one-by-one to 1e-6."""
        texts = [e.prompt[:80] for e in german_examples[:6]]
        config = BehaviorCardConfig(cache_size=64, max_batch_size=3)
        single = BehaviorCardService(fitted_zigong.classifier(), config)
        batched = BehaviorCardService(fitted_zigong.classifier(), config)
        one_by_one = [single.decide(f"u{i}", t).score for i, t in enumerate(texts)]
        results = batched.score_requests(
            [ScoreRequest(f"u{i}", t) for i, t in enumerate(texts)]
        )
        assert np.allclose([r.score for r in results], one_by_one, atol=1e-6)
        assert [r.approved for r in results] == [s < 0.5 for s in one_by_one]

    def test_zigong_score_batch_matches_score(self, fitted_zigong, german_examples):
        prompts = [e.prompt for e in german_examples[:4]]
        clf = fitted_zigong.classifier()
        batched = fitted_zigong.score_batch(prompts)
        singles = [clf.score(p, "yes", "no") for p in prompts]
        assert np.allclose(batched, singles, atol=1e-6)


class TestBackpressure:
    def test_queue_full_rejects_then_recovers(self):
        service = make_service()  # queue_capacity=8
        engine = service.engine
        pending = [engine.submit(ScoreRequest(f"u{i}", f"t={i}")) for i in range(8)]
        with pytest.raises(QueueFullError):
            engine.submit(ScoreRequest("u9", "t=9"))
        assert engine.stats.rejected == 1
        assert engine.queue_depth == 8
        engine.drain()  # queue drains...
        assert engine.queue_depth == 0
        assert all(p.done for p in pending)
        late = engine.submit(ScoreRequest("u9", "t=9"))  # ...and admission resumes
        engine.drain()
        assert late.result(timeout=0).user_id == "u9"

    def test_serve_waves_bypass_capacity(self):
        service = make_service()
        results = service.score_requests(
            [ScoreRequest(f"u{i}", f"t={i}") for i in range(30)]
        )
        assert len(results) == 30
        assert service.engine.stats.rejected == 0

    def test_serve_overflow_withdraws_admitted(self):
        service = make_service()  # queue_capacity=8
        engine = service.engine
        with pytest.raises(QueueFullError):
            engine.serve([ScoreRequest(f"u{i}", f"t={i}") for i in range(9)])
        # All-or-nothing: nothing from the failed call stays queued or scored.
        assert engine.queue_depth == 0
        assert engine.stats.submitted == 0
        engine.drain()
        assert len(service.audit_log()) == 0

    def test_max_queue_depth_tracked(self):
        service = make_service()
        for i in range(5):
            service.engine.submit(ScoreRequest(f"u{i}", f"t={i}"))
        service.engine.drain()
        assert service.engine.stats.max_queue_depth == 5


class TestDeadlines:
    def test_expired_request_not_scored(self):
        clock = _Clock()
        service = make_service(clock=clock)
        engine = service.engine
        stale = engine.submit(ScoreRequest("u1", "t=1", deadline=clock.now + 1))
        live = engine.submit(ScoreRequest("u2", "t=2"))
        clock.now += 100.0  # deadline passes while queued
        engine.drain()
        with pytest.raises(DeadlineExceededError):
            stale.result(timeout=0)
        assert live.result(timeout=0).user_id == "u2"
        assert engine.stats.expired == 1
        assert engine.stats.completed == 1
        # The expired request never reached the model or the audit log.
        assert len(service.audit_log()) == 1

    def test_future_deadline_scored(self):
        clock = _Clock()
        service = make_service(clock=clock)
        pending = service.engine.submit(
            ScoreRequest("u1", "t=1", deadline=clock.now + 1e6)
        )
        service.engine.drain()
        assert pending.result(timeout=0).score > 0


class TestDegradedMode:
    def test_fallback_keeps_answering(self):
        service = BehaviorCardService(
            _StubClassifier(fail=True),
            BehaviorCardConfig(max_batch_size=4, queue_capacity=8),
            clock=_Clock(),
            fallback_scorer=lambda text: 0.25,
        )
        results = service.score_requests(
            [ScoreRequest(f"u{i}", f"t={i}") for i in range(3)]
        )
        assert all(r.degraded for r in results)
        assert all(r.score == 0.25 for r in results)
        assert all(r.approved for r in results)
        assert service.engine.stats.degraded == 3
        assert service.stats.degraded == 3
        assert all(entry.degraded for entry in service.audit_log())

    def test_no_fallback_propagates_error(self):
        service = BehaviorCardService(
            _StubClassifier(fail=True),
            BehaviorCardConfig(max_batch_size=4, queue_capacity=8),
            clock=_Clock(),
        )
        pending = service.engine.submit(ScoreRequest("u1", "t=1"))
        service.engine.drain()
        with pytest.raises(RuntimeError):
            pending.result(timeout=0)
        assert service.engine.stats.failed == 1

    def test_healthy_path_not_degraded(self):
        service = make_service(fallback_scorer=lambda text: 0.25)
        results = service.score_requests([ScoreRequest("u1", "t=1")])
        assert not results[0].degraded
        assert service.stats.degraded == 0


class TestUnifiedAPI:
    def test_decide_batch_tuples_legacy_shape(self):
        service = make_service()
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="tuples"):
            decisions = service.decide_batch([("u1", "a=1"), ("u2", "b=2")])
        assert all(isinstance(d, BehaviorCardDecision) for d in decisions)
        assert [d.user_id for d in decisions] == ["u1", "u2"]

    def test_decide_batch_request_objects(self):
        service = make_service()
        results = service.decide_batch(
            [ScoreRequest("u1", "a=1"), ScoreRequest("u2", "b=2")]
        )
        assert all(isinstance(r, ScoreResult) for r in results)
        assert results[0].batch_size == 2

    def test_empty_batch(self):
        assert make_service().decide_batch([]) == []

    def test_empty_text_rejected_on_submit(self):
        service = make_service()
        with pytest.raises(ServingError):
            service.engine.submit(ScoreRequest("u1", "   "))

    def test_batched_traffic_shares_cache_and_stats(self):
        service = make_service()
        service.decide("u1", "same=text")
        results = service.score_requests([ScoreRequest("u2", "same=text")])
        assert results[0].cached
        assert service.stats.cache_hits == 1
        assert service.stats.requests == 2

    def test_duplicates_within_batch_scored_once(self):
        service = make_service()
        results = service.score_requests(
            [ScoreRequest("u1", "same"), ScoreRequest("u2", "same")]
        )
        assert service.classifier.calls == 1
        assert results[0].score == results[1].score
        assert not results[0].cached and results[1].cached

    def test_result_metadata(self):
        service = make_service()
        results = service.score_requests(
            [ScoreRequest(f"u{i}", f"t={i}") for i in range(4)]
        )
        assert all(r.batch_size == 4 for r in results)
        assert all(r.latency_s >= 0 for r in results)
        assert service.engine.stats.mean_batch_size == 4.0
        assert service.engine.stats.mean_latency_s > 0


class TestDeterministicClock:
    def test_audit_timestamps_from_injected_clock(self):
        clock = _Clock(now=0.0)
        service = make_service(clock=clock)
        service.score_requests([ScoreRequest("u1", "a=1"), ScoreRequest("u2", "b=2")])
        stamps = [entry.timestamp for entry in service.audit_log()]
        # Every tick comes from the injected clock — no wall-clock reads.
        assert all(float(s).is_integer() for s in stamps)
        assert stamps == sorted(stamps)
        assert stamps[0] > 0.0


class TestThreadedWorker:
    def test_background_worker_scores_submissions(self):
        calls = []

        def batch_fn(requests):
            calls.append(len(requests))
            return [
                ScoreResult(
                    user_id=r.user_id,
                    score=0.1,
                    approved=True,
                    threshold=0.5,
                    cached=False,
                )
                for r in requests
            ]

        engine = MicroBatchEngine(
            batch_fn, EngineConfig(max_batch_size=4, max_wait_s=0.01, queue_capacity=64)
        )
        with engine:
            pending = [engine.submit(ScoreRequest(f"u{i}", f"t={i}")) for i in range(12)]
            results = [p.result(timeout=5.0) for p in pending]
        assert [r.user_id for r in results] == [f"u{i}" for i in range(12)]
        assert engine.stats.completed == 12
        assert max(calls) <= 4

    def test_stop_drains_remaining(self):
        engine = MicroBatchEngine(
            lambda reqs: [
                ScoreResult(r.user_id, 0.1, True, 0.5, False) for r in reqs
            ],
            EngineConfig(max_batch_size=2, queue_capacity=16),
        )
        pending = engine.submit(ScoreRequest("u1", "t=1"))
        engine.stop(drain=True)  # never started; drain still scores the queue
        assert pending.result(timeout=0).user_id == "u1"


class TestMonitoringIntegration:
    def test_observe_many_matches_observe(self):
        reference = np.linspace(0, 1, 50)
        a = DriftMonitor(reference, window=100)
        b = DriftMonitor(reference, window=100)
        scores = np.random.default_rng(0).uniform(size=20)
        for s in scores:
            a.observe(s)
        b.observe_many(scores)
        assert a.n_observed == b.n_observed
        assert a.psi() == pytest.approx(b.psi())


class TestPaddedClassifierPath:
    def test_predict_proba_sequences_parity(self, tiny_config):
        from repro.nn.classifier import SequenceClassifier, pad_sequences

        clf = SequenceClassifier(tiny_config, rng=0)
        sequences = [[5, 6, 7], [8, 9], [10, 11, 12, 13, 14]]
        batched = clf.predict_proba_sequences(sequences)
        singles = [float(clf.predict_proba(np.array([seq]))[0]) for seq in sequences]
        assert np.allclose(batched, singles, atol=1e-5)
        padded = pad_sequences(sequences, pad_id=0)
        assert padded.shape == (3, 5)
        assert padded[1, 2:].tolist() == [0, 0, 0]

    def test_pad_sequences_rejects_empty(self):
        from repro.errors import ShapeError
        from repro.nn.classifier import pad_sequences

        with pytest.raises(ShapeError):
            pad_sequences([])
        with pytest.raises(ShapeError):
            pad_sequences([[1], []])


class TestDeprecationShims:
    """Deprecation warnings fire exactly once per call *site*."""

    def test_repeated_call_site_warns_once(self):
        import warnings

        reset_deprecation_warnings()
        service = make_service()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                service.decide_batch([("u1", "a=1")])  # one site, five hits
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_distinct_call_sites_warn_separately(self):
        import warnings

        reset_deprecation_warnings()
        service = make_service()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service.decide_batch([("u1", "a=1")])  # site A
            service.decide_batch([("u2", "b=2")])  # site B
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2

    def test_reset_reenables_warning(self):
        import warnings

        reset_deprecation_warnings()
        service = make_service()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(2):
                service.decide_batch([("u1", "a=1")])
                reset_deprecation_warnings()
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2

    def test_warning_points_at_caller(self):
        import warnings

        reset_deprecation_warnings()
        service = make_service()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service.decide_batch([("u1", "a=1")])
        assert caught[0].filename == __file__  # not behavior_card.py

    def test_constructor_shims_dedupe_too(self):
        import warnings

        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                BehaviorCardService(_StubClassifier(), 0.3)  # positional threshold
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1


class TestEngineEdgeCases:
    def test_zero_deadline_expires_without_scoring(self):
        clock = _Clock()
        service = make_service(clock=clock)
        classifier = service.classifier
        pending = service.engine.submit(
            ScoreRequest("u1", "t=1", deadline=0.0)  # already in the past
        )
        service.engine.drain()
        with pytest.raises(DeadlineExceededError):
            pending.result(timeout=0)
        assert service.engine.stats.expired == 1
        assert classifier.calls == 0  # never reached the model

    def test_pump_empty_queue_is_noop(self):
        service = make_service()
        assert service.engine.pump() == 0
        service.engine.drain()  # idempotent on empty queue
        assert service.engine.stats.submitted == 0
        assert service.engine.stats.completed == 0

    def test_serve_empty_list(self):
        assert make_service().engine.serve([]) == []

    def test_burst_load_no_lost_or_double_scored(self):
        """Concurrent submitters against the threaded worker: every request
        answered exactly once."""
        import threading

        scored = []
        lock = threading.Lock()

        def batch_fn(requests):
            with lock:
                scored.extend(r.user_id for r in requests)
            return [ScoreResult(r.user_id, 0.1, True, 0.5, False) for r in requests]

        engine = MicroBatchEngine(
            batch_fn,
            EngineConfig(max_batch_size=4, max_wait_s=0.005, queue_capacity=256),
        )
        n_threads, per_thread = 4, 16
        pending: list = [None] * (n_threads * per_thread)

        def submitter(thread_index):
            for i in range(per_thread):
                slot = thread_index * per_thread + i
                pending[slot] = engine.submit(
                    ScoreRequest(f"u{slot}", f"t={slot}")
                )

        with engine:
            threads = [
                threading.Thread(target=submitter, args=(t,)) for t in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [p.result(timeout=10.0) for p in pending]

        expected = {f"u{i}" for i in range(n_threads * per_thread)}
        assert {r.user_id for r in results} == expected  # none lost
        assert sorted(scored) == sorted(expected)  # none double-scored
        assert engine.stats.completed == len(expected)
        assert engine.stats.failed == 0

    def test_degraded_fallback_counters(self):
        from repro.obs import Observability

        obs = Observability.create()
        service = BehaviorCardService(
            _StubClassifier(fail=True),
            BehaviorCardConfig(max_batch_size=4, queue_capacity=8),
            clock=_Clock(),
            fallback_scorer=lambda text: 0.25,
            obs=obs,
        )
        service.score_requests([ScoreRequest(f"u{i}", f"t={i}") for i in range(3)])
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serving.degraded"] == service.engine.stats.degraded == 3
        assert counters["serving.completed"] == 3
        assert counters["behavior_card.degraded"] == 3
        assert counters["serving.failed"] == 0  # fallback answered; no failures

    def test_failed_batch_counter_without_fallback(self):
        from repro.obs import Observability

        obs = Observability.create()
        service = BehaviorCardService(
            _StubClassifier(fail=True),
            BehaviorCardConfig(max_batch_size=4, queue_capacity=8),
            clock=_Clock(),
            obs=obs,
        )
        pending = service.engine.submit(ScoreRequest("u1", "t=1"))
        service.engine.drain()
        with pytest.raises(RuntimeError):
            pending.result(timeout=0)
        assert obs.metrics.counter("serving.failed").value == 1


def _ok_batch_fn(requests):
    return [ScoreResult(r.user_id, 0.1, True, 0.5, False) for r in requests]


class TestExpiryCallbackReentrancy:
    """Regression: expiry finalization must not run under the queue lock.

    The cluster supervisor's redispatch hook re-enters ``submit()`` from
    a done-callback.  ``_take_batch`` used to reject expired requests
    while still holding ``self._lock``; the re-entrant ``submit`` then
    blocked on the same (non-reentrant) lock forever.  The drain runs on
    a side thread with a join timeout so a reintroduced deadlock fails
    the test instead of hanging the suite.
    """

    def test_expiry_callback_can_resubmit(self):
        import threading

        clock = _Clock()
        engine = MicroBatchEngine(
            _ok_batch_fn,
            EngineConfig(max_batch_size=4, queue_capacity=8),
            clock=clock,
        )
        stale = engine.submit(ScoreRequest("u1", "t=1", deadline=clock.now + 1))
        resubmitted: list = []

        def redispatch(pending):
            if pending.error is not None:
                # Same shape as ClusterSupervisor._redispatch: re-enter
                # submit() on the finalizing (drain) thread.
                resubmitted.append(engine.submit(ScoreRequest("u1-retry", "t=1")))

        stale.add_done_callback(redispatch)
        clock.now += 100.0  # expires in queue

        drainer = threading.Thread(target=engine.drain)
        drainer.start()
        drainer.join(timeout=10.0)
        assert not drainer.is_alive(), "expiry finalization deadlocked _take_batch"
        with pytest.raises(DeadlineExceededError):
            stale.result(timeout=0)
        assert len(resubmitted) == 1
        engine.drain()  # the re-submission landed after the first drain
        assert resubmitted[0].result(timeout=0).user_id == "u1-retry"


class TestExactDeadlineBoundary:
    """A request admitted at its exact deadline always gets one attempt."""

    def test_exact_deadline_is_admitted_and_scored(self):
        clock = _Clock(now=1000.0, step=0.0)  # frozen clock
        engine = MicroBatchEngine(
            _ok_batch_fn,
            EngineConfig(max_batch_size=4, queue_capacity=8),
            clock=clock,
        )
        pending = engine.submit(ScoreRequest("u1", "t=1", deadline=1000.0))
        engine.drain()
        assert pending.result(timeout=0).user_id == "u1"
        assert engine.stats.expired == 0
        assert engine.stats.completed == 1

    def test_just_past_deadline_expires(self):
        clock = _Clock(now=1000.0, step=0.0)
        engine = MicroBatchEngine(
            _ok_batch_fn,
            EngineConfig(max_batch_size=4, queue_capacity=8),
            clock=clock,
        )
        pending = engine.submit(ScoreRequest("u1", "t=1", deadline=999.9))
        engine.drain()
        with pytest.raises(DeadlineExceededError):
            pending.result(timeout=0)
        assert engine.stats.expired == 1

    def test_exact_deadline_gets_one_attempt_no_retries(self):
        """Zero retry budget forbids retries, never the first attempt."""
        from repro.resilience import RetryPolicy

        clock = _Clock(now=1000.0, step=0.0)
        attempts = []

        def failing(requests):
            attempts.append(len(requests))
            raise RuntimeError("model path down")

        engine = MicroBatchEngine(
            failing,
            EngineConfig(max_batch_size=4, queue_capacity=8),
            clock=clock,
            # Any nonzero backoff overruns a zero budget, so the policy
            # stops after the (unconditional) first attempt.
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.05, jitter=0.0,
                sleep=lambda s: None, clock=lambda: 0.0,
            ),
        )
        pending = engine.submit(ScoreRequest("u1", "t=1", deadline=1000.0))
        engine.drain()
        with pytest.raises(RuntimeError):
            pending.result(timeout=0)
        assert attempts == [1]  # exactly one primary attempt, no retries
        assert engine.stats.expired == 0  # admitted, not silently dropped

    def test_roomy_deadline_still_retries(self):
        from repro.resilience import RetryPolicy

        clock = _Clock(now=1000.0, step=0.0)
        calls = {"n": 0}

        def flaky(requests):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return _ok_batch_fn(requests)

        engine = MicroBatchEngine(
            flaky,
            EngineConfig(max_batch_size=4, queue_capacity=8),
            clock=clock,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0, jitter=0.0,
                sleep=lambda s: None, clock=lambda: 0.0,
            ),
        )
        pending = engine.submit(ScoreRequest("u1", "t=1", deadline=2000.0))
        engine.drain()
        assert pending.result(timeout=0).user_id == "u1"
        assert calls["n"] == 2


class TestPendingResultStreaming:
    """Token streaming on PendingResult (populated by ContinuousEngine)."""

    def _pending(self):
        from repro.serving import PendingResult

        return PendingResult(ScoreRequest("u1", "t=1"))

    def test_stream_accumulates_in_order(self):
        pending = self._pending()
        seen = []
        pending.add_token_callback(lambda p, t: seen.append(t))
        for token in (3, 1, 4):
            pending._emit_token(token)
        assert pending.stream == (3, 1, 4)
        assert seen == [3, 1, 4]

    def test_emit_after_finalize_raises(self):
        pending = self._pending()
        pending._emit_token(3)
        pending._resolve(ScoreResult("u1", 0.1, True, 0.5, False))
        with pytest.raises(ServingError):
            pending._emit_token(4)
        assert pending.stream == (3,)  # prefix preserved

    def test_token_stream_ends_at_finalization(self):
        pending = self._pending()
        for token in (5, 6):
            pending._emit_token(token)
        pending._resolve(ScoreResult("u1", 0.1, True, 0.5, False))
        assert list(pending.token_stream(timeout=0)) == [5, 6]

    def test_token_stream_ends_cleanly_on_failure(self):
        pending = self._pending()
        pending._emit_token(5)
        pending._reject(RuntimeError("replica died mid-decode"))
        assert list(pending.token_stream(timeout=0)) == [5]
        with pytest.raises(RuntimeError):
            pending.result(timeout=0)

    def test_token_stream_timeout(self):
        from repro.errors import ServingTimeout

        pending = self._pending()
        with pytest.raises(ServingTimeout):
            next(pending.token_stream(timeout=0.01))

    def test_token_stream_blocks_across_threads(self):
        import threading

        pending = self._pending()
        collected: list[int] = []

        def consume():
            collected.extend(pending.token_stream(timeout=5.0))

        consumer = threading.Thread(target=consume)
        consumer.start()
        for token in (7, 8, 9):
            pending._emit_token(token)
        pending._resolve(ScoreResult("u1", 0.1, True, 0.5, False))
        consumer.join(timeout=10.0)
        assert not consumer.is_alive()
        assert collected == [7, 8, 9]
