"""CLI tests (invoking main() in-process)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_lists_generators(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "german" in out
        assert "financial_audit" in out


class TestGenerateCommand:
    def test_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(["generate", "--dataset", "german", "--n", "40", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote 40 examples" in capsys.readouterr().out

    def test_split_writes_both_files(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(
            ["generate", "--dataset", "german", "--n", "50", "--split", "0.2", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert (tmp_path / "data.test.jsonl").exists()

    def test_unknown_dataset_fails_cleanly(self, tmp_path, capsys):
        code = main(["generate", "--dataset", "nope", "--out", str(tmp_path / "x.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTrainEvaluateRoundtrip:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        data = tmp / "data.jsonl"
        model_dir = tmp / "model"
        assert main([
            "generate", "--dataset", "german", "--n", "100", "--split", "0.2",
            "--out", str(data),
        ]) == 0
        assert main([
            "train", "--data", str(data), "--out", str(model_dir), "--epochs", "5",
        ]) == 0
        return data, model_dir

    def test_model_saved(self, artifacts):
        _, model_dir = artifacts
        assert (model_dir / "weights.npz").exists()
        assert (model_dir / "zigong.json").exists()

    def test_evaluate_prints_metrics(self, artifacts, capsys):
        data, model_dir = artifacts
        test_file = data.with_name("data.test.jsonl")
        assert main(["evaluate", "--model", str(model_dir), "--data", str(test_file)]) == 0
        out = capsys.readouterr().out
        assert "Acc" in out and "Miss" in out

    def test_evaluate_missing_model_fails(self, tmp_path, artifacts, capsys):
        data, _ = artifacts
        code = main(["evaluate", "--model", str(tmp_path / "ghost"), "--data", str(data)])
        assert code == 1


class TestTable3Command:
    def test_prints_table(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "LoRA Rank" in out
        assert "Mistral 7B" in out


class TestPipelineCommand:
    def test_runs_small_pipeline(self, capsys):
        code = main([
            "pipeline", "--dataset", "german", "--n", "120", "--epochs", "3",
            "--strategy", "agent",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pipeline result" in out

    def test_workers_and_cache_dir_reach_pruner_config(self, tmp_path, monkeypatch):
        """--workers/--cache-dir are threaded into the influence stage."""
        import repro.cli as cli_mod

        captured = {}

        class FakePipeline:
            def __init__(self, config):
                captured["pruner"] = config.pruner
                raise SystemExit(0)  # config captured; skip the real run

        monkeypatch.setattr(cli_mod, "ZiGongPipeline", FakePipeline)
        cache_dir = tmp_path / "gradcache"
        with pytest.raises(SystemExit):
            main([
                "pipeline", "--dataset", "german", "--n", "80",
                "--workers", "3", "--cache-dir", str(cache_dir),
            ])
        assert captured["pruner"].workers == 3
        assert captured["pruner"].cache_dir == str(cache_dir)

    def test_negative_workers_rejected(self, capsys):
        code = main(["pipeline", "--dataset", "german", "--n", "80", "--workers", "-2"])
        assert code == 1
        assert "workers" in capsys.readouterr().err
