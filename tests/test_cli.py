"""CLI tests (invoking main() in-process)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_lists_generators(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "german" in out
        assert "financial_audit" in out


class TestGenerateCommand:
    def test_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(["generate", "--dataset", "german", "--n", "40", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote 40 examples" in capsys.readouterr().out

    def test_split_writes_both_files(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(
            ["generate", "--dataset", "german", "--n", "50", "--split", "0.2", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert (tmp_path / "data.test.jsonl").exists()

    def test_unknown_dataset_fails_cleanly(self, tmp_path, capsys):
        code = main(["generate", "--dataset", "nope", "--out", str(tmp_path / "x.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTrainEvaluateRoundtrip:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        data = tmp / "data.jsonl"
        model_dir = tmp / "model"
        assert main([
            "generate", "--dataset", "german", "--n", "100", "--split", "0.2",
            "--out", str(data),
        ]) == 0
        assert main([
            "train", "--data", str(data), "--out", str(model_dir), "--epochs", "5",
        ]) == 0
        return data, model_dir

    def test_model_saved(self, artifacts):
        _, model_dir = artifacts
        assert (model_dir / "weights.npz").exists()
        assert (model_dir / "zigong.json").exists()

    def test_evaluate_prints_metrics(self, artifacts, capsys):
        data, model_dir = artifacts
        test_file = data.with_name("data.test.jsonl")
        assert main(["evaluate", "--model", str(model_dir), "--data", str(test_file)]) == 0
        out = capsys.readouterr().out
        assert "Acc" in out and "Miss" in out

    def test_evaluate_missing_model_fails(self, tmp_path, artifacts, capsys):
        data, _ = artifacts
        code = main(["evaluate", "--model", str(tmp_path / "ghost"), "--data", str(data)])
        assert code == 1


class TestTable3Command:
    def test_prints_table(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "LoRA Rank" in out
        assert "Mistral 7B" in out


class TestPipelineCommand:
    def test_runs_small_pipeline(self, capsys):
        code = main([
            "pipeline", "--dataset", "german", "--n", "120", "--epochs", "3",
            "--strategy", "agent",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pipeline result" in out

    def test_workers_and_cache_dir_reach_pruner_config(self, tmp_path, monkeypatch):
        """--workers/--cache-dir are threaded into the influence stage."""
        import repro.cli as cli_mod

        captured = {}

        class FakePipeline:
            def __init__(self, config):
                captured["pruner"] = config.pruner
                raise SystemExit(0)  # config captured; skip the real run

        monkeypatch.setattr(cli_mod, "ZiGongPipeline", FakePipeline)
        cache_dir = tmp_path / "gradcache"
        with pytest.raises(SystemExit):
            main([
                "pipeline", "--dataset", "german", "--n", "80",
                "--workers", "3", "--cache-dir", str(cache_dir),
            ])
        assert captured["pruner"].workers == 3
        assert captured["pruner"].cache_dir == str(cache_dir)

    def test_negative_workers_rejected(self, capsys):
        code = main(["pipeline", "--dataset", "german", "--n", "80", "--workers", "-2"])
        assert code == 1
        assert "workers" in capsys.readouterr().err


class TestPipelineRunCommand:
    def test_online_loop_promotes_and_records_events(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        code = main([
            "pipeline", "run", "--users", "16", "--periods", "4",
            "--max-ticks", "40", "--work-dir", str(tmp_path / "wd"),
            "--events", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "online learning loop" in out
        assert "promotions" in out
        assert "drift -> retrain -> shadow -> promote completed" in out
        assert events.exists()
        # Every phase transition is visible in the recorded obs report.
        assert main(["obs", "report", "--events", str(events)]) == 0
        report = capsys.readouterr().out
        assert "pipeline.transition" in report
        assert "pipeline.gate" in report
        assert "pipeline.promotions" in report

    def test_no_drift_stays_in_monitor(self, tmp_path, capsys):
        code = main([
            "pipeline", "run", "--users", "12", "--periods", "3",
            "--max-ticks", "6", "--no-drift",
            "--work-dir", str(tmp_path / "wd"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "no promotion within 6 ticks (phase: monitor)" in out

    def test_legacy_pipeline_invocation_still_parses(self, monkeypatch):
        """`repro pipeline --dataset german` (no subcommand) is unchanged."""
        import repro.cli as cli_mod

        captured = {}

        class FakePipeline:
            def __init__(self, config):
                captured["config"] = config
                raise SystemExit(0)

        monkeypatch.setattr(cli_mod, "ZiGongPipeline", FakePipeline)
        with pytest.raises(SystemExit):
            main(["pipeline", "--dataset", "german", "--n", "80"])
        assert "config" in captured


class TestInfluenceCommand:
    @pytest.fixture
    def data_path(self, tmp_path):
        out = tmp_path / "inf.jsonl"
        assert main(["generate", "--dataset", "german", "--n", "30", "--out", str(out)]) == 0
        return out

    def test_ranks_influential_examples(self, data_path, tmp_path, capsys):
        code = main([
            "influence", "--data", str(data_path), "--estimator", "datainf",
            "--top-k", "2", "--epochs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Influence (datainf" in out
        assert "top-2 proponents" in out

    def test_tokens_flag_prints_attribution(self, data_path, tmp_path, capsys):
        code = main([
            "influence", "--data", str(data_path), "--estimator", "tracin",
            "--top-k", "2", "--epochs", "2", "--tokens",
            "--checkpoint-dir", str(tmp_path / "ckpts"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Token-wise attribution" in out

    def test_checkpoint_dir_reused_across_runs(self, data_path, tmp_path, capsys):
        ckpts = tmp_path / "ckpts"
        args = [
            "influence", "--data", str(data_path), "--estimator", "datainf",
            "--top-k", "2", "--epochs", "2", "--checkpoint-dir", str(ckpts),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run reuses the checkpoints
        second = capsys.readouterr().out
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_estimator_flag_reaches_pruner_config(self, tmp_path, monkeypatch):
        """pipeline --estimator threads through PrunerConfig.strategy."""
        import repro.cli as cli_mod

        captured = {}

        class FakePipeline:
            def __init__(self, config):
                captured["pruner"] = config.pruner
                raise SystemExit(0)

        monkeypatch.setattr(cli_mod, "ZiGongPipeline", FakePipeline)
        with pytest.raises(SystemExit):
            main(["pipeline", "--dataset", "german", "--n", "80",
                  "--estimator", "datainf"])
        assert captured["pruner"].strategy == "datainf"

    def test_strategy_flag_still_works_but_warns(self, tmp_path, monkeypatch):
        import warnings

        import repro.cli as cli_mod

        captured = {}

        class FakePipeline:
            def __init__(self, config):
                captured["pruner"] = config.pruner
                raise SystemExit(0)

        monkeypatch.setattr(cli_mod, "ZiGongPipeline", FakePipeline)
        with pytest.raises(SystemExit):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                main(["pipeline", "--dataset", "german", "--n", "80",
                      "--strategy", "agent"])
        assert captured["pruner"].strategy == "agent"
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)


class TestServeCommand:
    @pytest.fixture(scope="class")
    def model_dir(self, tmp_path_factory):
        import dataclasses

        from repro.config import test_config
        from repro.core import ZiGong
        from repro.data import build_behavior_examples
        from repro.datasets import make_behavior

        examples = build_behavior_examples(make_behavior(n_users=16, n_periods=2, seed=0))
        config = test_config()
        config = dataclasses.replace(
            config, training=dataclasses.replace(config.training, epochs=2)
        )
        zigong = ZiGong.from_examples(examples, config=config)
        zigong.finetune(examples[:24])
        model_dir = tmp_path_factory.mktemp("serve-cli") / "model"
        zigong.save(model_dir)
        return model_dir

    def test_synthetic_traffic_on_cluster(self, model_dir, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        code = main([
            "serve", "--model", str(model_dir), "--replicas", "2",
            "--synthetic", "8", "--events", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "of 8 decisions" in out
        assert "2 thread micro-batch replica(s)" in out
        assert events.exists()
        # The recorded run renders with the cluster counters visible.
        assert main(["obs", "report", "--events", str(events)]) == 0
        report = capsys.readouterr().out
        assert "cluster.submitted" in report
        assert "cluster.completed" in report

    def test_requests_jsonl_input(self, model_dir, tmp_path, capsys):
        import json

        requests_file = tmp_path / "requests.jsonl"
        rows = [
            {"user_id": "alice", "behavior_text": "spend high utilization rising"},
            {"user_id": "bob", "text": "payments on time balance low"},
        ]
        requests_file.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        code = main([
            "serve", "--model", str(model_dir), "--replicas", "1",
            "--requests", str(requests_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "alice" in out and "bob" in out

    def test_requires_exactly_one_source(self, model_dir, capsys):
        assert main(["serve", "--model", str(model_dir)]) == 2
        assert main([
            "serve", "--model", str(model_dir), "--synthetic", "4",
            "--requests", "x.jsonl",
        ]) == 2

    def test_continuous_mode_serves_synthetic_traffic(self, model_dir, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        code = main([
            "serve", "--model", str(model_dir), "--replicas", "2",
            "--continuous", "--synthetic", "6", "--events", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "of 6 decisions" in out
        assert "2 thread continuous replica(s)" in out
        # Continuous counters land in the recorded obs report.
        assert main(["obs", "report", "--events", str(events)]) == 0
        report = capsys.readouterr().out
        assert "generation.continuous.admitted" in report

    def test_quantized_serving_matches_float_decisions(self, model_dir, capsys):
        code = main([
            "serve", "--model", str(model_dir), "--replicas", "1",
            "--synthetic", "6",
        ])
        assert code == 0
        float_out = capsys.readouterr().out

        code = main([
            "serve", "--model", str(model_dir), "--replicas", "1",
            "--synthetic", "6", "--quantize", "int8",
        ])
        assert code == 0
        quant_out = capsys.readouterr().out
        assert "of 6 decisions" in quant_out

        def decisions(out: str) -> list[tuple[str, str]]:
            # Table rows: User  P(default)  Approved  Replica
            return [
                (line.split()[0], line.split()[2])
                for line in out.splitlines()
                if line.startswith("user-")
            ]

        parsed = decisions(quant_out)
        assert len(parsed) == 6
        assert parsed == decisions(float_out)

    def test_quantize_rejects_unknown_dtype(self, model_dir, capsys):
        with pytest.raises(SystemExit):  # argparse choices=("int8",)
            main([
                "serve", "--model", str(model_dir), "--synthetic", "2",
                "--quantize", "fp4",
            ])

    def test_continuous_requires_thread_transport(self, model_dir, capsys):
        code = main([
            "serve", "--model", str(model_dir), "--replicas", "1",
            "--continuous", "--transport", "fork", "--synthetic", "2",
        ])
        assert code == 2
        assert "thread" in capsys.readouterr().err
