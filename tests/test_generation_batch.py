"""Batched decoding: parity with sequential generation, caches, wiring.

The contract under test is exact equivalence: ``generate_batch`` must
produce, row for row, the same tokens a sequential ``generate`` call
per prompt would — greedy and seeded-sampling alike — and the ring
buffer / prefix cache must never change model outputs, only their cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import MistralTiny
from repro.nn.attention import rect_attention_mask, sliding_window_mask
from repro.nn.cache import KVCache, LayerKVCache, PrefixCache
from repro.nn.generation import GenerationConfig, generate, generate_batch


from conftest import RAGGED_LENGTHS
from conftest import ragged_prompts as _prompts


def _assert_rows_equal(batch, sequential):
    assert len(batch) == len(sequential)
    for got, want in zip(batch, sequential):
        assert list(got) == list(want)


class TestBatchedParity:
    def test_greedy_ragged(self, tiny_model, tiny_config):
        prompts = _prompts(tiny_config.vocab_size)
        config = GenerationConfig(max_new_tokens=6)
        sequential = [generate(tiny_model, p, config) for p in prompts]
        _assert_rows_equal(generate_batch(tiny_model, prompts, config), sequential)

    def test_seeded_sampling(self, tiny_model, tiny_config):
        prompts = _prompts(tiny_config.vocab_size, seed=1)
        config = GenerationConfig(max_new_tokens=6, temperature=1.0, seed=7)
        sequential = [generate(tiny_model, p, config) for p in prompts]
        _assert_rows_equal(generate_batch(tiny_model, prompts, config), sequential)

    def test_stop_tokens_retire_rows_early(self, tiny_model, tiny_config):
        prompts = _prompts(tiny_config.vocab_size, seed=2)
        # Greedy output tokens double as stop tokens so rows retire at
        # different steps; parity must survive row compaction.
        probe = generate_batch(tiny_model, prompts, GenerationConfig(max_new_tokens=6))
        stops = tuple({row[2] for row in probe if len(row) > 2})
        config = GenerationConfig(max_new_tokens=6, stop_tokens=stops)
        sequential = [generate(tiny_model, p, config) for p in prompts]
        batch = generate_batch(tiny_model, prompts, config)
        _assert_rows_equal(batch, sequential)
        assert len({len(row) for row in batch}) > 1  # genuinely ragged exit

    def test_window_binding_long_prompts(self, tiny_model, tiny_config):
        # Prompts long enough that the sliding window masks out history.
        lengths = (20, 25, 18)
        prompts = _prompts(tiny_config.vocab_size, lengths, seed=3)
        config = GenerationConfig(max_new_tokens=6)
        sequential = [generate(tiny_model, p, config) for p in prompts]
        _assert_rows_equal(generate_batch(tiny_model, prompts, config), sequential)

    def test_prefill_matches_uncached_forward_past_window(self, tiny_model, tiny_config):
        # Prompts longer than the sliding window: prefill must compute the
        # same logits as a full no-cache forward (trimming keys mid-prompt
        # would corrupt early positions and, through layer 2, the output).
        from repro.nn.generation import next_token_logits

        prompt = _prompts(tiny_config.vocab_size, (25,), seed=8)[0]
        greedy = generate(tiny_model, prompt, GenerationConfig(max_new_tokens=1))
        assert greedy[0] == int(next_token_logits(tiny_model, prompt).argmax())

    def test_single_row_batch(self, tiny_model, tiny_config):
        prompt = _prompts(tiny_config.vocab_size, (8,))[0]
        config = GenerationConfig(max_new_tokens=5)
        assert list(generate_batch(tiny_model, [prompt], config)[0]) == list(
            generate(tiny_model, prompt, config)
        )

    def test_empty_inputs(self, tiny_model):
        assert generate_batch(tiny_model, []) == []
        with pytest.raises(ConfigError):
            generate_batch(tiny_model, [np.asarray([], dtype=np.int64)])


class TestBudgetValidation:
    def test_max_new_tokens_must_leave_prompt_room(self, tiny_model, tiny_config):
        prompt = _prompts(tiny_config.vocab_size, (4,))[0]
        bad = GenerationConfig(max_new_tokens=tiny_config.max_seq_len)
        with pytest.raises(ConfigError, match="max_new_tokens"):
            generate(tiny_model, prompt, bad)
        with pytest.raises(ConfigError, match="max_new_tokens"):
            generate_batch(tiny_model, [prompt], bad)

    def test_long_prompt_truncates_to_budget(self, tiny_model, tiny_config):
        rng = np.random.default_rng(4)
        long = rng.integers(5, tiny_config.vocab_size, size=100).astype(np.int64)
        config = GenerationConfig(max_new_tokens=4)
        out = generate(tiny_model, long, config)
        kept = long[-(tiny_config.max_seq_len - 4):]
        assert list(out) == list(generate(tiny_model, kept, config))
        _assert_rows_equal(generate_batch(tiny_model, [long], config), [out])


class ConcatLayerCache:
    """Golden reference: the old concatenate-per-step cache semantics."""

    def __init__(self, window=None):
        self.window = window
        self.offset = 0
        self._k = self._v = None

    def append(self, k, v):
        if self._k is None:
            self._k, self._v = k.copy(), v.copy()
        else:
            self._k = np.concatenate([self._k, k], axis=2)
            self._v = np.concatenate([self._v, v], axis=2)
        if self.window is not None and self._k.shape[2] > self.window:
            drop = self._k.shape[2] - self.window
            self._k = self._k[:, :, drop:].copy()
            self._v = self._v[:, :, drop:].copy()
            self.offset += drop
        return self._k, self._v


class TestRingBuffer:
    @pytest.mark.parametrize("window", [None, 8])
    @pytest.mark.parametrize("chunks", [[1] * 40, [5, 1, 1, 7, 1, 30, 1, 1]])
    def test_matches_concat_reference(self, window, chunks):
        rng = np.random.default_rng(0)
        ring = LayerKVCache(window=window)
        concat = ConcatLayerCache(window=window)
        for t in chunks:
            k = rng.standard_normal((1, 2, t, 4)).astype(np.float32)
            v = rng.standard_normal((1, 2, t, 4)).astype(np.float32)
            rk, rv = ring.append(k, v)
            ck, cv = concat.append(k, v)
            np.testing.assert_array_equal(rk, ck)
            np.testing.assert_array_equal(rv, cv)
            assert ring.offset == concat.offset

    def test_snapshot_isolated_from_later_appends(self):
        rng = np.random.default_rng(1)
        cache = LayerKVCache(window=None)
        k = rng.standard_normal((1, 2, 6, 4)).astype(np.float32)
        cache.append(k, k)
        snap = cache.snapshot()
        frozen = snap.k.copy()
        cache.append(k[:, :, :1], k[:, :, :1])
        np.testing.assert_array_equal(snap.k, frozen)
        assert not snap.k.flags.writeable

    def test_fork_is_independent(self):
        rng = np.random.default_rng(2)
        cache = KVCache(n_layers=2, window=None)
        for layer in cache.layers:
            k = rng.standard_normal((1, 2, 5, 4)).astype(np.float32)
            layer.append(k, k)
        fork = cache.fork()
        extra = rng.standard_normal((1, 2, 1, 4)).astype(np.float32)
        fork.layers[0].append(extra, extra)
        assert fork.layers[0].views()[0].shape[2] == 6
        assert cache.layers[0].views()[0].shape[2] == 5

    def test_select_rows_reorders_and_drops(self):
        rng = np.random.default_rng(3)
        cache = LayerKVCache(window=None)
        k = rng.standard_normal((4, 2, 5, 4)).astype(np.float32)
        cache.append(k, k)
        cache.select_rows([3, 1])
        got, _ = cache.views()
        np.testing.assert_array_equal(got, k[[3, 1]])


class TestPrefixCache:
    def test_hit_parity(self, tiny_model, tiny_config):
        prompts = _prompts(tiny_config.vocab_size, (10, 10, 6), seed=5)
        prompts[1] = prompts[0].copy()  # exact repeat => full prefix hit
        config = GenerationConfig(max_new_tokens=5)
        baseline = [generate(tiny_model, p, config) for p in prompts]

        cache = PrefixCache(capacity=8)
        first = generate_batch(tiny_model, prompts, config, prefix_cache=cache)
        again = generate_batch(tiny_model, prompts, config, prefix_cache=cache)
        _assert_rows_equal(first, baseline)
        _assert_rows_equal(again, baseline)
        assert cache.stats.hits > 0
        assert cache.stats.tokens_saved > 0

    def test_sequential_generate_uses_prefix_cache(self, tiny_model, tiny_config):
        prompt = _prompts(tiny_config.vocab_size, (9,), seed=6)[0]
        config = GenerationConfig(max_new_tokens=5)
        baseline = generate(tiny_model, prompt, config)
        cache = PrefixCache(capacity=4)
        assert list(generate(tiny_model, prompt, config, prefix_cache=cache)) == list(baseline)
        assert list(generate(tiny_model, prompt, config, prefix_cache=cache)) == list(baseline)
        assert cache.stats.hits == 1

    def test_partial_prefix_hit_parity(self, tiny_model, tiny_config):
        base = _prompts(tiny_config.vocab_size, (10,), seed=7)[0]
        extended = np.concatenate([base, base[:4]])
        config = GenerationConfig(max_new_tokens=5)
        cache = PrefixCache(capacity=4, min_match=4)
        generate(tiny_model, base, config, prefix_cache=cache)
        with_cache = generate(tiny_model, extended, config, prefix_cache=cache)
        assert cache.stats.hits == 1
        assert list(with_cache) == list(generate(tiny_model, extended, config))

    def test_full_cache_admits_only_resighted_keys(self, tiny_model, tiny_config):
        config = GenerationConfig(max_new_tokens=2)
        cache = PrefixCache(capacity=2)
        prompts = [_prompts(tiny_config.vocab_size, (8,), seed=s)[0] for s in range(4)]
        for prompt in prompts:
            generate(tiny_model, prompt, config, prefix_cache=cache)
        # A stream of unique prompts cannot churn the full cache: the two
        # first-sighted latecomers are fingerprinted, not admitted.
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.stats.rejected == 2
        # A re-sighted key is admitted and evicts the LRU entry...
        generate(tiny_model, prompts[2], config, prefix_cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # ...and serves a hit from then on.
        hits = cache.stats.hits
        generate(tiny_model, prompts[2], config, prefix_cache=cache)
        assert cache.stats.hits == hits + 1

    def test_prefixes_below_min_match_never_stored(self, tiny_model, tiny_config):
        config = GenerationConfig(max_new_tokens=2)
        cache = PrefixCache(capacity=4, min_match=4)
        prompt = _prompts(tiny_config.vocab_size, (3,), seed=3)[0]
        generate(tiny_model, prompt, config, prefix_cache=cache)
        assert len(cache) == 0  # lookup could never return it anyway

    def test_max_bytes_bounds_eviction(self, tiny_model, tiny_config):
        config = GenerationConfig(max_new_tokens=2)
        probe = PrefixCache(capacity=16)
        prompt = _prompts(tiny_config.vocab_size, (8,), seed=0)[0]
        generate(tiny_model, prompt, config, prefix_cache=probe)
        entry_bytes = probe.nbytes
        assert entry_bytes > 0

        cache = PrefixCache(capacity=16, max_bytes=int(2.5 * entry_bytes))
        for seed in range(3):
            prompt = _prompts(tiny_config.vocab_size, (8,), seed=seed)[0]
            generate(tiny_model, prompt, config, prefix_cache=cache)
        assert len(cache) == 2
        assert cache.nbytes <= cache.max_bytes
        assert cache.stats.evictions == 1

    def test_max_bytes_retains_newest_entry(self, tiny_model, tiny_config):
        config = GenerationConfig(max_new_tokens=2)
        cache = PrefixCache(capacity=16, max_bytes=1)  # smaller than any entry
        prompt = _prompts(tiny_config.vocab_size, (8,), seed=0)[0]
        generate(tiny_model, prompt, config, prefix_cache=cache)
        assert len(cache) == 1  # a lone oversized entry still caches

    def test_weight_change_invalidates_cache(self, tiny_model, tiny_config):
        prompt = _prompts(tiny_config.vocab_size, (10,), seed=11)[0]
        config = GenerationConfig(max_new_tokens=5)
        cache = PrefixCache(capacity=4)
        generate(tiny_model, prompt, config, prefix_cache=cache)
        assert len(cache) == 1

        state = tiny_model.state_dict()
        tiny_model.load_state_dict({k: v + 0.05 for k, v in state.items()})
        fresh = generate(tiny_model, prompt, config)  # no cache: new weights
        synced = generate(tiny_model, prompt, config, prefix_cache=cache)
        assert list(synced) == list(fresh)
        assert cache.stats.invalidations == 1

    def test_weight_change_invalidates_cache_batched(self, tiny_model, tiny_config):
        prompts = _prompts(tiny_config.vocab_size, (10, 10, 6), seed=12)
        prompts[1] = prompts[0].copy()
        config = GenerationConfig(max_new_tokens=5)
        cache = PrefixCache(capacity=8)
        generate_batch(tiny_model, prompts, config, prefix_cache=cache)

        state = tiny_model.state_dict()
        tiny_model.load_state_dict({k: v + 0.05 for k, v in state.items()})
        fresh = [generate(tiny_model, p, config) for p in prompts]
        synced = generate_batch(tiny_model, prompts, config, prefix_cache=cache)
        _assert_rows_equal(synced, fresh)
        assert cache.stats.invalidations == 1


class TestMaskSafety:
    def test_cached_masks_are_read_only(self):
        for mask in (sliding_window_mask(8, 4), rect_attention_mask(1, 8, 4, 7, 0)):
            assert not mask.flags.writeable
            with pytest.raises(ValueError):
                mask[0, 0] = 1.0


class TestWiring:
    def test_predict_many_matches_sequential(self, fitted_zigong, german_examples):
        from repro.eval.harness import make_eval_samples
        from repro.datasets import make_german

        samples = make_eval_samples(make_german(n=30, seed=1))[:8]
        classifier = fitted_zigong.classifier("parity")
        sequential = [classifier.predict(s) for s in samples]
        batched = classifier.predict_many(samples)
        assert [p.label for p in batched] == [p.label for p in sequential]
        for got, want in zip(batched, sequential):
            assert got.score == pytest.approx(want.score, abs=1e-6)

    def test_generate_answer_batch_matches_sequential(self, fitted_zigong, german_examples):
        prompts = [e.prompt for e in german_examples[:6]]
        classifier = fitted_zigong.classifier("batch-answers")
        assert classifier.generate_answer_batch(prompts) == [
            classifier.generate_answer(p) for p in prompts
        ]
        assert classifier.generate_answer_batch([]) == []

    def test_zigong_classifier_memoized(self, fitted_zigong):
        assert fitted_zigong.classifier("memo") is fitted_zigong.classifier("memo")

    def test_evaluate_generative_batched_path(self, fitted_zigong, german_examples):
        from repro.eval.generative import evaluate_generative

        classifier = fitted_zigong.classifier("generative")
        examples = german_examples[:8]
        choices = tuple(sorted({e.answer for e in examples}))
        sequential = evaluate_generative(classifier.generate_answer, examples, choices)
        batched = evaluate_generative(
            classifier.generate_answer, examples, choices,
            generate_batch_fn=classifier.generate_answer_batch,
        )
        assert batched.accuracy == sequential.accuracy
        assert batched.miss == sequential.miss
        assert batched.confusion == sequential.confusion

    def test_evaluate_generative_rejects_short_batch(self, german_examples):
        from repro.errors import EvaluationError
        from repro.eval.generative import evaluate_generative

        examples = german_examples[:4]
        choices = tuple(sorted({e.answer for e in examples}))
        with pytest.raises(EvaluationError, match="generate_batch_fn"):
            evaluate_generative(
                lambda p: "", examples, choices,
                generate_batch_fn=lambda prompts: [""],
            )

    def test_reason_codes_batched_matches_scalar(self, fitted_zigong):
        from repro.serving.explain import reason_codes

        classifier = fitted_zigong.classifier("explain")

        class ScalarOnly:
            def score(self, prompt, positive, negative):
                return classifier.score(prompt, positive, negative)

        prompt = "status=low duration=long amount=high question: default ? answer:"
        fast = reason_codes(classifier, prompt)
        slow = reason_codes(ScalarOnly(), prompt)
        assert [(c.feature, c.value) for c in fast] == [(c.feature, c.value) for c in slow]
        for got, want in zip(fast, slow):
            assert got.delta == pytest.approx(want.delta, abs=1e-5)

    def test_prefix_counters_reach_obs(self, tiny_model, tiny_config):
        from repro.obs import Observability

        obs = Observability.create()
        cache = PrefixCache(capacity=4, obs=obs)
        prompts = _prompts(tiny_config.vocab_size, (8, 8), seed=9)
        prompts[1] = prompts[0].copy()
        config = GenerationConfig(max_new_tokens=3)
        generate_batch(tiny_model, prompts, config, prefix_cache=cache, obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["generation.prefix_hits"] == cache.stats.hits
        assert counters["generation.prefix_misses"] == cache.stats.misses
        assert counters["generation.prefill_tokens_saved"] == cache.stats.tokens_saved
        assert counters["generation.prefill_tokens"] > 0

class TestTokenAccounting:
    """Regression: the first sampled token counts toward throughput.

    ``generate_batch`` used to increment ``generation.tokens_generated``
    only inside the decode loop, so the token sampled from the prefill
    logits — one per row — was invisible to the counter, and rows
    retiring at the prefill (``max_new_tokens == 1`` or an immediate
    stop token) reported zero generated tokens.
    """

    def test_counter_includes_prefill_sampled_token(self, tiny_model, tiny_config):
        from repro.obs import Observability

        obs = Observability.create()
        prompts = _prompts(tiny_config.vocab_size, (5, 7, 9), seed=3)
        outputs = generate_batch(
            tiny_model, prompts, GenerationConfig(max_new_tokens=4), obs=obs
        )
        total = sum(len(row) for row in outputs)
        assert obs.metrics.counter("generation.tokens_generated").value == total

    def test_max_new_tokens_one_counts_and_retires(self, tiny_model, tiny_config):
        from repro.obs import Observability

        obs = Observability.create()
        prompts = _prompts(tiny_config.vocab_size, (5, 7, 9), seed=3)
        outputs = generate_batch(
            tiny_model, prompts, GenerationConfig(max_new_tokens=1), obs=obs
        )
        assert [len(row) for row in outputs] == [1, 1, 1]
        assert obs.metrics.counter("generation.tokens_generated").value == 3
        # Parity with the sequential path still holds at the boundary.
        _assert_rows_equal(
            outputs,
            [generate(tiny_model, p, GenerationConfig(max_new_tokens=1)) for p in prompts],
        )
