"""ContinuousEngine: streaming decode behind the serving contract.

Same testing discipline as the micro-batch engine suite: synchronous
``pump``/``drain`` with injected clocks for every scheduling decision,
one threaded smoke for the worker loop, and cluster integration proving
a :class:`~repro.serving.ClusterSupervisor` drives continuous replicas
through the unchanged submit/redispatch machinery.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    QueueFullError,
    ReplicaCrashedError,
    ServingError,
)
from repro.nn import AdmissionPolicy, GenerationConfig, MistralTiny, generate
from repro.obs import Observability
from repro.serving import (
    ClusterConfig,
    ClusterSupervisor,
    ContinuousEngine,
    EngineConfig,
    GenerationApp,
    ReplicaApp,
    ScoreRequest,
    ScoreResult,
)

from conftest import TINY
from conftest import StepClock as _Clock


@pytest.fixture(scope="module")
def model():
    return MistralTiny(TINY, rng=0)


def encode(request: ScoreRequest) -> np.ndarray:
    """Deterministic text -> prompt ids (length varies with the text)."""
    rng = np.random.default_rng(len(request.behavior_text) % 97)
    return rng.integers(
        5, TINY.vocab_size, size=4 + len(request.behavior_text) % 9
    ).astype(np.int64)


def finish(request: ScoreRequest, tokens: list[int]) -> ScoreResult:
    score = (sum(tokens) % 10) / 10.0 + 0.05
    return ScoreResult(request.user_id, score, score < 0.5, 0.5, False)


GEN = GenerationConfig(max_new_tokens=4)


def make_app(model, **overrides) -> GenerationApp:
    kwargs = dict(model=model, encode=encode, finish=finish, generation=GEN)
    kwargs.update(overrides)
    return GenerationApp(**kwargs)


def make_engine(model, app=None, **kwargs) -> ContinuousEngine:
    defaults = dict(
        config=EngineConfig(max_batch_size=4, queue_capacity=8),
        clock=_Clock(),
        obs=Observability.create(),
    )
    defaults.update(kwargs)
    return ContinuousEngine(app if app is not None else make_app(model), **defaults)


def requests(n: int) -> list[ScoreRequest]:
    return [ScoreRequest(f"user-{i}", f"txn {'x' * (i % 11)}") for i in range(n)]


class TestServeParity:
    def test_serve_matches_sequential_generate(self, model):
        reqs = requests(6)
        engine = make_engine(model)
        results = engine.serve(reqs)
        for request, result in zip(reqs, results):
            tokens = generate(model, encode(request), GEN)
            expected = finish(request, tokens)
            assert result.user_id == expected.user_id
            assert result.score == expected.score
            assert result.approved == expected.approved
        assert engine.stats.completed == 6
        assert engine.stats.failed == 0

    def test_streams_carry_the_decoded_tokens(self, model):
        engine = make_engine(model)
        reqs = requests(3)
        pendings = [engine.submit(r) for r in reqs]
        per_token: dict[str, list[int]] = {}
        for pending in pendings:
            pending.add_token_callback(
                lambda p, t: per_token.setdefault(p.request.user_id, []).append(t)
            )
        engine.drain()
        for request, pending in zip(reqs, pendings):
            expected = generate(model, encode(request), GEN)
            assert list(pending.stream) == expected
            assert per_token[request.user_id] == expected
            assert pending.result(timeout=0).user_id == request.user_id

    def test_queue_depth_counts_scheduler_waiting(self, model):
        # Admission room is max_live_rows; the rest stays queued.
        engine = make_engine(
            model, policy=AdmissionPolicy(max_live_rows=2, max_prefills_per_step=1)
        )
        for r in requests(5):
            engine.submit(r)
        assert engine.queue_depth == 5
        engine.pump()
        assert engine.live_rows <= 2
        assert engine.queue_depth + engine.live_rows == 5
        engine.drain()
        assert engine.queue_depth == 0 and engine.live_rows == 0
        assert engine.stats.completed == 5


class TestBackpressureAndDeadlines:
    def test_queue_full_rejects(self, model):
        engine = make_engine(model)
        for r in requests(8):
            engine.submit(r)
        with pytest.raises(QueueFullError):
            engine.submit(ScoreRequest("u9", "t=9"))
        assert engine.stats.rejected == 1
        engine.drain()
        assert engine.stats.completed == 8

    def test_serve_overflow_withdraws_admitted(self, model):
        engine = make_engine(model)
        with pytest.raises(QueueFullError):
            engine.serve(requests(9))
        assert engine.queue_depth == 0
        assert engine.stats.submitted == 0
        engine.drain()
        assert engine.stats.completed == 0

    def test_empty_text_rejected(self, model):
        with pytest.raises(ServingError):
            make_engine(model).submit(ScoreRequest("u1", "   "))

    def test_exact_deadline_is_admitted_and_decoded(self, model):
        clock = _Clock(now=1000.0, step=0.0)  # frozen clock
        engine = make_engine(model, clock=clock)
        pending = engine.submit(ScoreRequest("u1", "t=1", deadline=1000.0))
        engine.drain()
        assert pending.result(timeout=0).user_id == "u1"
        assert engine.stats.expired == 0

    def test_expired_request_never_decodes(self, model):
        clock = _Clock()
        engine = make_engine(model, clock=clock)
        stale = engine.submit(ScoreRequest("u1", "t=1", deadline=clock.now + 1))
        live = engine.submit(ScoreRequest("u2", "t=2"))
        clock.now += 100.0
        engine.drain()
        with pytest.raises(DeadlineExceededError):
            stale.result(timeout=0)
        assert stale.stream == ()  # never reached the scheduler
        assert live.result(timeout=0).user_id == "u2"
        assert engine.stats.expired == 1

    def test_encode_failure_rejects_only_that_request(self, model):
        def fragile_encode(request):
            if request.user_id == "bad":
                raise ValueError("unencodable")
            return encode(request)

        engine = make_engine(model, app=make_app(model, encode=fragile_encode))
        bad = engine.submit(ScoreRequest("bad", "t"))
        good = engine.submit(ScoreRequest("good", "t"))
        engine.drain()
        with pytest.raises(ValueError):
            bad.result(timeout=0)
        assert good.result(timeout=0).user_id == "good"
        assert engine.stats.failed == 1 and engine.stats.completed == 1


class TestFailureContainment:
    def test_withdraw_all_covers_live_and_queued(self, model):
        engine = make_engine(
            model, policy=AdmissionPolicy(max_live_rows=2, max_prefills_per_step=2)
        )
        pendings = [engine.submit(r) for r in requests(6)]
        engine.pump()  # 2 rows now live with partial streams
        live_streams = [p for p in pendings if len(p.stream) > 0]
        assert len(live_streams) == 2
        error = ReplicaCrashedError("replica torn down")
        assert engine.withdraw_all(error) == 6
        for pending in pendings:
            assert pending.done
            with pytest.raises(ReplicaCrashedError):
                pending.result(timeout=0)
        # Partial tokens stay readable on the failed handles.
        assert all(len(p.stream) > 0 for p in live_streams)
        assert engine.live_rows == 0 and engine.queue_depth == 0

    def test_scheduler_fault_fails_streams_then_recovers(self, model):
        from repro.resilience import FaultInjector

        engine = make_engine(model)
        pendings = [engine.submit(r) for r in requests(3)]
        engine.pump()  # one decode step lands tokens on every stream
        assert all(len(p.stream) > 0 for p in pendings)
        injector = FaultInjector().fail_times(
            "cluster.scheduler", 1, exc=lambda msg: ReplicaCrashedError(msg)
        )
        with injector.active():
            engine.drain()
        for pending in pendings:
            assert pending.done
            assert isinstance(pending.error, ReplicaCrashedError)
            assert len(pending.stream) > 0  # partial decode preserved
        # The loop resets; fresh traffic decodes normally afterwards.
        late = engine.submit(ScoreRequest("late", "t"))
        engine.drain()
        assert late.result(timeout=0).user_id == "late"

    def test_app_swap_mid_flight_fails_streams_then_rebuilds(self, model):
        box = {"app": make_app(model)}
        engine = make_engine(model, app=lambda: box["app"])
        pendings = [engine.submit(r) for r in requests(2)]
        engine.pump()  # streams in flight on the old app
        box["app"] = make_app(model)  # restarted replica: new app object
        engine.drain()
        for pending in pendings:
            assert isinstance(pending.error, ServingError)
        # With nothing in flight the fresh app is picked up silently.
        late = engine.submit(ScoreRequest("late", "t"))
        engine.drain()
        assert late.result(timeout=0).user_id == "late"

    def test_continuous_counters_reach_registry(self, model):
        obs = Observability.create()
        engine = make_engine(model, obs=obs)
        engine.serve(requests(3))
        counters = obs.metrics.snapshot()["counters"]
        assert counters["generation.continuous.admitted"] == 3
        assert counters["generation.continuous.retired"] == 3
        assert counters["serving.completed"] == 3
        assert counters["generation.continuous.steps"] > 0


class TestThreadedWorker:
    def test_background_worker_decodes_submissions(self, model):
        engine = make_engine(model)
        with engine:
            pendings = [engine.submit(r) for r in requests(6)]
            results = [p.result(timeout=30.0) for p in pendings]
        assert [r.user_id for r in results] == [f"user-{i}" for i in range(6)]
        assert engine.stats.completed == 6

    def test_token_stream_consumed_while_decoding(self, model):
        engine = make_engine(model)
        collected: list[int] = []
        with engine:
            pending = engine.submit(ScoreRequest("u1", "stream me"))
            consumer = threading.Thread(
                target=lambda: collected.extend(pending.token_stream(timeout=30.0))
            )
            consumer.start()
            pending.result(timeout=30.0)
            consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        assert collected == generate(model, encode(pending.request), GEN)

    def test_stop_drains_remaining(self, model):
        engine = make_engine(model)
        pending = engine.submit(ScoreRequest("u1", "t=1"))
        engine.stop(drain=True)  # never started; drain still decodes
        assert pending.result(timeout=0).user_id == "u1"


def generation_factory(replica_id: int) -> ReplicaApp:
    model = MistralTiny(TINY, rng=replica_id)

    def batch_fn(reqs):
        raise AssertionError("continuous mode must never call batch_fn")

    return ReplicaApp(
        batch_fn=batch_fn,
        weight_version=lambda: 1,
        generation=GenerationApp(model=model, encode=encode, finish=finish, generation=GEN),
    )


class TestClusterIntegration:
    def test_cluster_runs_continuous_replicas(self):
        cluster = ClusterSupervisor(
            generation_factory,
            ClusterConfig(replicas=2, engine_mode="continuous", max_batch_size=4),
            obs=Observability.create(),
        )
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(10)]
        cluster.drain()
        results = [p.result(timeout=0) for p in pendings]
        assert {r.replica for r in results} == {0, 1}  # both replicas decoded
        assert cluster.stats.completed == 10
        cluster.stop()

    def test_fork_transport_rejected(self):
        with pytest.raises(ClusterError, match="thread transport"):
            ClusterConfig(replicas=2, transport="fork", engine_mode="continuous")

    def test_bad_engine_mode_rejected(self):
        with pytest.raises(ClusterError):
            ClusterConfig(replicas=1, engine_mode="warp-drive")

    def test_missing_generation_bundle_fails_loudly(self):
        def plain_factory(replica_id: int) -> ReplicaApp:
            return ReplicaApp(
                batch_fn=lambda reqs: [
                    ScoreResult(r.user_id, 0.1, True, 0.5, False) for r in reqs
                ]
            )

        cluster = ClusterSupervisor(
            plain_factory,
            ClusterConfig(replicas=1, engine_mode="continuous", max_redispatch=0),
            obs=Observability.create(),
        )
        cluster.launch()
        pending = cluster.submit(ScoreRequest("u1", "t=1"))
        cluster.drain()
        assert pending.done and pending.error is not None
        cluster.stop()

    def test_scheduler_fault_redispatches_to_survivor(self):
        from repro.resilience import FaultInjector

        cluster = ClusterSupervisor(
            generation_factory,
            ClusterConfig(replicas=2, engine_mode="continuous", max_batch_size=4),
            obs=Observability.create(),
        )
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(6)]
        injector = FaultInjector().fail_times(
            "cluster.scheduler", 1, exc=lambda msg: ReplicaCrashedError(msg)
        )
        with injector.active():
            cluster.drain()
        for pending in pendings:
            assert pending.done, f"{pending.request.user_id} dropped"
            assert pending.error is None  # redispatch rescued everything
        assert cluster.stats.redispatched > 0
        cluster.stop()

    def test_zigong_factory_builds_generation_bundle(self, fitted_zigong):
        from repro.serving.cluster import zigong_replica_factory

        factory = zigong_replica_factory(fitted_zigong)
        app = factory(0)
        assert app.generation is not None
        bundle = app.generation
        request = ScoreRequest("u1", "payments on time balance low")
        prompt = bundle.encode(request)
        assert len(prompt) > 0
        tokens = generate(bundle.model, prompt, bundle.generation)
        result = bundle.finish(request, tokens)
        assert result.user_id == "u1"
        assert 0.0 <= result.score <= 1.0
