"""Tests for calibration metrics and the generative multi-choice harness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.data import InstructExample
from repro.eval import (
    brier_score,
    evaluate_generative,
    expected_calibration_error,
    hallucination_rate,
)


class TestBrier:
    def test_perfect_forecast(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_worst_forecast(self):
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_hand_computed(self):
        assert brier_score([1, 0], [0.8, 0.4]) == pytest.approx((0.04 + 0.16) / 2)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            brier_score([], [])
        with pytest.raises(EvaluationError):
            brier_score([1], [1.5])
        with pytest.raises(EvaluationError):
            brier_score([2], [0.5])

    @given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, pairs):
        y = [p[0] for p in pairs]
        s = [p[1] for p in pairs]
        assert 0.0 <= brier_score(y, s) <= 1.0


class TestECE:
    def test_perfectly_calibrated_bins(self):
        # Score 0.2 with 20% positives, score 0.8 with 80% positives.
        y = [0, 0, 0, 0, 1] + [1, 1, 1, 1, 0]
        s = [0.2] * 5 + [0.8] * 5
        assert expected_calibration_error(y, s, n_bins=5) == pytest.approx(0.0, abs=1e-9)

    def test_overconfident_model(self):
        y = [0, 1, 0, 1]
        s = [0.99, 0.99, 0.99, 0.99]
        assert expected_calibration_error(y, s) == pytest.approx(0.49, abs=0.01)

    def test_score_one_in_last_bin(self):
        assert expected_calibration_error([1, 1], [1.0, 1.0]) == pytest.approx(0.0)

    def test_invalid_bins(self):
        with pytest.raises(EvaluationError):
            expected_calibration_error([1], [0.5], n_bins=0)

    @given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, pairs):
        y = [p[0] for p in pairs]
        s = [p[1] for p in pairs]
        assert 0.0 <= expected_calibration_error(y, s) <= 1.0


class TestHallucinationRate:
    def test_confidently_wrong_counted(self):
        y = [0, 1]
        preds = [1, 1]
        scores = [0.95, 0.9]  # first is wrong and confident
        assert hallucination_rate(y, preds, scores) == 0.5

    def test_unconfident_wrong_not_counted(self):
        assert hallucination_rate([0], [1], [0.6]) == 0.0

    def test_confident_negative_wrong(self):
        # Predicts 0 with score 0.05 (confidence 0.95) but label is 1.
        assert hallucination_rate([1], [0], [0.05]) == 1.0

    def test_misses_excluded(self):
        assert hallucination_rate([1, 1], [None, 1], [0.99, 0.99]) == 0.0

    def test_threshold_validation(self):
        with pytest.raises(EvaluationError):
            hallucination_rate([1], [1], [0.5], confidence=1.0)

    def test_alignment_validation(self):
        with pytest.raises(EvaluationError):
            hallucination_rate([1, 0], [1], [0.5, 0.5])


class _FixedGenerator:
    def __init__(self, outputs):
        self.outputs = list(outputs)
        self.i = 0

    def __call__(self, prompt):
        out = self.outputs[self.i % len(self.outputs)]
        self.i += 1
        return out


def _examples(answers):
    label_of = {"bad": 0, "neutral": 1, "good": 2}
    return [
        InstructExample(prompt=f"text {i} question: sentiment ? answer:", answer=a, label=label_of[a])
        for i, a in enumerate(answers)
    ]


class TestEvaluateGenerative:
    CHOICES = ("bad", "neutral", "good")

    def test_all_correct(self):
        examples = _examples(["good", "bad"])
        gen = _FixedGenerator(["good", "bad"])
        result = evaluate_generative(gen, examples, self.CHOICES)
        assert result.accuracy == 1.0
        assert result.miss == 0.0
        assert result.per_class_accuracy["good"] == 1.0

    def test_miss_counted(self):
        examples = _examples(["good", "bad"])
        gen = _FixedGenerator(["mumble", "bad"])
        result = evaluate_generative(gen, examples, self.CHOICES)
        assert result.miss == 0.5
        assert result.accuracy == 0.5

    def test_confusion_tracks_errors(self):
        examples = _examples(["good", "good"])
        gen = _FixedGenerator(["bad", "good"])
        result = evaluate_generative(gen, examples, self.CHOICES)
        assert result.confusion[("good", "bad")] == 1
        assert result.confusion[("good", "good")] == 1

    def test_as_rows_layout(self):
        examples = _examples(["good"])
        result = evaluate_generative(_FixedGenerator(["good"]), examples, self.CHOICES)
        rows = result.as_rows()
        assert rows[0][0] == "overall"
        assert len(rows) == 1 + len(self.CHOICES)

    def test_unknown_answer_rejected(self):
        examples = [InstructExample("p", "sideways", 0)]
        with pytest.raises(EvaluationError):
            evaluate_generative(_FixedGenerator(["x"]), examples, self.CHOICES)

    def test_empty_inputs_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_generative(_FixedGenerator(["x"]), [], self.CHOICES)
        with pytest.raises(EvaluationError):
            evaluate_generative(_FixedGenerator(["x"]), _examples(["good"]), ())
