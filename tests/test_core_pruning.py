"""Data pruning orchestration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InfluenceError
from repro.core import DataPruner, PrunerConfig, ZiGong
from repro.training import CheckpointManager


@pytest.fixture(scope="module")
def warm(german_examples, tmp_path_factory):
    """A warmed-up ZiGong with checkpoints, shared across pruning tests."""
    ckpt_dir = tmp_path_factory.mktemp("ckpts")
    zigong = ZiGong.from_examples(german_examples)
    zigong.finetune(german_examples[:64], checkpoint_dir=ckpt_dir)
    checkpoints = CheckpointManager(ckpt_dir).checkpoints()
    return zigong, checkpoints


class TestPrunerConfig:
    def test_defaults(self):
        config = PrunerConfig()
        assert config.strategy == "tracseq"
        assert config.gamma == 0.9

    def test_unknown_strategy(self):
        with pytest.raises(InfluenceError):
            PrunerConfig(strategy="magic")

    def test_invalid_gamma(self):
        with pytest.raises(InfluenceError):
            PrunerConfig(gamma=0.0)


class TestScoring:
    def test_tracseq_scores_shape(self, warm, german_examples):
        zigong, checkpoints = warm
        train, val = german_examples[:16], german_examples[64:72]
        scores = DataPruner(PrunerConfig(projection_dim=64)).score(zigong, train, val, checkpoints)
        assert scores.shape == (16,)
        assert np.isfinite(scores).all()

    def test_tracin_strategy(self, warm, german_examples):
        zigong, checkpoints = warm
        scores = DataPruner(PrunerConfig(strategy="tracin", projection_dim=64)).score(
            zigong, german_examples[:8], german_examples[64:68], checkpoints
        )
        assert scores.shape == (8,)

    def test_agent_strategy_no_checkpoints_needed(self, warm, german_examples):
        zigong, _ = warm
        scores = DataPruner(PrunerConfig(strategy="agent")).score(
            zigong, german_examples[:32], [], ()
        )
        assert scores.shape == (32,)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_combined_strategy(self, warm, german_examples):
        zigong, checkpoints = warm
        scores = DataPruner(PrunerConfig(strategy="combined", projection_dim=64)).score(
            zigong, german_examples[:8], german_examples[64:68], checkpoints
        )
        assert scores.shape == (8,)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_random_strategy_seeded(self, warm, german_examples):
        zigong, _ = warm
        a = DataPruner(PrunerConfig(strategy="random", seed=5)).score(zigong, german_examples[:10], [], ())
        b = DataPruner(PrunerConfig(strategy="random", seed=5)).score(zigong, german_examples[:10], [], ())
        np.testing.assert_allclose(a, b)

    def test_influence_requires_checkpoints(self, warm, german_examples):
        zigong, _ = warm
        with pytest.raises(InfluenceError):
            DataPruner().score(zigong, german_examples[:4], german_examples[4:8], ())

    def test_influence_requires_val(self, warm, german_examples):
        zigong, checkpoints = warm
        with pytest.raises(InfluenceError):
            DataPruner().score(zigong, german_examples[:4], [], checkpoints)

    def test_empty_train_raises(self, warm, german_examples):
        zigong, checkpoints = warm
        with pytest.raises(InfluenceError):
            DataPruner().score(zigong, [], german_examples[:4], checkpoints)


class TestSelection:
    def test_select_returns_top_k(self, warm, german_examples):
        pruner = DataPruner()
        scores = np.arange(10, dtype=np.float64)
        selected = pruner.select(german_examples[:10], scores, k=3)
        assert selected == [german_examples[9], german_examples[8], german_examples[7]]

    def test_select_indices(self):
        pruner = DataPruner()
        np.testing.assert_array_equal(pruner.select_indices(np.array([0.2, 0.9, 0.5]), 2), [1, 2])
