"""Failure injection: the library must fail loudly, not corrupt silently."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError, GradientError
from repro.nn import MistralTiny
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig


def examples(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return [(list(rng.integers(5, 60, size=8)),) * 2 for _ in range(n)]


class TestAnomalyDetection:
    def test_nan_weights_raise_immediately(self, tiny_model):
        tiny_model.tok_embed.weight.data[0, 0] = np.nan
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=1e-3),
            config=TrainingConfig(epochs=1, batch_size=4),
        )
        with pytest.raises(GradientError, match="non-finite loss"):
            trainer.train(examples())

    def test_inf_weights_raise(self, tiny_model):
        tiny_model.blocks[0].ffn.w1.weight.data[:] = np.inf
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=1e-3),
            config=TrainingConfig(epochs=1, batch_size=4),
        )
        # Inf propagates through matmuls with a RuntimeWarning before the
        # guard fires; both are expected here.
        with pytest.warns(RuntimeWarning):
            with pytest.raises(GradientError):
                trainer.train(examples())

    def test_detection_can_be_disabled(self, tiny_model):
        tiny_model.tok_embed.weight.data[0, 0] = np.nan
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=1e-3),
            config=TrainingConfig(epochs=1, batch_size=4, detect_anomalies=False,
                                  clip_norm=None),
        )
        trainer.train(examples())  # must not raise (user opted out)

    def test_healthy_training_unaffected(self, tiny_model):
        trainer = Trainer(
            tiny_model,
            AdamW(tiny_model.parameters(), lr=1e-3),
            config=TrainingConfig(epochs=1, batch_size=4),
        )
        history = trainer.train(examples())
        assert all(np.isfinite(s.loss) for s in history.steps)


class TestCorruptedArtifacts:
    def test_truncated_checkpoint_raises(self, tiny_model, tmp_path):
        manager = CheckpointManager(tmp_path)
        record = manager.save(tiny_model, step=1, lr=0.1)
        record.path.write_bytes(record.path.read_bytes()[:40])  # corrupt
        with pytest.raises(Exception):
            CheckpointManager.load_state(record)

    def test_missing_checkpoint_file_raises(self, tiny_model, tmp_path):
        manager = CheckpointManager(tmp_path)
        record = manager.save(tiny_model, step=1, lr=0.1)
        record.path.unlink()
        with pytest.raises(CheckpointError):
            CheckpointManager.load_state(record)

    def test_wrong_architecture_checkpoint_rejected(self, tiny_model, tmp_path):
        from dataclasses import replace

        manager = CheckpointManager(tmp_path)
        record = manager.save(tiny_model, step=1, lr=0.1)
        other = MistralTiny(replace(tiny_model.config, d_model=64, d_ff=128), rng=0)
        with pytest.raises(CheckpointError):
            CheckpointManager.restore(other, record)
