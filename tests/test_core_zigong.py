"""ZiGong model API tests."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigError
from repro.config import test_config as make_test_config
from repro.core import ZiGong
from repro.lora import LoRALinear


class TestConstruction:
    def test_from_examples_sizes_vocab(self, german_examples):
        zigong = ZiGong.from_examples(german_examples)
        assert zigong.config.model.vocab_size == zigong.tokenizer.vocab_size

    def test_empty_examples_raise(self):
        with pytest.raises(ConfigError):
            ZiGong.from_examples([])

    def test_vocab_too_small_raises(self, german_examples):
        from repro.tokenizer import WordTokenizer
        from repro.data import corpus_texts

        tok = WordTokenizer.train(corpus_texts(german_examples))
        config = make_test_config()  # vocab 256 < tokenizer? ensure smaller
        small = dataclasses.replace(config, model=dataclasses.replace(config.model, vocab_size=3))
        with pytest.raises(ConfigError):
            ZiGong(small, tok)

    def test_tokenize_respects_context(self, fitted_zigong, german_examples):
        encoded = fitted_zigong.tokenize(german_examples[:4])
        max_len = fitted_zigong.config.model.max_seq_len
        assert all(len(ids) <= max_len for ids, _ in encoded)


class TestFinetune:
    def test_loss_decreases(self, german_examples):
        zigong = ZiGong.from_examples(german_examples[:48])
        history = zigong.finetune(german_examples[:48])
        assert history.losses[-1] < history.losses[0]

    def test_lora_applied_once(self, make_zigong):
        zigong = make_zigong()
        zigong.apply_lora()
        zigong.apply_lora()  # idempotent
        adapters = zigong.lora_modules
        assert len(adapters) == zigong.config.model.n_layers * 3
        assert all(isinstance(a, LoRALinear) for a in adapters)

    def test_full_finetune_without_lora(self, make_zigong, german_examples):
        zigong = make_zigong()
        history = zigong.finetune(german_examples[:32], use_lora=False)
        assert not zigong.lora_modules
        assert history.losses

    def test_checkpoints_written(self, make_zigong, german_examples, tmp_path):
        zigong = make_zigong()
        zigong.finetune(german_examples[:32], checkpoint_dir=tmp_path)
        from repro.training import CheckpointManager

        records = CheckpointManager(tmp_path).checkpoints()
        assert len(records) >= 2  # step 0 + periodic

    def test_answers_become_valid_after_training(self, fitted_zigong, german_examples):
        hits = 0
        for example in german_examples[:20]:
            text = fitted_zigong.generate_answer(example.prompt)
            if any(tok in ("good", "bad") for tok in text.split()):
                hits += 1
        assert hits >= 16  # trained model answers in-vocabulary


class TestClassifier:
    def test_scores_in_unit_interval(self, fitted_zigong, german_examples):
        clf = fitted_zigong.classifier()
        score = clf.score(german_examples[0].prompt, "good", "bad")
        assert 0.0 <= score <= 1.0

    def test_predict_returns_prediction(self, fitted_zigong, german_examples):
        from repro.eval import EvalSample

        clf = fitted_zigong.classifier(name="zg")
        assert clf.name == "zg"
        sample = EvalSample(german_examples[0].prompt, 1, "good", "bad")
        pred = clf.predict(sample)
        assert pred.score is not None

    def test_memoized_classifier_fresh_after_finetune(self, make_zigong, german_examples):
        # Regression for the measure_forgetting staleness bug: the
        # memoized classifier's prefix cache must flush when a finetune
        # changes the weights, not replay pre-finetune KV/logits.
        from repro.baselines.lm import LMClassifier

        zigong = make_zigong()
        prompt = german_examples[0].prompt
        zigong.generate_answer(prompt)  # warm the memoized prefix cache
        zigong.finetune(german_examples[:32])
        uncached = LMClassifier(zigong.model, zigong.tokenizer, prefix_cache_size=0)
        assert zigong.generate_answer(prompt) == uncached.generate_answer(prompt)
        assert zigong.classifier().prefix_cache.stats.invalidations == 1

    def test_merge_adapters_preserves_scores(self, make_zigong, german_examples):
        zigong = make_zigong()
        zigong.finetune(german_examples[:32])
        prompt = german_examples[0].prompt
        before = zigong.classifier().score(prompt, "good", "bad")
        count = zigong.merge_adapters()
        assert count > 0
        after = zigong.classifier().score(prompt, "good", "bad")
        assert before == pytest.approx(after, abs=1e-3)


class TestPersistence:
    def test_save_load_roundtrip(self, fitted_zigong, german_examples, tmp_path):
        fitted_zigong.save(tmp_path / "model")
        loaded = ZiGong.load(tmp_path / "model")
        prompt = german_examples[0].prompt
        original = fitted_zigong.classifier().score(prompt, "good", "bad")
        restored = loaded.classifier().score(prompt, "good", "bad")
        assert original == pytest.approx(restored, abs=1e-5)

    def test_load_preserves_tokenizer(self, fitted_zigong, tmp_path):
        fitted_zigong.save(tmp_path / "model")
        loaded = ZiGong.load(tmp_path / "model")
        assert loaded.tokenizer.vocab.tokens() == fitted_zigong.tokenizer.vocab.tokens()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            ZiGong.load(tmp_path / "missing")

    def test_generation_deterministic_after_reload(self, fitted_zigong, german_examples, tmp_path):
        fitted_zigong.save(tmp_path / "model")
        loaded = ZiGong.load(tmp_path / "model")
        prompt = german_examples[1].prompt
        assert fitted_zigong.generate_answer(prompt) == loaded.generate_answer(prompt)
