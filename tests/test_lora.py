"""LoRA tests: init identity, merge/unmerge, freezing, injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.lora import (
    LoRAConfig,
    LoRALinear,
    apply_lora,
    iter_lora_modules,
    lora_state_dict,
    merge_lora,
    trainable_parameter_fraction,
    unmerge_lora,
)
from repro.nn import Linear, MistralTiny
from repro.tensor import Tensor


class TestLoRAConfig:
    def test_paper_defaults(self):
        config = LoRAConfig()
        assert config.rank == 8
        assert config.alpha == 16.0
        assert config.target_modules == ("wq", "wk", "wv")
        assert config.scaling == 2.0

    @pytest.mark.parametrize("kwargs", [{"rank": 0}, {"alpha": -1}, {"target_modules": ()}])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            LoRAConfig(**kwargs)


class TestLoRALinear:
    def _pair(self, rank=4):
        base = Linear(8, 6, bias=False, rng=0)
        adapter = LoRALinear(base, LoRAConfig(rank=rank, alpha=8, target_modules=("x",)), rng=1)
        return base, adapter

    def test_starts_identical_to_base(self):
        base, adapter = self._pair()
        x = Tensor(np.random.default_rng(0).normal(size=(3, 8)).astype(np.float32))
        np.testing.assert_allclose(adapter(x).numpy(), base(x).numpy(), atol=1e-6)

    def test_diverges_after_update(self):
        base, adapter = self._pair()
        adapter.lora_b.data += 0.1
        x = Tensor(np.ones((1, 8), dtype=np.float32))
        assert np.abs(adapter(x).numpy() - base(x).numpy()).max() > 1e-3

    def test_base_frozen_adapters_trainable(self):
        _, adapter = self._pair()
        assert not adapter.base.weight.requires_grad
        assert adapter.lora_a.requires_grad
        assert adapter.lora_b.requires_grad

    def test_merge_preserves_function(self):
        _, adapter = self._pair()
        adapter.lora_b.data = np.random.default_rng(2).normal(size=adapter.lora_b.shape).astype(np.float32)
        x = Tensor(np.random.default_rng(3).normal(size=(2, 8)).astype(np.float32))
        before = adapter(x).numpy().copy()
        adapter.merge()
        assert adapter.merged
        np.testing.assert_allclose(adapter(x).numpy(), before, atol=1e-5)

    def test_unmerge_restores_base(self):
        _, adapter = self._pair()
        original = adapter.base.weight.data.copy()
        adapter.lora_b.data += 0.5
        adapter.merge()
        adapter.unmerge()
        np.testing.assert_allclose(adapter.base.weight.data, original, atol=1e-5)

    def test_merge_idempotent(self):
        _, adapter = self._pair()
        adapter.lora_b.data += 0.5
        adapter.merge()
        w = adapter.base.weight.data.copy()
        adapter.merge()
        np.testing.assert_allclose(adapter.base.weight.data, w)

    def test_delta_weight_shape(self):
        _, adapter = self._pair(rank=3)
        assert adapter.delta_weight().shape == (6, 8)


class TestInjection:
    def test_apply_targets_qkv(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        adapters = apply_lora(model, LoRAConfig(rank=2, alpha=4, train_embeddings=False), rng=0)
        assert len(adapters) == tiny_config.n_layers * 3
        for block in model.blocks:
            assert isinstance(block.attn.wq, LoRALinear)
            assert isinstance(block.attn.wk, LoRALinear)
            assert isinstance(block.attn.wv, LoRALinear)
            assert isinstance(block.attn.wo, Linear)  # not a target

    def test_forward_unchanged_right_after_injection(self, tiny_config, token_batch):
        model = MistralTiny(tiny_config, rng=0)
        before = model(token_batch).numpy().copy()
        apply_lora(model, LoRAConfig(rank=2, alpha=4), rng=0)
        np.testing.assert_allclose(model(token_batch).numpy(), before, atol=1e-5)

    def test_only_adapters_and_embeddings_trainable(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        apply_lora(model, LoRAConfig(rank=2, alpha=4, train_embeddings=True), rng=0)
        trainable = {n for n, p in model.named_parameters() if p.requires_grad}
        assert all(("lora_" in n) or ("tok_embed" in n) for n in trainable)

    def test_train_embeddings_false_freezes_embeddings(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        apply_lora(model, LoRAConfig(rank=2, alpha=4, train_embeddings=False), rng=0)
        assert not model.tok_embed.weight.requires_grad

    def test_fraction_small(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        apply_lora(model, LoRAConfig(rank=2, alpha=4, train_embeddings=False), rng=0)
        assert trainable_parameter_fraction(model) < 0.2

    def test_no_match_raises(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        with pytest.raises(ConfigError):
            apply_lora(model, LoRAConfig(target_modules=("nonexistent",)))

    def test_iter_and_bulk_merge(self, tiny_config, token_batch):
        model = MistralTiny(tiny_config, rng=0)
        apply_lora(model, LoRAConfig(rank=2, alpha=4), rng=0)
        for adapter in iter_lora_modules(model):
            adapter.lora_b.data += 0.05
        before = model(token_batch).numpy().copy()
        count = merge_lora(model)
        assert count == tiny_config.n_layers * 3
        np.testing.assert_allclose(model(token_batch).numpy(), before, atol=1e-4)
        unmerge_lora(model)
        np.testing.assert_allclose(model(token_batch).numpy(), before, atol=1e-4)

    def test_inject_and_merge_bump_weight_version(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        v0 = model.weight_version
        apply_lora(model, LoRAConfig(rank=2, alpha=4), rng=0)
        assert model.weight_version == v0 + 1
        merge_lora(model)
        assert model.weight_version == v0 + 2
        unmerge_lora(model)
        assert model.weight_version == v0 + 3

    def test_lora_state_dict_only_adapters(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        apply_lora(model, LoRAConfig(rank=2, alpha=4), rng=0)
        state = lora_state_dict(model)
        assert state
        assert all("lora_a" in k or "lora_b" in k for k in state)

    def test_gradients_flow_through_adapters(self, tiny_config, token_batch):
        model = MistralTiny(tiny_config, rng=0)
        adapters = apply_lora(model, LoRAConfig(rank=2, alpha=4), rng=0)
        model.loss(token_batch).backward()
        for adapter in adapters:
            assert adapter.lora_a.grad is not None
            assert adapter.base.weight.grad is None
